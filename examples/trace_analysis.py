#!/usr/bin/env python
"""Trace-driven analysis: capture a program's access trace and sweep it.

Captures the memory-access trace of a synthetic kernel (the way the
era's studies drove simulators from application traces), saves and
reloads it through the text format, then sweeps the analytical model
over consistency models and techniques — all without re-running the
program.

Run:  python examples/trace_analysis.py
"""

import io

from repro import PC, RC, SC, WC, AnalyticalTimingModel
from repro.analysis import Table
from repro.isa import ProgramBuilder
from repro.workloads import (
    AccessTrace,
    DirectMappedFilter,
    trace_from_program,
    trace_to_segment,
)


def build_kernel():
    """A loop nest touching an array with a pointer-chase inner step."""
    b = ProgramBuilder()
    b.mov_imm("r9", 4)                      # 4 outer iterations
    b.label("outer")
    b.lock_optimistic(addr=0x10, tag="lock")
    b.load("r1", addr=0x100, tag="head")    # list head
    b.load("r2", base="r1", addr=0x200, tag="chase1")
    b.load("r3", base="r2", addr=0x200, tag="chase2")
    b.add("r4", "r2", "r3")
    b.store("r4", addr=0x300, tag="publish")
    b.unlock(addr=0x10, tag="unlock")
    b.alu("sub", "r9", "r9", imm=1)
    b.branch_nonzero("r9", "outer", predict_taken=True)
    return b.build()


def main() -> None:
    program = build_kernel()
    memory = {0x100: 1, 0x201: 2, 0x202: 3}
    trace = trace_from_program(program, memory, name="kernel")

    print(f"captured trace '{trace.name}': {trace.stats()}")
    print()
    print("first few records:")
    for record in list(trace)[:7]:
        print("  " + record.to_line())
    print()

    # round-trip through the text format
    text = trace.dumps()
    trace = AccessTrace.load(io.StringIO(text))

    engine = AnalyticalTimingModel()
    table = Table(
        "trace-driven sweep (cold direct-mapped hit filter, miss = 100)",
        ["model", "baseline", "prefetch", "prefetch+speculation", "speedup"],
    )
    for model in (SC, PC, WC, RC):
        cycles = {}
        for tech, (pf, sp) in {
            "baseline": (False, False),
            "prefetch": (True, False),
            "prefetch+speculation": (True, True),
        }.items():
            segment = trace_to_segment(trace, DirectMappedFilter())
            cycles[tech] = engine.schedule(segment, model, prefetch=pf,
                                           speculation=sp).total_cycles
        table.add_row(model.name, cycles["baseline"], cycles["prefetch"],
                      cycles["prefetch+speculation"],
                      round(cycles["baseline"] / cycles["prefetch+speculation"], 2))
    print(table.render())
    print()
    print("The pointer-chase inner step keeps a floor under every")
    print("configuration (true dependences can't be hidden), but the")
    print("consistency-imposed delays around it vanish — and SC matches RC.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: the paper's two techniques on its own Example 1.

Builds the producer critical section from Figure 2 (lock; write A;
write B; unlock), runs it on the detailed multiprocessor simulator
under SC and RC with each technique combination, and prints the cycle
counts next to the paper's arithmetic (301/202 baseline, 103 with
prefetching).

Run:  python examples/quickstart.py
"""

from repro import RC, SC, run_workload
from repro.analysis import Table
from repro.workloads import PAPER_CYCLE_COUNTS, example1_program


def main() -> None:
    table = Table(
        "Example 1: lock; write A; write B; unlock  (miss = 100 cycles)",
        ["model", "technique", "cycles (detailed sim)", "paper"],
    )
    for model in (SC, RC):
        for technique, (prefetch, speculation) in {
            "baseline": (False, False),
            "prefetch": (True, False),
            "prefetch+speculation": (True, True),
        }.items():
            workload = example1_program()
            result = run_workload(
                [workload.program],
                model=model,
                prefetch=prefetch,
                speculation=speculation,
                initial_memory=workload.initial_memory,
                warm_lines=workload.warm_lines,
            )
            paper = PAPER_CYCLE_COUNTS.get(("example1", model.name, technique))
            table.add_row(model.name, technique, result.cycles, paper)
    print(table.render())
    print()
    print("Takeaways (paper, Section 3.3):")
    print(" * prefetching pipelines the delayed writes under BOTH models;")
    print(" * with the techniques on, strict SC runs as fast as relaxed RC.")


if __name__ == "__main__":
    main()

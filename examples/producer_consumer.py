#!/usr/bin/env python
"""Producer/consumer hand-off: correctness and performance together.

A producer writes a batch of values and releases a flag; a consumer
spins on the flag (acquire), then reads, transforms, and republishes
the data.  This is the communication idiom the paper's Examples 1 and 2
abstract.  The script shows:

1. the hand-off is *correct* under every model/technique combination
   (the release/acquire labelling makes the program data-race-free);
2. speculative loads let even sequential consistency overlap the
   consumer's reads with the acquire spin.

Run:  python examples/producer_consumer.py
"""

from repro import PC, RC, SC, WC, run_workload
from repro.analysis import Table
from repro.workloads import producer_consumer_workload


def main() -> None:
    table = Table(
        "Producer -> consumer -> consumer chain (3 values, +1 per stage)",
        ["model", "technique", "cycles", "values delivered", "correct"],
    )
    for model in (SC, PC, WC, RC):
        for technique, (prefetch, speculation) in {
            "baseline": (False, False),
            "prefetch+speculation": (True, True),
        }.items():
            workload = producer_consumer_workload(values=(7, 11, 13), chain=3)
            result = run_workload(
                workload.programs,
                model=model,
                prefetch=prefetch,
                speculation=speculation,
                initial_memory=workload.initial_memory,
                max_cycles=2_000_000,
            )
            delivered = [result.machine.read_word(addr)
                         for addr, _ in workload.expectations]
            expected = [value for _, value in workload.expectations]
            table.add_row(model.name, technique, result.cycles,
                          str(delivered), "yes" if delivered == expected else "NO")
    print(table.render())
    print()
    print("Every row must say 'yes': acquire/release labelling keeps the")
    print("hand-off sequentially consistent even under RC with speculation")
    print("(the speculative-load buffer squashes any load that observed a")
    print("value the producer later overwrote).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Figure 5 walkthrough: watching a speculative load get squashed.

Runs the Section 4.3 code segment (read A; write B; write C; read D;
read E[D]) under sequential consistency with both techniques enabled,
while a scripted remote agent writes location D — invalidating the
value the processor already consumed speculatively.  Prints the
digested nine-event narrative, the raw simulator trace, and the final
architectural state showing the corrected values.

Run:  python examples/figure5_walkthrough.py [inval_cycle]
"""

import sys

from repro import run_figure5
from repro.workloads import A, B, C, D, E_BASE


def main() -> None:
    inval_cycle = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    result = run_figure5(inval_cycle=inval_cycle)

    print(result.describe())
    print()
    print("Raw trace (issue/complete/prefetch/squash events):")
    print("-" * 60)
    print(result.trace.render())
    print("-" * 60)

    machine = result.machine
    print()
    print("Final architectural state:")
    print(f"  r1 = MEM[A]    = {machine.reg(0, 'r1')}")
    print(f"  r2 = MEM[D]    = {machine.reg(0, 'r2')}  "
          "(the *new* value written by the remote agent)")
    print(f"  r3 = MEM[E[D]] = {machine.reg(0, 'r3')}  "
          "(re-read with the corrected index)")
    print(f"  MEM[B] = {machine.read_word(B)}, MEM[C] = {machine.read_word(C)}")
    squashes = machine.sim.stats.counter("cpu0/slb/squashes").value
    reissues = machine.sim.stats.counter("cpu0/slb/reissues").value
    print(f"  speculative-load buffer: {squashes} squash(es), "
          f"{reissues} reissue(s)")
    print()
    print("Try different invalidation timings, e.g.:")
    print("  python examples/figure5_walkthrough.py 40   # inval after stores")


if __name__ == "__main__":
    main()

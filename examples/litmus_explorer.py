#!/usr/bin/env python
"""Litmus explorer: Figure 1's ordering rules, executed exhaustively.

For each classic litmus test, enumerates every outcome each consistency
model admits (via the exhaustive interleaving checker) and prints the
outcome sets side by side.  This makes the SC ⊂ PC ⊂ WC ⊂ RC
relaxation hierarchy — Figure 1's content — directly visible.

Run:  python examples/litmus_explorer.py
"""

from repro import ALL_MODELS
from repro.analysis import Table
from repro.consistency import (
    coherence_per_location,
    load_buffering,
    message_passing,
    message_passing_sync,
    store_buffering,
)

TESTS = [
    store_buffering(),
    message_passing(),
    message_passing_sync(),
    load_buffering(),
    coherence_per_location(),
]


def format_outcome(outcome) -> str:
    return "{" + ", ".join(f"{reg}={val}" for reg, val in outcome) + "}"


def main() -> None:
    from repro.analysis import delay_arc_matrix

    print("## Figure 1: the delay-arc matrices\n")
    for model in ALL_MODELS:
        print(delay_arc_matrix(model).render())
        print()

    print("## Litmus outcome sets\n")
    for test in TESTS:
        print(f"### {test.name}")
        for tid, thread in enumerate(test.threads):
            ops = "; ".join(op.describe() for op in thread)
            print(f"  T{tid}: {ops}")
        table = Table("outcome sets", ["model", "#outcomes", "outcomes"])
        sc_outcomes = test.outcomes(ALL_MODELS[0])
        for model in ALL_MODELS:
            outcomes = test.outcomes(model)
            extra = outcomes - sc_outcomes
            rendered = ", ".join(sorted(format_outcome(o) for o in outcomes))
            marker = f"  (+{len(extra)} beyond SC)" if extra else ""
            table.add_row(model.name, len(outcomes), rendered + marker)
        print(table.render())
        print()


if __name__ == "__main__":
    main()

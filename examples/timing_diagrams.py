#!/usr/bin/env python
"""Timing diagrams: *see* what each technique buys.

Renders the analytical schedules of the paper's Example 2 under SC as
ASCII Gantt charts — baseline, prefetch-only, and prefetch+speculation
— making the paper's argument visual: prefetching overlaps the misses
it can reach, but only speculation overlaps the *dependent* read E[D]
with everything else.

Run:  python examples/timing_diagrams.py [example1|example2|figure5]
"""

import sys

from repro import SC, RC, AnalyticalTimingModel
from repro.analysis import compare_schedules
from repro.workloads import (
    example1_segment,
    example2_segment,
    figure5_segment,
)

SEGMENTS = {
    "example1": example1_segment,
    "example2": example2_segment,
    "figure5": figure5_segment,
}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "example2"
    if name not in SEGMENTS:
        raise SystemExit(f"unknown segment {name!r}; pick from {sorted(SEGMENTS)}")
    engine = AnalyticalTimingModel()

    print(f"### {name} under SC\n")
    results = [
        engine.schedule(SEGMENTS[name](), SC),
        engine.schedule(SEGMENTS[name](), SC, prefetch=True),
        engine.schedule(SEGMENTS[name](), SC, prefetch=True, speculation=True),
    ]
    print(compare_schedules(results, width=64))
    print()
    print(f"### {name} under RC (baseline vs both techniques)\n")
    results = [
        engine.schedule(SEGMENTS[name](), RC),
        engine.schedule(SEGMENTS[name](), RC, prefetch=True, speculation=True),
    ]
    print(compare_schedules(results, width=64))
    print()
    print("Read the bars: '#' is the access in service, 'p' a prefetch")
    print("in flight, '*' marks speculative loads.  The consistency")
    print("model's delay arcs are exactly the white space they remove.")


if __name__ == "__main__":
    main()

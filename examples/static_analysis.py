"""Tour of the static race analyzer, sanitizer, and cross-validation.

Run with::

    PYTHONPATH=src python examples/static_analysis.py
"""

from pathlib import Path

from repro.analysis.static import (
    analyze_programs,
    apply_fence_suggestions,
    sanitize_trace,
)
from repro.consistency import SC, WC
from repro.consistency.litmus import cross_validate_suite, store_buffering
from repro.isa import assemble
from repro.sim.trace import TraceRecorder
from repro.system import run_workload

ASM = Path(__file__).parent / "asm"


def section(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main():
    dekker = [assemble((ASM / "dekker.s").read_text()),
              assemble((ASM / "dekker_mirror.s").read_text())]

    section("Dekker under WC: the analyzer finds the race")
    report = analyze_programs(dekker, WC)
    print(report.render())

    section("Applying the suggested fences restores SC")
    patched = apply_fence_suggestions(dekker, report.fence_suggestions())
    fixed = analyze_programs(patched, WC)
    print(f"after {len(report.fence_suggestions())} fence(s): "
          f"sc_guaranteed={fixed.sc_guaranteed}")

    section("Trace sanitizer on a real speculative run")
    trace = TraceRecorder()
    run_workload(dekker, model=SC, prefetch=True, speculation=True,
                 miss_latency=40, initial_memory={0x100: 0, 0x110: 0},
                 trace=trace, max_cycles=500_000)
    print(sanitize_trace(trace, model=SC).render())

    section("Static prediction vs the dynamic Section 6 detector")
    cross = cross_validate_suite(tests=[store_buffering()], models=[SC, WC])
    print(cross.render())


if __name__ == "__main__":
    main()

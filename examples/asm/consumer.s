# Consumer half: acquire-spin on the flag, then read the data.
spin:
    ld.acq r2, 0x80            # poll the flag
    beqz   r2, spin !taken     # predicted to exit the spin
    ld     r5, 0x40            # must observe 42
    halt

# The mirrored side of dekker.s (see that file for usage).
    movi r2, 1
    st   r2, 0x110
    ld   r1, 0x100
    halt

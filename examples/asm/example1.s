# The paper's Example 1 (Section 3.3): a producer critical section.
#   lock L; write A; write B; unlock L
# Addresses: L=0x10, A=0x20, B=0x30 (distinct cache lines).
#
# Try:
#   python -m repro.run examples/asm/example1.s --model SC
#   python -m repro.run examples/asm/example1.s --model SC --prefetch
#   python -m repro.run examples/asm/example1.s --model RC --prefetch --summary

    rmw.ts r31, 0x10, acq      # lock L (assumed free, as in the paper)
    movi   r1, 1
    st     r1, 0x20            # write A
    st     r1, 0x30            # write B
    st.rel r0, 0x10            # unlock L
    halt

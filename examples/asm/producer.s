# Producer half of a message-passing pair: write data, release a flag.
# Run together with consumer.s:
#   python -m repro.run examples/asm/producer.s examples/asm/consumer.s \
#       --model RC --prefetch --speculation --regs r5 --watch 0x40

    movi   r1, 42
    st     r1, 0x40            # the data
    st.rel r1, 0x80            # the flag (release)
    halt

# One side of the store-buffering (Dekker) litmus test.
# Run two copies against each other with mirrored addresses:
#   python -m repro.run examples/asm/dekker.s examples/asm/dekker_mirror.s \
#       --model SC --regs r1
# Under SC at least one side must read 1.

    movi r2, 1
    st   r2, 0x100             # my flag
    ld   r1, 0x110             # the other side's flag
    halt

#!/usr/bin/env python
"""Detecting SC violations on relaxed hardware (the Section 6 extension).

Runs two scenarios on a release-consistent machine with the
SC-violation monitor enabled:

1. a **data-race-free** producer/consumer hand-off — the monitor stays
   silent: the RC execution is sequentially consistent, as the theory
   guarantees for properly-labelled programs;
2. a **racy** reader whose unlabelled load performs early while a
   remote processor writes the same location — the monitor flags it.

This is detection only (no rollback): the mechanism the paper says
"can be extended to detect violations of sequential consistency in
architectures that implement more relaxed models".

Run:  python examples/sc_violation_detector.py
"""

from repro import RC
from repro.cpu import ProcessorConfig
from repro.isa import ProgramBuilder
from repro.memory import LatencyConfig
from repro.system import run_workload
from repro.system.machine import MachineConfig, Multiprocessor


def race_free_scenario() -> None:
    print("--- scenario 1: data-race-free hand-off (expect: silent)")
    producer = (ProgramBuilder()
                .store_imm(42, addr=0x40, tag="data")
                .release_store_imm(1, addr=0x80, tag="flag")
                .build())
    consumer = (ProgramBuilder()
                .spin_until_set(addr=0x80, tag="wait")
                .load("r5", addr=0x40, tag="read data")
                .build())
    result = run_workload(
        [producer, consumer], model=RC, speculation=True, prefetch=True,
        processor=ProcessorConfig(enable_sc_detection=True),
        max_cycles=500_000,
    )
    print(f"consumer read data = {result.machine.reg(1, 'r5')}")
    for cpu in (0, 1):
        detector = result.machine.processors[cpu].lsu.sc_detector
        print(f"cpu{cpu}: {detector.report()}")
    print()


def racy_scenario() -> None:
    print("--- scenario 2: unlabelled racy read (expect: flagged)")
    reader = (ProgramBuilder()
              .lock_optimistic(addr=0x10, tag="acquire")
              .load("r1", addr=0x40, tag="racy load")
              .build())
    config = MachineConfig(
        model=RC, enable_speculation=True,
        latencies=LatencyConfig.from_miss_latency(100),
        processor=ProcessorConfig(enable_sc_detection=True),
    )
    machine = Multiprocessor([reader], config, extra_agents=1)
    machine.init_memory({0x10: 0, 0x40: 1})
    machine.warm(0, 0x40, exclusive=False)
    machine.agents[0].write_at(3, 0x40, 2)  # remote write during the window
    machine.run(max_cycles=200_000)
    print(f"reader observed = {machine.reg(0, 'r1')}")
    print("cpu0:", machine.processors[0].lsu.sc_detector.report())
    print()


def main() -> None:
    race_free_scenario()
    racy_scenario()
    print("Interpretation: on RC hardware, a silent monitor certifies the")
    print("execution was sequentially consistent; a flag means the program")
    print("has a data race whose outcome may not be SC-explainable.")


if __name__ == "__main__":
    main()

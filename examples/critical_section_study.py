#!/usr/bin/env python
"""Contended critical sections: the equalization claim, end to end.

Two processors repeatedly acquire a real test&set spin lock, increment
shared counters, and release.  This exercises everything at once:
contended RMWs (Appendix A), speculative loads squashed by real
invalidations, exclusive prefetch of the critical section's write set,
and the consistency models' store rules.

The headline result is the paper's Section 5 claim: with both
techniques enabled, the performance of all four consistency models
converges — while mutual exclusion (the counters' final values) holds
in every configuration.

Run:  python examples/critical_section_study.py
"""

from repro import PC, RC, SC, WC, run_workload
from repro.analysis import Table, bar_chart
from repro.workloads import critical_section_workload


def run_config(model, prefetch, speculation, private, iterations=3):
    workload = critical_section_workload(num_cpus=2, iterations=iterations,
                                         shared_counters=2, private=private)
    result = run_workload(
        workload.programs,
        model=model,
        prefetch=prefetch,
        speculation=speculation,
        initial_memory=workload.initial_memory,
        max_cycles=5_000_000,
    )
    ok = all(result.machine.read_word(addr) == expected
             for addr, expected in workload.expectations)
    return result, ok


def study(private: bool) -> None:
    kind = "private locks (no contention)" if private else "one shared lock (contended)"
    table = Table(
        f"2 CPUs x 3 iterations x 2 counters — {kind}",
        ["model", "baseline", "both techniques", "speedup", "correct"],
    )
    base_cycles = {}
    both_cycles = {}
    for model in (SC, PC, WC, RC):
        base, ok_base = run_config(model, False, False, private)
        both, ok_both = run_config(model, True, True, private)
        base_cycles[model.name] = base.cycles
        both_cycles[model.name] = both.cycles
        table.add_row(model.name, base.cycles, both.cycles,
                      round(base.cycles / both.cycles, 2),
                      "yes" if (ok_base and ok_both) else "NO")
    print(table.render())
    print()
    print(bar_chart("cycles, prefetch+speculation", both_cycles, unit=" cycles"))
    spread_base = max(base_cycles.values()) / min(base_cycles.values())
    spread_both = max(both_cycles.values()) / min(both_cycles.values())
    print(f"model spread (max/min): baseline {spread_base:.2f}x -> "
          f"with techniques {spread_both:.2f}x")
    print()


def main() -> None:
    study(private=True)
    study(private=False)
    print("Reading the two studies together (paper, Section 5):")
    print(" * without contention the techniques equalize the models almost")
    print("   perfectly — SC runs at RC speed;")
    print(" * under heavy lock contention prefetched/speculated lines get")
    print("   invalidated before use, which is precisely the case the paper")
    print("   identifies as the limit of the techniques (\"the probability")
    print("   that a prefetched or speculated value is invalidated must be")
    print("   small\").")


if __name__ == "__main__":
    main()

"""Branch prediction.

Static hints on branch instructions are always honoured — the paper's
lock-spin idiom requires the predictor to "take the path that assumes
the lock synchronization succeeds".  Unhinted branches fall back to a
2-bit saturating counter table keyed by PC (a small BTB-style
structure, per Lee & Smith), or static not-taken when dynamic
prediction is disabled.
"""

from __future__ import annotations

from typing import Dict

from ..isa.instructions import Branch


class BranchPredictor:
    def __init__(self, dynamic: bool = True, table_size: int = 256) -> None:
        self.dynamic = dynamic
        self.table_size = table_size
        self._counters: Dict[int, int] = {}  # pc -> 0..3 (>=2 predicts taken)
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int, instr: Branch) -> bool:
        """Predicted direction for the branch at ``pc``."""
        self.predictions += 1
        if instr.predict_taken is not None:
            return instr.predict_taken
        if not self.dynamic:
            return False
        counter = self._counters.get(pc % self.table_size, 1)
        return counter >= 2

    def update(self, pc: int, instr: Branch, taken: bool, mispredicted: bool) -> None:
        if mispredicted:
            self.mispredictions += 1
        if instr.predict_taken is not None or not self.dynamic:
            return
        key = pc % self.table_size
        counter = self._counters.get(key, 1)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._counters[key] = counter

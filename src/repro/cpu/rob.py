"""Reorder buffer with ROB-based register renaming.

The reorder buffer (Smith & Pleszkun) is the keystone of the paper's
example implementation (Section 4.2): it renames registers, holds
uncommitted results so conditional branches (and speculative loads!)
can be rolled back, retires instructions in program order for precise
interrupts, and *signals the store buffer* when a store reaches the
head — which is how consistency constraints on stores are enforced.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..isa.instructions import Instruction
from ..sim.errors import SimulationError


@dataclass
class Operand:
    """A source operand: either an immediate value or a ROB tag."""

    value: Optional[int] = None
    producer: Optional[int] = None  # seq of the producing ROB entry

    def resolve(self, rob: "ReorderBuffer") -> Optional[int]:
        """The operand's value, or ``None`` if still being produced."""
        if self.value is not None:
            return self.value
        assert self.producer is not None
        return rob.value_of(self.producer)

    def describe(self) -> str:
        if self.value is not None:
            return str(self.value)
        return f"tag#{self.producer}"


@dataclass
class RobEntry:
    seq: int
    pc: int
    instr: Instruction
    dst: Optional[str]
    value: Optional[int] = None
    done: bool = False
    #: store/RMW: the reorder buffer has signalled the store buffer
    signalled: bool = False
    #: branches: prediction bookkeeping
    predicted_taken: Optional[bool] = None
    predicted_next_pc: Optional[int] = None
    resolved_next_pc: Optional[int] = None

    @property
    def is_memory(self) -> bool:
        return self.instr.is_memory

    def describe(self) -> str:
        return self.instr.describe() or f"pc={self.pc}"


class ReorderBuffer:
    """FIFO of in-flight instructions plus the rename table."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._entries: "OrderedDict[int, RobEntry]" = OrderedDict()
        self._rename: Dict[str, int] = {}
        # values of recently retired producers, for operands captured
        # before retirement; pruned periodically
        self._retired_values: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.size

    @property
    def empty(self) -> bool:
        return not self._entries

    def head(self) -> Optional[RobEntry]:
        if not self._entries:
            return None
        return next(iter(self._entries.values()))

    def get(self, seq: int) -> Optional[RobEntry]:
        return self._entries.get(seq)

    def entries(self) -> List[RobEntry]:
        return list(self._entries.values())

    # ------------------------------------------------------------------
    # Rename / dispatch
    # ------------------------------------------------------------------
    def allocate(self, entry: RobEntry) -> None:
        if self.full:
            raise SimulationError("reorder buffer overflow (caller must check .full)")
        self._entries[entry.seq] = entry
        if entry.dst is not None and entry.dst != "r0":
            self._rename[entry.dst] = entry.seq

    def rename_of(self, reg: str) -> Optional[int]:
        """The ROB tag currently producing ``reg``, if any."""
        return self._rename.get(reg)

    def value_of(self, seq: int) -> Optional[int]:
        entry = self._entries.get(seq)
        if entry is not None:
            return entry.value if entry.done else None
        return self._retired_values.get(seq)

    def mark_done(self, seq: int, value: Optional[int] = None) -> None:
        entry = self._entries.get(seq)
        if entry is None:
            return  # squashed while executing
        entry.value = value
        entry.done = True

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def retire_head(self) -> RobEntry:
        seq, entry = self._entries.popitem(last=False)
        if entry.dst is not None and entry.value is not None:
            self._retired_values[seq] = entry.value
        if self._rename.get(entry.dst) == seq:
            del self._rename[entry.dst]
        if len(self._retired_values) > 65536:
            cutoff = seq - 4 * self.size
            self._retired_values = {
                s: v for s, v in self._retired_values.items() if s >= cutoff
            }
        return entry

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def squash_from(self, seq: int) -> List[int]:
        """Discard entry ``seq`` and everything younger.

        Returns the discarded seq numbers (ascending).  The rename table
        is rebuilt from the survivors.
        """
        discarded = [s for s in self._entries if s >= seq]
        for s in discarded:
            del self._entries[s]
        self._rename = {}
        for entry in self._entries.values():
            if entry.dst is not None and entry.dst != "r0":
                self._rename[entry.dst] = entry.seq
        return discarded

    def describe(self) -> str:
        return " | ".join(e.describe() for e in self._entries.values())

"""Processor configuration."""

from __future__ import annotations

from dataclasses import dataclass

from ..consistency.models import SC, ConsistencyModel
from ..sim.errors import ConfigurationError


@dataclass
class ProcessorConfig:
    """Sizing and feature knobs for one dynamically-scheduled core.

    The defaults model a processor in the spirit of Johnson's design
    (Figure 3): modest superscalar width, a reorder buffer providing
    register renaming / precise interrupts, reservation stations per
    functional unit, and the load/store unit of Figure 4.

    ``enable_prefetch`` and ``enable_speculation`` are the paper's two
    techniques; both default off (the *conventional* implementation).
    """

    model: ConsistencyModel = SC
    width: int = 2                  # fetch/decode and retire width per cycle
    rob_size: int = 32
    alu_rs_size: int = 16
    ls_rs_size: int = 16
    store_buffer_size: int = 16
    slb_size: int = 16              # speculative-load buffer entries
    alu_count: int = 2
    enable_prefetch: bool = False
    enable_speculation: bool = False
    #: run the Section 6 extension: monitor accesses that perform
    #: outside their SC window and report potential SC violations
    #: (detection only; no correction)
    enable_sc_detection: bool = False
    prefetches_per_cycle: int = 1
    #: static branch hints are always honoured; this enables a 2-bit
    #: counter fallback for unhinted branches (else predict not-taken)
    dynamic_branch_prediction: bool = True

    def __post_init__(self) -> None:
        for name in ("width", "rob_size", "alu_rs_size", "ls_rs_size",
                     "store_buffer_size", "slb_size", "alu_count",
                     "prefetches_per_cycle"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"ProcessorConfig.{name} must be >= 1")

"""Out-of-order processor model (Johnson-style, paper Figures 3-4)."""

from .branch import BranchPredictor
from .config import ProcessorConfig
from .lsu import LoadStoreUnit, MemOp, MemState
from .processor import Processor
from .rob import Operand, ReorderBuffer, RobEntry
from .units import AluUnit, BranchUnit

__all__ = [
    "AluUnit",
    "BranchPredictor",
    "BranchUnit",
    "LoadStoreUnit",
    "MemOp",
    "MemState",
    "Operand",
    "Processor",
    "ProcessorConfig",
    "ReorderBuffer",
    "RobEntry",
]

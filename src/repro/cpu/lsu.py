"""The load/store functional unit (paper, Figure 4).

Components, mirroring the figure:

* **load/store reservation station** — decoded memory operations in
  program order, retired FIFO to the address unit.  Without speculative
  loads, consistency constraints are enforced here: a load stalls at
  the head until no earlier pending access has a delay arc to it.
* **address unit** — one cycle of effective-address computation; FIFO,
  so when a load reaches the issue stage every earlier store's address
  is already known (which makes store-buffer dependence checking
  complete).
* **store buffer** — stores (and RMWs) wait here for the reorder
  buffer's signal (precise interrupts: a store may touch memory only
  once it reaches the ROB head) and for the consistency model's store
  rules (e.g. SC issues stores one at a time; RC pipelines ordinary
  stores and holds releases until earlier stores complete).
* **speculative-load buffer** — see :mod:`repro.core.speculation`.
  With speculation enabled, loads issue as soon as their address is
  computed and the buffer takes over constraint tracking.

Loads bypass the store buffer with a word-granular dependence check
(store-to-load forwarding).
"""

from __future__ import annotations

import enum
import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..consistency.access_class import AccessClass, classify
from ..consistency.models import ConsistencyModel
from ..core.prefetch import HardwarePrefetcher, PrefetchCandidate
from ..core.sc_detection import ScViolationDetector
from ..core.speculation import (
    Correction,
    CorrectionKind,
    SlbEntry,
    SpeculativeLoadBuffer,
)
from ..consistency.access_class import PLAIN_LOAD, PLAIN_STORE
from ..isa.instructions import Load, SoftwarePrefetch, Store
from ..memory.cache import LockupFreeCache
from ..memory.types import AccessKind, AccessRequest, SnoopKind
from ..sim.kernel import WAKE_NEVER, Simulator
from ..sim.trace import NullTraceRecorder, TraceRecorder
from .config import ProcessorConfig
from .rob import Operand, ReorderBuffer, RobEntry


class MemState(enum.Enum):
    IN_RS = "rs"
    IN_ADDR = "addr"
    READY = "ready"          # load waiting to issue to the cache
    ISSUED = "issued"        # load in flight
    IN_SB = "sb"             # store/rmw waiting in the store buffer
    SB_ISSUED = "sb_issued"  # store/rmw in flight
    PERFORMED = "performed"


@dataclass
class MemOp:
    """One memory instruction tracked by the LSU, decode to completion."""

    seq: int
    rob_entry: RobEntry
    klass: AccessClass
    base: Operand
    data: Optional[Operand]       # store value / rmw operand
    offset: int
    state: MemState = MemState.IN_RS
    addr: Optional[int] = None
    generation: int = 0
    prefetch_issued: bool = False
    signalled: bool = False
    forwarded: bool = False
    is_sw_prefetch: bool = False
    tag: str = ""

    @property
    def is_load(self) -> bool:
        return self.klass.is_load and not self.klass.is_store

    @property
    def is_store(self) -> bool:
        return self.klass.is_store and not self.klass.is_load

    @property
    def is_rmw(self) -> bool:
        return self.klass.is_load and self.klass.is_store

    @property
    def performed(self) -> bool:
        return self.state is MemState.PERFORMED


class LoadStoreUnit:
    def __init__(
        self,
        cpu_id: int,
        sim: Simulator,
        cache: LockupFreeCache,
        rob: ReorderBuffer,
        config: ProcessorConfig,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.cpu_id = cpu_id
        self.sim = sim
        self.cache = cache
        self.rob = rob
        self.config = config
        self.model: ConsistencyModel = config.model
        self.trace = trace or NullTraceRecorder()
        self.name = f"cpu{cpu_id}/lsu"

        self.rs: Deque[MemOp] = deque()
        self.addr_unit: Optional[Tuple[MemOp, int]] = None  # (op, ready cycle)
        self.ready_loads: List[MemOp] = []
        self.store_buffer: List[MemOp] = []
        #: every decoded memory op, program order, until performed
        self.pending: "OrderedDict[int, MemOp]" = OrderedDict()
        self._req_ids = itertools.count(1)

        self.slb: Optional[SpeculativeLoadBuffer] = None
        if config.enable_speculation:
            self.slb = SpeculativeLoadBuffer(config.slb_size, sim.stats,
                                             name=f"cpu{cpu_id}/slb")
        self.prefetcher: Optional[HardwarePrefetcher] = None
        if config.enable_prefetch:
            self.prefetcher = HardwarePrefetcher(
                cache, config.prefetches_per_cycle, sim.stats,
                name=f"cpu{cpu_id}/prefetcher")
        self.sc_detector: Optional[ScViolationDetector] = None
        if config.enable_sc_detection:
            self.sc_detector = ScViolationDetector(
                sim.stats, name=f"cpu{cpu_id}/sc_detector")
            self.sc_detector.set_clock(lambda: self.sim.cycle)

        cache.register_snoop_listener(self._on_snoop)

        #: set by the processor: (seq, refetch_pc) -> None
        self.request_squash: Callable[[int, int, str], None] = lambda s, pc, why: None

        s = sim.stats
        self.stat_loads = s.counter(f"{self.name}/loads")
        self.stat_stores = s.counter(f"{self.name}/stores")
        self.stat_rmws = s.counter(f"{self.name}/rmws")
        self.stat_forwards = s.counter(f"{self.name}/store_forwards")
        self.stat_rs_stalls = s.counter(f"{self.name}/rs_consistency_stalls")
        self.stat_sb_stalls = s.counter(f"{self.name}/sb_consistency_stalls")
        self.stat_load_latency = s.histogram(f"{self.name}/load_latency")
        self.stat_store_latency = s.histogram(f"{self.name}/store_latency")

    # ------------------------------------------------------------------
    # Dispatch (from decode)
    # ------------------------------------------------------------------
    @property
    def rs_full(self) -> bool:
        return len(self.rs) >= self.config.ls_rs_size

    def dispatch(self, entry: RobEntry, base: Operand, data: Optional[Operand]) -> None:
        instr = entry.instr
        if isinstance(instr, SoftwarePrefetch):
            # non-binding: flows through the address unit like any
            # memory op but never participates in consistency ordering
            op = MemOp(
                seq=entry.seq,
                rob_entry=entry,
                klass=PLAIN_STORE if instr.exclusive else PLAIN_LOAD,
                base=base,
                data=None,
                offset=instr.offset,
                is_sw_prefetch=True,
                tag=instr.describe(),
            )
            self.rs.append(op)
            return
        op = MemOp(
            seq=entry.seq,
            rob_entry=entry,
            klass=classify(instr),
            base=base,
            data=data,
            offset=instr.offset,
            tag=instr.describe(),
        )
        self.rs.append(op)
        self.pending[op.seq] = op

    # ------------------------------------------------------------------
    # Consistency queries
    # ------------------------------------------------------------------
    def _earlier_unperformed(self, seq: int) -> List[MemOp]:
        out = []
        for s, op in self.pending.items():
            if s >= seq:
                break
            if not op.performed:
                out.append(op)
        return out

    def _may_perform_now(self, op: MemOp) -> bool:
        earlier = self._earlier_unperformed(op.seq)
        return self.model.may_perform([e.klass for e in earlier], op.klass)

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        self._drain_addr_unit(cycle)
        self._advance_rs(cycle)
        self._issue_stores(cycle)
        self._issue_loads(cycle)
        if self.slb is not None:
            for seq in self.slb.retire_ready():
                self.trace.record(cycle, self.name, "slb_retire", seq=seq)
        if self.prefetcher is not None:
            ops, candidates = self._prefetch_candidates()
            issued = self.prefetcher.tick(candidates)
            for op in ops[:issued]:
                op.prefetch_issued = True

    # ------------------------------------------------------------------
    # Sleep support (kernel fast-forward)
    # ------------------------------------------------------------------
    def sleep_profile(self) -> Optional[Tuple[int, Tuple]]:
        """Mirror of :meth:`tick` over frozen state, without side effects.

        Returns ``None`` if the next tick would change state (must keep
        ticking), else ``(wake, counters)`` where ``counters`` are the
        stat counters an elided tick would increment once each.  Every
        stall modelled here is broken only by an event (cache response)
        or by another component's state change — both of which end the
        fast-forward span — so the wake is :data:`~repro.sim.kernel.WAKE_NEVER`.

        The cache port budget resets every cycle, so "no port free right
        now" does not carry over: a would-issue access with any ports
        configured forces a tick.
        """
        counters = []
        # address unit: recomputes the effective address (and feeds the
        # SC-violation detector) every cycle while occupied — never elide
        if self.addr_unit is not None:
            return None
        # reservation station head (see _advance_rs)
        if self.rs:
            head = self.rs[0]
            base = head.base.resolve(self.rob)
            if base is not None:
                uncached_load = (head.is_load
                                 and self.cache.config.is_uncached(base + head.offset))
                if (head.is_load and not head.is_sw_prefetch
                        and (self.slb is None or uncached_load)
                        and not self._may_perform_now(head)):
                    counters.append(self.stat_rs_stalls)
                else:
                    return None  # head would advance into the address unit
        ports_free = self.cache.config.ports > 0
        # store buffer (see _issue_stores)
        for idx, op in enumerate(self.store_buffer):
            if op.state is not MemState.IN_SB:
                continue
            if not op.signalled:
                break
            value = op.data.resolve(self.rob) if op.data is not None else 0
            if value is None:
                break
            blocked = any(
                e.state is not MemState.PERFORMED
                and self.model.delay_arc(e.klass, op.klass)
                for e in self.store_buffer[:idx]
            )
            if blocked:
                counters.append(self.stat_sb_stalls)
                break
            if ports_free:
                return None  # store would issue
            break
        # ready loads (see _issue_loads / _try_forward)
        for op in self.ready_loads:
            match: Optional[MemOp] = None
            for sb in self.store_buffer:
                if sb.seq < op.seq and sb.addr == op.addr:
                    match = sb
            if match is not None:
                if match.is_rmw:
                    continue  # waits for the RMW's result
                value = match.data.resolve(self.rob) if match.data is not None else 0
                if value is None:
                    continue  # store value unknown yet
                return None  # load would forward
            if ports_free:
                return None  # load would issue to the cache
            break
        # speculative-load buffer retirement
        if self.slb is not None and self.slb.head_retirable():
            return None
        # hardware prefetcher: any candidate means work next tick
        if self.prefetcher is not None:
            _, candidates = self._prefetch_candidates()
            if candidates:
                return None
        return WAKE_NEVER, tuple(counters)

    # -- address unit ---------------------------------------------------
    def _drain_addr_unit(self, cycle: int) -> None:
        if self.addr_unit is None:
            return
        op, ready = self.addr_unit
        if cycle < ready:
            return
        base = op.base.resolve(self.rob)
        assert base is not None
        op.addr = base + op.offset
        if self.sc_detector is not None and not op.is_sw_prefetch:
            self.sc_detector.monitor(
                op.seq, op.addr, self.cache.config.line_addr(op.addr),
                is_store=op.klass.is_store, tag=op.tag)
        if op.is_sw_prefetch:
            instr = op.rob_entry.instr
            if not self.cache.can_accept():
                return  # retry next cycle
            self.cache.prefetch(op.addr, exclusive=bool(
                getattr(instr, "exclusive", False)
                and self.cache.config.protocol == "invalidate"))
            self.rob.mark_done(op.seq, None)
            op.state = MemState.PERFORMED
            self.addr_unit = None
            return
        if op.is_load:
            # loads retired from the reservation station enter the
            # speculative-load buffer here, in program (FIFO) order —
            # except uncached loads, which cannot be monitored and are
            # delayed conventionally (Appendix A)
            uncached = self.cache.config.is_uncached(op.addr)
            if (not uncached and self.slb is not None
                    and not self._enter_slb(op)):
                return  # SLB full: stall the address unit
            op.state = MemState.READY
            self.ready_loads.append(op)
            self.addr_unit = None
        else:
            # store or RMW heads for the store buffer
            if len(self.store_buffer) >= self.config.store_buffer_size:
                return  # stall until a slot frees
            op.state = MemState.IN_SB
            self.store_buffer.append(op)
            self.addr_unit = None
            if op.is_store:
                # a store "completes" for ROB purposes at address
                # translation; the value it writes is tracked here
                self.rob.mark_done(op.seq, None)
            if (op.is_rmw and self.slb is not None
                    and not self.cache.config.is_uncached(op.addr)):
                # "there is no speculative load for non-cached
                # read-modify-write accesses" (Appendix A)
                self._issue_speculative_rmw_read(op)

    # -- reservation station ---------------------------------------------
    def _advance_rs(self, cycle: int) -> None:
        if self.addr_unit is not None or not self.rs:
            return
        head = self.rs[0]
        base = head.base.resolve(self.rob)
        if base is None:
            return  # effective address not computable yet (paper: stall)
        uncached_load = (head.is_load
                         and self.cache.config.is_uncached(base + head.offset))
        if (head.is_load and not head.is_sw_prefetch
                and (self.slb is None or uncached_load)
                and not self._may_perform_now(head)):
            # conventional implementation: stall the reservation station
            self.stat_rs_stalls.inc()
            return
        self.rs.popleft()
        head.state = MemState.IN_ADDR
        self.addr_unit = (head, cycle + 1)

    # -- store buffer -----------------------------------------------------
    def signal_store(self, seq: int) -> None:
        """The reorder buffer signals that ``seq`` reached its head."""
        op = self.pending.get(seq)
        if op is not None:
            op.signalled = True

    def _issue_stores(self, cycle: int) -> None:
        for idx, op in enumerate(self.store_buffer):
            if op.state is not MemState.IN_SB:
                continue
            if not op.signalled:
                break  # FIFO: later stores cannot be signalled earlier
            value = op.data.resolve(self.rob) if op.data is not None else 0
            if value is None:
                break
            blocked = any(
                e.state is not MemState.PERFORMED
                and self.model.delay_arc(e.klass, op.klass)
                for e in self.store_buffer[:idx]
            )
            if blocked:
                self.stat_sb_stalls.inc()
                break
            if not self.cache.can_accept():
                return
            self._send_store(op, value, cycle)
            return  # one cache issue per tick from the store buffer

    def _send_store(self, op: MemOp, value: int, cycle: int) -> None:
        kind = AccessKind.RMW if op.is_rmw else AccessKind.STORE
        rmw_op = op.rob_entry.instr.op if op.is_rmw else None
        op.state = MemState.SB_ISSUED
        op.generation += 1  # invalidate any speculative RMW read in flight
        if op.is_rmw and self.slb is not None:
            self.slb.mark_rmw_issued(op.seq)
        gen = op.generation
        req = AccessRequest(
            req_id=next(self._req_ids),
            kind=kind,
            addr=op.addr,
            value=value,
            rmw_op=rmw_op,
            generation=gen,
            tag=op.tag,
            callback=lambda r, v, op=op, gen=gen, start=cycle:
                self._store_completed(op, gen, v, start),
        )
        accepted = self.cache.access(req)
        if not accepted:  # port raced away; retry next tick
            op.state = MemState.IN_SB
            op.generation -= 1
            return
        (self.stat_rmws if op.is_rmw else self.stat_stores).inc()
        self.trace.record(self.sim.cycle, self.name, "store_issue",
                          tag=op.tag, seq=op.seq, addr=op.addr,
                          line=self.cache.config.line_addr(op.addr))

    def _store_completed(self, op: MemOp, gen: int, value: int, start: int) -> None:
        if op.generation != gen or op.state is not MemState.SB_ISSUED:
            return
        op.state = MemState.PERFORMED
        self.stat_store_latency.add(self.sim.cycle - start)
        if op in self.store_buffer:
            self.store_buffer.remove(op)
        self.pending.pop(op.seq, None)
        if self.sc_detector is not None:
            self.sc_detector.mark_performed(op.seq)
        if op.is_rmw:
            self.rob.mark_done(op.seq, value)
        if self.slb is not None:
            self.slb.store_performed(op.seq)
            if op.is_rmw:
                self.slb.mark_done(op.seq)
        self.trace.record(self.sim.cycle, self.name, "store_complete",
                          tag=op.tag, seq=op.seq, addr=op.addr,
                          value=value, rmw=op.is_rmw)

    # -- loads -------------------------------------------------------------
    def _issue_loads(self, cycle: int) -> None:
        issued_one = False
        for op in list(self.ready_loads):
            if issued_one:
                break
            forwarded = self._try_forward(op, cycle)
            if forwarded is None:
                continue  # matching store value unknown yet; retry
            if forwarded:
                self.ready_loads.remove(op)
                issued_one = True
                continue
            if not self.cache.can_accept():
                break
            self._send_load(op, cycle)
            self.ready_loads.remove(op)
            issued_one = True

    def _try_forward(self, op: MemOp, cycle: int) -> Optional[bool]:
        """Store-buffer dependence check.  Returns True if forwarded,
        False if no match, None if a matching value is not yet ready."""
        match: Optional[MemOp] = None
        for sb in self.store_buffer:
            if sb.seq < op.seq and sb.addr == op.addr:
                match = sb  # youngest earlier store wins (keep scanning)
        if match is None:
            return False
        if match.is_rmw:
            # a load after an unperformed RMW to the same address must
            # wait for the RMW's result (uniprocessor data dependence);
            # RMWs do not forward
            return None
        value = match.data.resolve(self.rob) if match.data is not None else 0
        if value is None:
            return None
        op.forwarded = True
        op.state = MemState.ISSUED
        op.generation += 1
        gen = op.generation
        self.stat_forwards.inc()
        self.sim.schedule(
            self.cache.config.hit_latency,
            lambda: self._load_completed(op, gen, value, cycle),
            label=f"forward {op.tag}",
        )
        return True

    def _enter_slb(self, op: MemOp) -> bool:
        assert self.slb is not None
        if self.slb.get(op.seq) is not None:
            return True  # reissue path: entry already present
        if self.slb.full:
            return False
        tags = {
            e.seq
            for e in self._earlier_unperformed(op.seq)
            if e.klass.is_store and self.model.load_waits_for_store(e.klass, op.klass)
        }
        self.slb.insert(SlbEntry(
            seq=op.seq,
            addr=op.addr,
            line_addr=self.cache.config.line_addr(op.addr),
            acq=self.model.load_blocks_later_accesses(op.klass),
            store_tags=tags,
            is_rmw=op.is_rmw,
            tag=op.tag,
        ))
        self.trace.record(self.sim.cycle, self.name, "slb_insert",
                          seq=op.seq, tag=op.tag,
                          line=self.cache.config.line_addr(op.addr))
        return True

    def _send_load(self, op: MemOp, cycle: int, exclusive_hint: bool = False) -> None:
        op.state = MemState.ISSUED
        op.generation += 1
        gen = op.generation
        req = AccessRequest(
            req_id=next(self._req_ids),
            kind=AccessKind.LOAD,
            addr=op.addr,
            generation=gen,
            tag=op.tag,
            exclusive_hint=exclusive_hint,
            callback=lambda r, v, op=op, gen=gen, start=cycle:
                self._load_completed(op, gen, v, start),
        )
        if not self.cache.access(req):
            op.state = MemState.READY
            op.generation -= 1
            return
        self.stat_loads.inc()
        self.trace.record(self.sim.cycle, self.name, "load_issue",
                          tag=op.tag, seq=op.seq, addr=op.addr,
                          speculative=self.slb is not None)

    def _load_completed(self, op: MemOp, gen: int, value: int, start: int) -> None:
        if op.generation != gen:
            return  # stale response from before a reissue/squash
        if op.seq not in self.pending:
            return  # squashed
        if op.is_rmw:
            self._rmw_read_completed(op, value)
            return
        op.state = MemState.PERFORMED
        self.pending.pop(op.seq, None)
        self.stat_load_latency.add(self.sim.cycle - start)
        self.rob.mark_done(op.seq, value)
        if self.slb is not None:
            self.slb.mark_done(op.seq)
        if self.sc_detector is not None:
            self.sc_detector.mark_performed(op.seq)
        self.trace.record(self.sim.cycle, self.name, "load_complete",
                          tag=op.tag, seq=op.seq, addr=op.addr, value=value)

    # -- speculative RMW (Appendix A) ---------------------------------------
    def _issue_speculative_rmw_read(self, op: MemOp) -> None:
        assert self.slb is not None
        if not self._enter_slb(op):
            self.sim.schedule(1, lambda: self._retry_spec_rmw(op), label="slb retry")
            return
        entry = self.slb.get(op.seq)
        entry.store_tags.add(op.seq)  # its own store-buffer tag (Appendix A)
        self._try_send_rmw_read(op)

    def _retry_spec_rmw(self, op: MemOp) -> None:
        if op.seq not in self.pending or op.state is not MemState.IN_SB:
            return
        self._issue_speculative_rmw_read(op)

    def _try_send_rmw_read(self, op: MemOp) -> None:
        """Issue the speculative read-exclusive, honouring the store
        buffer dependence check.

        The cache knows nothing about this processor's own pending
        stores, so a speculative read that bypassed an earlier buffered
        store to the same address would bind a stale value *without any
        coherence event ever exposing it* (e.g. a lock RMW reading 1
        while the unlock that writes 0 sits in the store buffer — a
        lost lock acquisition).  We conservatively wait until no earlier
        same-address store-buffer entry is outstanding.
        """
        if op.seq not in self.pending:
            return  # squashed
        if op.state is not MemState.IN_SB:
            return  # the real RMW has issued; its result is authoritative
        blocked = any(sb.seq < op.seq and sb.addr == op.addr and not sb.performed
                      for sb in self.store_buffer)
        if blocked:
            self.sim.schedule(1, lambda: self._try_send_rmw_read(op),
                              label="rmw read dep wait")
            return
        self._send_rmw_read(op)

    def _send_rmw_read(self, op: MemOp) -> None:
        gen = op.generation
        req = AccessRequest(
            req_id=next(self._req_ids),
            kind=AccessKind.LOAD,
            addr=op.addr,
            generation=gen,
            exclusive_hint=True,
            tag=op.tag + " (spec read)",
            callback=lambda r, v, op=op, gen=gen: self._spec_rmw_read_done(op, gen, v),
        )
        if not self.cache.access(req):
            self.sim.schedule(1, lambda: self._retry_rmw_read(op, gen), label="rmw read retry")

    def _retry_rmw_read(self, op: MemOp, gen: int) -> None:
        if op.generation != gen or op.seq not in self.pending:
            return
        self._send_rmw_read(op)

    def _spec_rmw_read_done(self, op: MemOp, gen: int, value: int) -> None:
        if op.generation != gen or op.seq not in self.pending:
            return  # RMW was issued (or squashed); ignore the spec result
        # the speculative old-value is made available to dependents
        self.rob.mark_done(op.seq, value)
        if self.slb is not None:
            self.slb.mark_done(op.seq)
        self.trace.record(self.sim.cycle, self.name, "rmw_spec_value",
                          tag=op.tag, seq=op.seq, value=value)

    def _rmw_read_completed(self, op: MemOp, value: int) -> None:
        # demand RMW path never routes here: actual RMWs complete via
        # _store_completed.  (Reached only if a LOAD-kind callback was
        # wired to an RMW op outside the spec path, which is a bug.)
        raise AssertionError("RMW ops complete via the store buffer path")

    # ------------------------------------------------------------------
    # Detection & correction plumbing
    # ------------------------------------------------------------------
    def _on_snoop(self, kind: SnoopKind, line_addr: int) -> None:
        if self.sc_detector is not None:
            self.sc_detector.on_snoop(kind, line_addr)
        if self.slb is None:
            return
        for corr in self.slb.on_snoop(kind, line_addr):
            self._apply_correction(corr, kind)

    def _apply_correction(self, corr: Correction, kind: SnoopKind) -> None:
        # rollback-cause accounting: which coherence event triggered
        # which correction (Section 4.2's detection outcomes)
        bucket = ("reissue" if corr.kind is CorrectionKind.REISSUE
                  else "rollback")
        self.sim.stats.counter(
            f"cpu{self.cpu_id}/slb/{bucket}_cause/{kind.value}").inc()
        op = self.pending.get(corr.seq)
        if corr.kind is CorrectionKind.REISSUE:
            if op is None or op.is_rmw:
                return
            self.trace.record(self.sim.cycle, self.name, "slb_reissue",
                              seq=corr.seq, tag=op.tag, snoop=kind.value)
            op.generation += 1
            if op.state is MemState.ISSUED:
                op.state = MemState.READY
                op.forwarded = False
                if op not in self.ready_loads:
                    self.ready_loads.append(op)
                    self.ready_loads.sort(key=lambda o: o.seq)
            return
        entry = self.rob.get(corr.seq)
        if entry is None:
            return
        if corr.kind is CorrectionKind.SQUASH_FROM:
            self.trace.record(self.sim.cycle, self.name, "slb_squash",
                              seq=corr.seq, tag=entry.describe(), snoop=kind.value)
            self.request_squash(corr.seq, entry.pc, "speculative load violated")
        else:  # SQUASH_AFTER (issued RMW keeps its own result)
            self.trace.record(self.sim.cycle, self.name, "slb_squash_after",
                              seq=corr.seq, tag=entry.describe(), snoop=kind.value)
            if op is not None and not op.performed:
                # the previously-bound speculative value may be stale;
                # re-decoded dependents must wait for the atomic's own
                # return value (Appendix A)
                entry.done = False
                entry.value = None
            self.request_squash(corr.seq + 1, entry.pc + 1, "computation after RMW violated")

    # ------------------------------------------------------------------
    # Squash (called by the processor)
    # ------------------------------------------------------------------
    def squash(self, seqs: Set[int]) -> None:
        self.rs = deque(op for op in self.rs if op.seq not in seqs)
        if self.addr_unit is not None and self.addr_unit[0].seq in seqs:
            self.addr_unit = None
        self.ready_loads = [op for op in self.ready_loads if op.seq not in seqs]
        for op in self.store_buffer:
            if op.seq in seqs:
                assert op.state is not MemState.SB_ISSUED, \
                    "an issued store can never be squashed (it passed the ROB head)"
        self.store_buffer = [op for op in self.store_buffer if op.seq not in seqs]
        for seq in seqs:
            op = self.pending.pop(seq, None)
            if op is not None:
                op.generation += 1  # drop in-flight responses
            if self.sc_detector is not None:
                self.sc_detector.discard(seq)
        if self.slb is not None:
            self.slb.squash(seqs)

    # ------------------------------------------------------------------
    # Prefetch candidates (Section 3.2: accesses delayed in the buffers)
    # ------------------------------------------------------------------
    def _prefetch_candidates(self) -> Tuple[List[MemOp], List[PrefetchCandidate]]:
        """Delayed accesses with computable addresses, oldest first.

        Returns parallel lists; the caller marks ``prefetch_issued``
        only on the prefix the prefetcher actually consumed.
        """
        ops: List[MemOp] = []
        candidates: List[PrefetchCandidate] = []

        def offer(op: MemOp, addr: int, exclusive: bool) -> None:
            ops.append(op)
            candidates.append(PrefetchCandidate(addr, exclusive=exclusive, tag=op.tag))

        # store buffer entries not yet allowed to issue
        for op in self.store_buffer:
            if (op.state is MemState.IN_SB and not op.prefetch_issued
                    and not self.cache.config.is_uncached(op.addr)):
                offer(op, op.addr, exclusive=True)
        # delayed (not yet issued) loads at the issue stage
        for op in self.ready_loads:
            if not op.prefetch_issued:
                offer(op, op.addr, exclusive=False)
        # reservation-station (and address-unit) entries whose addresses
        # are computable via instruction-stream lookahead
        scan = [self.addr_unit[0]] if self.addr_unit is not None else []
        scan.extend(self.rs)
        for op in scan:
            if op.prefetch_issued or op.is_sw_prefetch:
                continue
            base = op.base.resolve(self.rob)
            if base is None:
                continue
            offer(op, base + op.offset, exclusive=op.klass.is_store)
        return ops, candidates

    # ------------------------------------------------------------------
    # Retirement support
    # ------------------------------------------------------------------
    def may_retire(self, entry: RobEntry) -> bool:
        op = self.pending.get(entry.seq)
        slb_clear = self.slb is None or self.slb.is_cleared(entry.seq)
        if entry.instr.is_load and not entry.instr.is_rmw:
            return entry.done and slb_clear
        if entry.instr.is_rmw:
            return op is None and entry.done and slb_clear  # performed
        # plain store
        if op is None:
            return True  # already performed
        if op.state not in (MemState.IN_SB, MemState.SB_ISSUED):
            return False  # address not translated yet
        if not op.signalled:
            return False
        if self.model.name in ("SC",):
            # SC: the store at the head is not retired until it completes
            return op.performed
        return True

    def is_empty(self) -> bool:
        return (not self.rs and self.addr_unit is None and not self.ready_loads
                and not self.store_buffer and not self.pending
                and (self.slb is None or self.slb.empty))

    def snapshot(self) -> Dict[str, List[str]]:
        """Buffer contents for Figure 5-style traces."""
        out = {
            "rs": [op.tag for op in self.rs],
            "store_buffer": [op.tag for op in self.store_buffer],
        }
        if self.slb is not None:
            out["slb"] = [e.describe() for e in self.slb.entries()]
        return out

"""The dynamically scheduled processor (paper, Figure 3).

A Johnson-style out-of-order core: instructions are fetched and decoded
in program order, renamed through the reorder buffer, dispatched to
per-unit reservation stations, executed out of order, and retired in
order.  Conditional branches are predicted and executed past; the
rollback machinery that repairs mispredictions is reused verbatim for
speculative-load corrections — which is the paper's central
implementation argument (Section 4.2: "the correction mechanism for the
branch prediction machinery can easily be extended to handle correction
for speculative load accesses").
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..isa.instructions import (
    Alu,
    Branch,
    Halt,
    Instruction,
    Jump,
    Load,
    Nop,
    Rmw,
    SoftwarePrefetch,
    Store,
)
from ..isa.program import Program
from ..isa.registers import RegisterFile
from ..memory.cache import LockupFreeCache
from ..obs.accounting import CycleAccountant
from ..sim.kernel import Component, Simulator, WAKE_NEVER
from ..sim.trace import NullTraceRecorder, TraceRecorder
from .branch import BranchPredictor
from .config import ProcessorConfig
from .lsu import LoadStoreUnit
from .rob import Operand, ReorderBuffer, RobEntry
from .units import AluUnit, BranchUnit


def _reason_slug(reason: str) -> str:
    """A squash reason as a stable stat-name component."""
    return reason.replace(" ", "_").replace("/", "_")


class Processor(Component):
    """One core executing one program against its coherent cache."""

    def __init__(
        self,
        cpu_id: int,
        sim: Simulator,
        program: Program,
        cache: LockupFreeCache,
        config: Optional[ProcessorConfig] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.cpu_id = cpu_id
        self.sim = sim
        self.program = program
        self.config = config or ProcessorConfig()
        self.trace = trace or NullTraceRecorder()
        self.name = f"cpu{cpu_id}"

        self.regfile = RegisterFile()
        self.rob = ReorderBuffer(self.config.rob_size)
        self.predictor = BranchPredictor(self.config.dynamic_branch_prediction)
        self.alu_unit = AluUnit(self.rob, self.config.alu_rs_size,
                                self.config.alu_count, self._on_alu_complete)
        self.branch_unit = BranchUnit(self.rob, self.config.alu_rs_size,
                                      self._on_branch_resolve)
        self.lsu = LoadStoreUnit(cpu_id, sim, cache, self.rob, self.config,
                                 trace=self.trace)
        self.lsu.request_squash = self.squash_from

        self.pc = 0
        self._next_seq = 0
        self.fetch_halted = False   # a Halt has been fetched (maybe speculatively)
        self.finished = False       # the Halt has retired: program truly done
        self._skip_counters: tuple = ()  # stashed by next_wake for skip_cycles

        s = sim.stats
        self.stat_retired = s.counter(f"{self.name}/instructions_retired")
        self.stat_decoded = s.counter(f"{self.name}/instructions_decoded")
        self.stat_squashed = s.counter(f"{self.name}/instructions_squashed")
        self.stat_squashes = s.counter(f"{self.name}/squash_events")
        self.stat_mispredicts = s.counter(f"{self.name}/branch_mispredicts")
        self.stat_squash_depth = s.histogram(f"{self.name}/squash_depth")
        self.accountant = CycleAccountant(s, self.name)

    # ------------------------------------------------------------------
    # Per-cycle pipeline (reverse dataflow order)
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        if self.finished:
            # the program has retired, but stores already signalled may
            # still be draining from the store buffer (RC/WC/PC)
            self.lsu.tick(cycle)
            self.accountant.account_drained(self.lsu.is_empty())
            return
        retired_before = self.stat_retired.value
        self._retire(cycle)
        self.lsu.tick(cycle)
        self.branch_unit.tick(cycle)
        self.alu_unit.tick(cycle)
        self._decode(cycle)
        self.accountant.account(
            retired=self.stat_retired.value - retired_before,
            head=self.rob.head(),
            rob_full=self.rob.full,
        )

    def is_quiescent(self) -> bool:
        return self.finished and self.lsu.is_empty()

    # ------------------------------------------------------------------
    # Sleep protocol (kernel fast-forward)
    # ------------------------------------------------------------------
    def next_wake(self, cycle: int) -> int:
        """Earliest future cycle this core's tick would change state.

        A returned wake beyond ``cycle + 1`` promises every elided tick
        is a pure stall whose only effects are the per-cycle counters
        stashed here and replayed by :meth:`skip_cycles`.  Any doubt
        resolves to ``cycle + 1`` (keep ticking) — under-sleeping is
        always safe.
        """
        if self.finished:
            profile = self.lsu.sleep_profile()
            if profile is None:
                return cycle + 1
            wake, lsu_counters = profile
            self._skip_counters = (
                self.accountant.drained_counter(self.lsu.is_empty()),
            ) + lsu_counters
            return wake
        # cheapest checks first: the LSU mirror is the expensive one and
        # only worth computing once everything else is provably idle
        if not self._retire_would_idle():
            return cycle + 1
        if not self._decode_would_idle():
            return cycle + 1
        if not self.branch_unit.would_idle():
            return cycle + 1
        alu_wake = self.alu_unit.next_wake(cycle)
        if alu_wake <= cycle + 1:
            return cycle + 1
        profile = self.lsu.sleep_profile()
        if profile is None:
            return cycle + 1
        lsu_wake, lsu_counters = profile
        self._skip_counters = (
            self.accountant.stall_counter(self.rob.head(), self.rob.full),
        ) + lsu_counters
        return min(lsu_wake, alu_wake)

    def skip_cycles(self, skipped: int) -> None:
        for counter in self._skip_counters:
            counter.inc(skipped)

    def _retire_would_idle(self) -> bool:
        """Mirror of :meth:`_retire`: True when the next tick would
        neither retire nor mutate anything (signalling a store head
        counts as a mutation — it happens exactly once)."""
        head = self.rob.head()
        if head is None:
            return True
        instr = head.instr
        if isinstance(instr, (Store, Rmw)) and not head.signalled:
            return False
        if instr.is_memory:
            return not self.lsu.may_retire(head)
        return not head.done

    def _decode_would_idle(self) -> bool:
        """Mirror of :meth:`_decode`: True when the next tick cannot
        dispatch (and would not latch ``fetch_halted``)."""
        if self.fetch_halted or self.rob.full:
            return True
        instr = self.program.at(self.pc)
        if instr is None:
            return False  # tick would set fetch_halted
        if isinstance(instr, Alu):
            return self.alu_unit.rs_full
        if isinstance(instr, Branch):
            return self.branch_unit.rs_full
        if isinstance(instr, (Load, Store, Rmw, SoftwarePrefetch)):
            return self.lsu.rs_full
        return False  # Nop/Jump/Halt always dispatch

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def _retire(self, cycle: int) -> None:
        for _ in range(self.config.width):
            head = self.rob.head()
            if head is None:
                return
            instr = head.instr
            if isinstance(instr, (Store, Rmw)) and not head.signalled:
                head.signalled = True
                self.lsu.signal_store(head.seq)
            if instr.is_memory:
                if not self.lsu.may_retire(head):
                    return
            elif not head.done:
                return
            self.rob.retire_head()
            self.stat_retired.inc()
            if self.trace.enabled:
                acq = getattr(instr, "is_acquire", False)
                rel = getattr(instr, "is_release", False)
                sync = {(True, True): "full", (True, False): "acquire",
                        (False, True): "release"}.get((acq, rel))
                extra = {"sync": sync} if sync else {}
                self.trace.record(
                    cycle, self.name, "retire",
                    seq=head.seq, pc=head.pc,
                    op=type(instr).__name__.lower(),
                    bound=head.value is not None, **extra)
            if head.dst is not None and head.value is not None:
                self.regfile.write(head.dst, head.value)
            if isinstance(instr, Halt):
                self.finished = True
                self.trace.record(cycle, self.name, "finished")
                return

    # ------------------------------------------------------------------
    # Decode / rename / dispatch
    # ------------------------------------------------------------------
    def _operand(self, reg: str) -> Operand:
        if reg == "r0":
            return Operand(value=0)
        producer = self.rob.rename_of(reg)
        if producer is None:
            return Operand(value=self.regfile.read(reg))
        value = self.rob.value_of(producer)
        if value is not None:
            return Operand(value=value)
        return Operand(producer=producer)

    def _decode(self, cycle: int) -> None:
        for _ in range(self.config.width):
            if self.fetch_halted or self.rob.full:
                return
            instr = self.program.at(self.pc)
            if instr is None:
                self.fetch_halted = True
                return
            if not self._dispatch(instr, cycle):
                return

    def _dispatch(self, instr: Instruction, cycle: int) -> bool:
        """Decode one instruction; False when a structural stall occurs."""
        seq = self._next_seq
        pc = self.pc

        if isinstance(instr, Halt):
            entry = RobEntry(seq=seq, pc=pc, instr=instr, dst=None, done=True)
            self.rob.allocate(entry)
            self.fetch_halted = True
            self._advance(seq, pc + 1)
            return False

        if isinstance(instr, Nop):
            entry = RobEntry(seq=seq, pc=pc, instr=instr, dst=None, done=True)
            self.rob.allocate(entry)
            self._advance(seq, pc + 1)
            return True

        if isinstance(instr, Jump):
            entry = RobEntry(seq=seq, pc=pc, instr=instr, dst=None, done=True)
            self.rob.allocate(entry)
            self._advance(seq, self.program.target_pc(instr.target))
            return True

        if isinstance(instr, Alu):
            if self.alu_unit.rs_full:
                return False
            operands = [self._operand(instr.src1)]
            if instr.src2 is not None:
                operands.append(self._operand(instr.src2))
            entry = RobEntry(seq=seq, pc=pc, instr=instr, dst=instr.dst)
            self.rob.allocate(entry)
            self.alu_unit.dispatch(entry, operands)
            self._advance(seq, pc + 1)
            return True

        if isinstance(instr, Branch):
            if self.branch_unit.rs_full:
                return False
            operand = self._operand(instr.cond)
            taken = self.predictor.predict(pc, instr)
            target = self.program.target_pc(instr.target)
            next_pc = target if taken else pc + 1
            entry = RobEntry(seq=seq, pc=pc, instr=instr, dst=None,
                             predicted_taken=taken, predicted_next_pc=next_pc)
            self.rob.allocate(entry)
            self.branch_unit.dispatch(entry, [operand])
            self._advance(seq, next_pc)
            return True

        if isinstance(instr, SoftwarePrefetch):
            if self.lsu.rs_full:
                return False
            entry = RobEntry(seq=seq, pc=pc, instr=instr, dst=None)
            self.rob.allocate(entry)
            self.lsu.dispatch(entry, self._operand(instr.base), None)
            self._advance(seq, pc + 1)
            return True

        if isinstance(instr, (Load, Store, Rmw)):
            if self.lsu.rs_full:
                return False
            base = self._operand(instr.base)
            data: Optional[Operand] = None
            if isinstance(instr, (Store, Rmw)):
                data = self._operand(instr.src)
            dst = instr.dst if isinstance(instr, (Load, Rmw)) else None
            entry = RobEntry(seq=seq, pc=pc, instr=instr, dst=dst)
            self.rob.allocate(entry)
            self.lsu.dispatch(entry, base, data)
            self._advance(seq, pc + 1)
            return True

        raise TypeError(f"cannot dispatch {instr!r}")  # pragma: no cover

    def _advance(self, seq: int, next_pc: int) -> None:
        self._next_seq = seq + 1
        self.pc = next_pc
        self.stat_decoded.inc()

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------
    def _on_alu_complete(self, entry: RobEntry, value: int) -> None:
        self.rob.mark_done(entry.seq, value)

    def _on_branch_resolve(self, entry: RobEntry, taken: bool) -> None:
        instr = entry.instr
        assert isinstance(instr, Branch)
        actual_next = (self.program.target_pc(instr.target) if taken
                       else entry.pc + 1)
        entry.resolved_next_pc = actual_next
        self.rob.mark_done(entry.seq, None)
        mispredicted = actual_next != entry.predicted_next_pc
        self.predictor.update(entry.pc, instr, taken, mispredicted)
        if mispredicted:
            self.stat_mispredicts.inc()
            self.trace.record(self.sim.cycle, self.name, "mispredict",
                              pc=entry.pc, taken=taken)
            self.squash_from(entry.seq + 1, actual_next, "branch mispredict")

    # ------------------------------------------------------------------
    # Rollback — shared by branches and speculative loads
    # ------------------------------------------------------------------
    def squash_from(self, seq: int, refetch_pc: int, reason: str) -> None:
        """Discard ROB entry ``seq`` and everything younger, clear all
        buffers of the discarded work, and restart fetch at
        ``refetch_pc`` (Section 4.2's correction mechanism)."""
        discarded = self.rob.squash_from(seq)
        if not discarded and self.pc == refetch_pc:
            return
        squashed: Set[int] = set(discarded)
        self.alu_unit.squash(squashed)
        self.branch_unit.squash(squashed)
        self.lsu.squash(squashed)
        self.pc = refetch_pc
        self.fetch_halted = False
        self.finished = False
        self.stat_squashes.inc()
        self.stat_squashed.inc(len(squashed))
        self.stat_squash_depth.add(len(squashed))
        self.sim.stats.counter(
            f"{self.name}/squash_reason/{_reason_slug(reason)}").inc()
        self.accountant.note_squash()
        self.trace.record(self.sim.cycle, self.name, "squash",
                          count=len(squashed), from_seq=seq,
                          refetch_pc=refetch_pc, reason=reason)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.finished

    def snapshot(self) -> Dict[str, object]:
        """Buffer contents for Figure 5-style traces."""
        out: Dict[str, object] = {
            "rob": [e.describe() for e in self.rob.entries()],
            "pc": self.pc,
        }
        out.update(self.lsu.snapshot())
        return out

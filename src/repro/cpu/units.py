"""Compute-side functional units and their reservation stations.

Each functional unit (ALU, branch unit) has a reservation station
(Tomasulo): decoded instructions wait there until their operands are
produced, then execute for the instruction's latency and write their
result into the reorder buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..isa.instructions import Alu, Branch
from ..sim.kernel import WAKE_NEVER
from .rob import Operand, ReorderBuffer, RobEntry


@dataclass
class RsEntry:
    seq: int
    entry: RobEntry
    operands: List[Operand]


@dataclass
class _Executing:
    seq: int
    entry: RobEntry
    values: List[int]
    finish_cycle: int


class AluUnit:
    """``alu_count`` pipelined integer units sharing one reservation station."""

    def __init__(self, rob: ReorderBuffer, rs_size: int, alu_count: int,
                 on_complete: Callable[[RobEntry, int], None]) -> None:
        self.rob = rob
        self.rs_size = rs_size
        self.alu_count = alu_count
        self.on_complete = on_complete
        self.rs: List[RsEntry] = []
        self._executing: List[_Executing] = []

    @property
    def rs_full(self) -> bool:
        return len(self.rs) >= self.rs_size

    def dispatch(self, entry: RobEntry, operands: List[Operand]) -> None:
        self.rs.append(RsEntry(entry.seq, entry, operands))

    def tick(self, cycle: int) -> None:
        # complete
        still_running: List[_Executing] = []
        for ex in self._executing:
            if cycle >= ex.finish_cycle:
                self._finish(ex)
            else:
                still_running.append(ex)
        self._executing = still_running
        # issue (oldest-first) up to the number of free units
        free = self.alu_count - len(self._executing)
        if free <= 0:
            return
        issued: List[RsEntry] = []
        for rs_entry in sorted(self.rs, key=lambda r: r.seq):
            if free == 0:
                break
            values = [op.resolve(self.rob) for op in rs_entry.operands]
            if any(v is None for v in values):
                continue
            instr = rs_entry.entry.instr
            latency = instr.latency if isinstance(instr, Alu) else 1
            self._executing.append(
                _Executing(rs_entry.seq, rs_entry.entry, values, cycle + latency)
            )
            issued.append(rs_entry)
            free -= 1
        for rs_entry in issued:
            self.rs.remove(rs_entry)

    def _finish(self, ex: _Executing) -> None:
        instr = ex.entry.instr
        if isinstance(instr, Alu):
            a = ex.values[0]
            b = ex.values[1] if len(ex.values) > 1 else (instr.imm or 0)
            result = instr.compute(a, b)
        else:  # Nop-like
            result = 0
        self.on_complete(ex.entry, result)

    def squash(self, seqs: set) -> None:
        self.rs = [r for r in self.rs if r.seq not in seqs]
        self._executing = [e for e in self._executing if e.seq not in seqs]

    def is_empty(self) -> bool:
        return not self.rs and not self._executing

    def next_wake(self, cycle: int) -> int:
        """Earliest cycle a tick would change state (sleep support).

        A free unit with a fully resolvable reservation-station entry
        would issue next tick; otherwise the next change is the earliest
        in-flight completion, and with nothing executing the unit is
        purely waiting on operands (an external state change).
        """
        if self.alu_count > len(self._executing):
            for rs_entry in self.rs:
                if all(op.resolve(self.rob) is not None
                       for op in rs_entry.operands):
                    return cycle + 1
        if self._executing:
            return min(ex.finish_cycle for ex in self._executing)
        return WAKE_NEVER


class BranchUnit:
    """Resolves conditional branches one per cycle."""

    def __init__(self, rob: ReorderBuffer, rs_size: int,
                 on_resolve: Callable[[RobEntry, bool], None]) -> None:
        self.rob = rob
        self.rs_size = rs_size
        self.on_resolve = on_resolve
        self.rs: List[RsEntry] = []

    @property
    def rs_full(self) -> bool:
        return len(self.rs) >= self.rs_size

    def dispatch(self, entry: RobEntry, operands: List[Operand]) -> None:
        self.rs.append(RsEntry(entry.seq, entry, operands))

    def tick(self, cycle: int) -> None:
        for rs_entry in sorted(self.rs, key=lambda r: r.seq):
            value = rs_entry.operands[0].resolve(self.rob)
            if value is None:
                continue
            self.rs.remove(rs_entry)
            instr = rs_entry.entry.instr
            assert isinstance(instr, Branch)
            self.on_resolve(rs_entry.entry, instr.outcome(value))
            return  # one resolution per cycle

    def squash(self, seqs: set) -> None:
        self.rs = [r for r in self.rs if r.seq not in seqs]

    def is_empty(self) -> bool:
        return not self.rs

    def would_idle(self) -> bool:
        """True when no buffered branch has a resolvable condition yet."""
        return all(r.operands[0].resolve(self.rob) is None for r in self.rs)

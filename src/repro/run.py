"""Run assembly programs on the simulator (``python -m repro.run``).

Takes one or more assembly files (one per processor), a consistency
model, and technique flags; runs the multiprocessor to completion and
prints cycles, per-CPU registers, and memory/statistics summaries.

Example::

    python -m repro.run producer.s consumer.s --model RC \
        --prefetch --speculation --miss-latency 100 \
        --init 0x80=0 --watch 0x40 --stats
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

from .consistency import get_model
from .isa import assemble
from .sim.trace import TraceRecorder
from .system import run_workload


def parse_init(pairs: List[str]) -> Dict[int, int]:
    memory: Dict[int, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--init expects ADDR=VALUE, got {pair!r}")
        addr_text, value_text = pair.split("=", 1)
        memory[int(addr_text, 0)] = int(value_text, 0)
    return memory


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run",
        description="Run assembly programs on the multiprocessor simulator.",
    )
    parser.add_argument("programs", nargs="+",
                        help="assembly files, one per processor")
    parser.add_argument("--model", default="SC",
                        help="consistency model: SC, PC, WC, RC, RCsc")
    parser.add_argument("--prefetch", action="store_true",
                        help="enable hardware non-binding prefetch")
    parser.add_argument("--speculation", action="store_true",
                        help="enable speculative loads")
    parser.add_argument("--miss-latency", type=int, default=100)
    parser.add_argument("--max-cycles", type=int, default=1_000_000)
    parser.add_argument("--init", action="append", default=[],
                        metavar="ADDR=VALUE", help="initial memory word")
    parser.add_argument("--watch", action="append", default=[],
                        metavar="ADDR", help="print this word afterwards")
    parser.add_argument("--regs", action="append", default=[],
                        metavar="REG", help="registers to print (default r1-r8)")
    parser.add_argument("--stats", action="store_true",
                        help="dump the full statistics registry")
    parser.add_argument("--summary", action="store_true",
                        help="print the per-CPU digest (IPC, stalls, ...)")
    parser.add_argument("--trace", action="store_true",
                        help="print the event trace")
    parser.add_argument("--analyze", action="store_true",
                        help="run the static race analyzer before simulating")
    parser.add_argument("--sanitize", action="store_true",
                        help="check trace invariants after the run "
                             "(exits non-zero on a violation)")
    args = parser.parse_args(argv)

    programs = []
    for path in args.programs:
        with open(path) as fh:
            programs.append(assemble(fh.read()))

    model = get_model(args.model)
    if args.analyze:
        from .analysis.static import analyze_programs
        print(analyze_programs(programs, model).render())
        print()

    trace = TraceRecorder() if (args.trace or args.sanitize) else None
    result = run_workload(
        programs,
        model=model,
        prefetch=args.prefetch,
        speculation=args.speculation,
        miss_latency=args.miss_latency,
        initial_memory=parse_init(args.init),
        max_cycles=args.max_cycles,
        trace=trace,
    )

    print(f"completed in {result.cycles} cycles "
          f"(model={args.model.upper()}, prefetch={args.prefetch}, "
          f"speculation={args.speculation})")
    regs = args.regs or [f"r{i}" for i in range(1, 9)]
    for cpu in range(len(programs)):
        values = ", ".join(f"{r}={result.machine.reg(cpu, r)}" for r in regs)
        print(f"cpu{cpu}: {values}")
    for addr_text in args.watch:
        addr = int(addr_text, 0)
        print(f"MEM[{addr:#x}] = {result.machine.read_word(addr)}")
    if args.trace and trace is not None:
        print("--- trace ---")
        print(trace.render())
    if args.summary:
        from .analysis.summary import summary_table
        print(summary_table(result).render())
    if args.stats:
        from .sim.stats import format_stats_table
        print(format_stats_table(result.stats.snapshot(), title="statistics"))
    if args.sanitize and trace is not None:
        from .analysis.static import sanitize_trace
        report = sanitize_trace(trace, model=model)
        print(report.render())
        if not report.ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Run assembly programs on the simulator (``python -m repro.run``).

Takes one or more assembly files (one per processor), a consistency
model, and technique flags; runs the multiprocessor to completion and
prints cycles, per-CPU registers, and memory/statistics summaries.
``--example`` substitutes one of the paper's built-in kernels (with
their warm-cache / initial-memory environment) for the assembly files.

Example::

    python -m repro.run producer.s consumer.s --model RC \
        --prefetch --speculation --miss-latency 100 \
        --init 0x80=0 --watch 0x40 --stats

Observability outputs::

    python -m repro.run --example example2 --model SC --breakdown
    python -m repro.run prog.s --stats-json stats.json \
        --perfetto run.trace.json --trace-jsonl run.jsonl
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from typing import Dict, List, Optional

from .consistency import get_model
from .isa import assemble
from .sim.trace import TraceRecorder
from .system import run_workload


def parse_init(pairs: List[str]) -> Dict[int, int]:
    memory: Dict[int, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--init expects ADDR=VALUE, got {pair!r}")
        addr_text, value_text = pair.split("=", 1)
        memory[int(addr_text, 0)] = int(value_text, 0)
    return memory


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run",
        description="Run assembly programs on the multiprocessor simulator.",
    )
    parser.add_argument("programs", nargs="*",
                        help="assembly files, one per processor")
    parser.add_argument("--example",
                        choices=("example1", "example2", "figure5"),
                        help="run a built-in paper kernel (with its "
                             "warm-cache/memory environment) instead of "
                             "assembly files")
    parser.add_argument("--model", default="SC",
                        help="consistency model: SC, PC, WC, RC, RCsc")
    parser.add_argument("--prefetch", action="store_true",
                        help="enable hardware non-binding prefetch")
    parser.add_argument("--speculation", action="store_true",
                        help="enable speculative loads")
    parser.add_argument("--miss-latency", type=int, default=100)
    parser.add_argument("--max-cycles", type=int, default=1_000_000)
    parser.add_argument("--init", action="append", default=[],
                        metavar="ADDR=VALUE", help="initial memory word")
    parser.add_argument("--watch", action="append", default=[],
                        metavar="ADDR", help="print this word afterwards")
    parser.add_argument("--regs", action="append", default=[],
                        metavar="REG", help="registers to print (default r1-r8)")
    parser.add_argument("--stats", action="store_true",
                        help="dump the full statistics registry")
    parser.add_argument("--summary", action="store_true",
                        help="print the per-CPU digest (IPC, stalls, ...)")
    parser.add_argument("--trace", action="store_true",
                        help="print the event trace")
    parser.add_argument("--analyze", action="store_true",
                        help="run the static race analyzer before simulating")
    parser.add_argument("--sanitize", action="store_true",
                        help="check trace invariants after the run "
                             "(exits non-zero on a violation)")
    parser.add_argument("--breakdown", action="store_true",
                        help="print the per-CPU cycle-cause breakdown "
                             "and technique-effectiveness counters")
    parser.add_argument("--profile", action="store_true",
                        help="host-side self-profiler: per-component "
                             "wall-time shares, simulated cycles/sec and "
                             "KIPS (also lands host/profile/* gauges in "
                             "--stats/--stats-json)")
    parser.add_argument("--progress", action="store_true",
                        help="live heartbeat on stderr while the "
                             "simulation runs (implies profiling)")
    parser.add_argument("--progress-every", type=int, default=25_000,
                        metavar="CYCLES",
                        help="heartbeat interval in simulated cycles "
                             "(default 25000)")
    parser.add_argument("--stats-json", metavar="FILE",
                        help="write the statistics snapshot as JSON")
    parser.add_argument("--perfetto", metavar="FILE",
                        help="export the trace as Chrome/Perfetto "
                             "trace_event JSON (implies tracing)")
    parser.add_argument("--trace-jsonl", metavar="FILE",
                        help="stream every trace event to FILE as JSONL "
                             "(implies tracing)")
    parser.add_argument("--archtrace", metavar="FILE",
                        help="write the canonical architectural event "
                             "stream (retires, load/store/RMW values, "
                             "coherence transitions, squashes) as JSONL "
                             "for `python -m repro.obs diff`; does not "
                             "disable the kernel fast path")
    parser.add_argument("--trace-limit", type=int, metavar="N",
                        default=TraceRecorder.DEFAULT_BATCH_MAX_EVENTS,
                        help="keep at most N trace events in memory "
                             "(0 = unbounded; --sanitize needs the full "
                             "trace and ignores the limit)")
    parser.add_argument("--ledger", metavar="FILE", default=None,
                        help="run-ledger JSONL path (default: "
                             "$REPRO_LEDGER or .repro/ledger.jsonl)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append this run to the run ledger")
    args = parser.parse_args(argv)

    if not args.programs and not args.example:
        parser.error("need assembly files or --example")

    programs = []
    program_sha256: List[str] = []
    for path in args.programs:
        with open(path) as fh:
            text = fh.read()
        program_sha256.append(hashlib.sha256(text.encode()).hexdigest())
        programs.append(assemble(text))

    initial_memory = parse_init(args.init)
    warm_lines = ()
    if args.example:
        from .obs.report import example_workload
        wl = example_workload(args.example)
        programs.append(wl.program)
        warm_lines = wl.warm_lines
        initial_memory = {**wl.initial_memory, **initial_memory}

    model = get_model(args.model)
    if args.analyze:
        from .analysis.static import analyze_programs
        report = analyze_programs(programs, model)
        print(report.render())
        static_verdict = ("every execution is sequentially consistent"
                          if report.sc_guaranteed
                          else "executions may violate sequential consistency")
        print("verdicts side by side:")
        print(f"  static analyzer : {static_verdict}")
        print(f"  axiomatic checker: {report.axiomatic_verdict}")
        print()

    tracing = (args.trace or args.sanitize or args.perfetto
               or args.trace_jsonl)
    trace = None
    if tracing:
        # the sanitizer checks whole-run invariants, so it must see an
        # unbounded trace; everything else respects --trace-limit
        limit = (None if (args.sanitize or args.trace_limit <= 0)
                 else args.trace_limit)
        if args.trace_jsonl:
            from .obs.jsonl import JsonlTraceRecorder
            trace = JsonlTraceRecorder(args.trace_jsonl, max_events=limit)
        else:
            trace = TraceRecorder(max_events=limit)
    archtrace = None
    sink = trace
    if args.archtrace:
        from .obs.archtrace import ArchTraceCollector, TeeTrace
        archtrace = ArchTraceCollector(
            max_events=None if args.trace_limit <= 0 else args.trace_limit)
        sink = archtrace if trace is None else TeeTrace(trace, archtrace)
    profiler = None
    if args.profile or args.progress:
        from .sim.profiler import HostHeartbeat, HostProfiler

        def heartbeat(hb: HostHeartbeat) -> None:
            print(f"\r  {hb.describe()}", end="", file=sys.stderr,
                  flush=True)

        profiler = HostProfiler(
            heartbeat=heartbeat if args.progress else None,
            heartbeat_cycles=max(1, args.progress_every))
    t0 = time.perf_counter()
    result = run_workload(
        programs,
        model=model,
        prefetch=args.prefetch,
        speculation=args.speculation,
        miss_latency=args.miss_latency,
        initial_memory=initial_memory,
        warm_lines=warm_lines,
        max_cycles=args.max_cycles,
        trace=sink,
        profile=profiler if profiler is not None else False,
    )
    wall = time.perf_counter() - t0

    if args.progress:
        print(file=sys.stderr)
    print(f"completed in {result.cycles} cycles "
          f"(model={args.model.upper()}, prefetch={args.prefetch}, "
          f"speculation={args.speculation})")
    regs = args.regs or [f"r{i}" for i in range(1, 9)]
    for cpu in range(len(programs)):
        values = ", ".join(f"{r}={result.machine.reg(cpu, r)}" for r in regs)
        print(f"cpu{cpu}: {values}")
    for addr_text in args.watch:
        addr = int(addr_text, 0)
        print(f"MEM[{addr:#x}] = {result.machine.read_word(addr)}")
    if args.trace and trace is not None:
        print("--- trace ---")
        print(trace.render())
    if args.summary:
        from .analysis.summary import summary_table
        print(summary_table(result).render())
    if args.breakdown:
        from .obs.report import breakdown_table, effectiveness_table
        print(breakdown_table(result).render())
        print(effectiveness_table(result).render())
    if args.profile and profiler is not None:
        print(profiler.render(result.stats))
    if args.stats:
        from .sim.stats import format_stats_table
        print(format_stats_table(result.stats.snapshot(), title="statistics"))
    if args.stats_json:
        snapshot = dict(result.stats.snapshot())
        snapshot["cycles"] = result.cycles
        with open(args.stats_json, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"statistics written to {args.stats_json}")
    if args.perfetto and trace is not None:
        from .obs.perfetto import export_chrome_trace
        obj = export_chrome_trace(trace, args.perfetto,
                                  breakdowns=result.breakdowns())
        dropped = f" ({trace.dropped} dropped)" if trace.dropped else ""
        print(f"perfetto trace written to {args.perfetto} "
              f"({len(obj['traceEvents'])} event(s){dropped})")
    if args.trace_jsonl and trace is not None:
        trace.close()
        print(f"jsonl trace written to {args.trace_jsonl} "
              f"({trace.streamed} event(s))")
    if archtrace is not None:
        watched = sorted({int(a, 0) for a in args.watch}
                         | set(initial_memory))
        archtrace.finalize(
            cycles=result.cycles,
            final_memory={a: result.machine.read_word(a) for a in watched},
            breakdowns=result.breakdowns())
        count = archtrace.write_jsonl(
            args.archtrace, backend="scalar",
            label=f"{args.model.upper()} prefetch={args.prefetch} "
                  f"speculation={args.speculation}")
        dropped = (f" ({archtrace.dropped} dropped)"
                   if archtrace.dropped else "")
        print(f"archtrace written to {args.archtrace} "
              f"({count} event(s){dropped})")
    sanitize_ok = True
    if args.sanitize and trace is not None:
        from .analysis.static import sanitize_trace
        report = sanitize_trace(trace, model=model)
        print(report.render())
        sanitize_ok = report.ok

    if not args.no_ledger:
        from .obs import ledger as ledger_mod

        artifacts = {key: value for key, value in (
            ("stats_json", args.stats_json),
            ("perfetto", args.perfetto),
            ("trace_jsonl", args.trace_jsonl),
            ("archtrace", args.archtrace),
        ) if value}
        ledger_mod.append_record(ledger_mod.make_record(
            kind="run",
            request={
                "example": args.example,
                "programs_sha256": program_sha256,
                "model": args.model.upper(),
                "prefetch": args.prefetch,
                "speculation": args.speculation,
                "miss_latency": args.miss_latency,
                "max_cycles": args.max_cycles,
                "init": {str(a): v for a, v in sorted(initial_memory.items())},
            },
            outcome={"cycles": result.cycles,
                     "sanitize_ok": sanitize_ok},
            wall_seconds=wall,
            items=result.cycles,
            artifacts=artifacts or None,
        ), args.ledger)

    return 0 if sanitize_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Memory fabric assembly: interconnect + directory + per-CPU caches.

This is the memory-system half of a multiprocessor, usable on its own
(the protocol tests drive caches directly) and by the full
:class:`~repro.system.machine.Multiprocessor`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..coherence.directory import DirectoryController
from ..coherence.messages import Message, MessageKind
from ..memory.cache import LockupFreeCache
from ..memory.interconnect import Interconnect
from ..memory.types import CacheConfig, LatencyConfig
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder


def latency_by_kind(lat: LatencyConfig):
    """Interconnect latency function keyed on message kind."""

    table = {
        MessageKind.READ: lat.request,
        MessageKind.READX: lat.request,
        MessageKind.UPGRADE: lat.request,
        MessageKind.WRITEBACK: lat.request,
        MessageKind.UPDATE_WRITE: lat.request,
        MessageKind.DATA: lat.response,
        MessageKind.DATA_EXCL: lat.response,
        MessageKind.WB_ACK: lat.response,
        MessageKind.UPDATE_DONE: lat.response,
        MessageKind.INVAL: lat.inval,
        MessageKind.INVAL_ACK: lat.inval_ack,
        MessageKind.UPDATE: lat.inval,
        MessageKind.UPDATE_ACK: lat.inval_ack,
        MessageKind.RECALL: lat.recall,
        MessageKind.RECALL_INVAL: lat.recall,
        MessageKind.RECALL_ACK: lat.recall_response,
        MessageKind.UNCACHED_OP: lat.request,
        MessageKind.UNCACHED_DONE: lat.response,
    }

    def fn(msg: Message) -> int:
        return table[msg.kind]

    return fn


class MemoryFabric:
    """N coherent caches over one directory and interconnect."""

    def __init__(
        self,
        sim: Simulator,
        num_cpus: int,
        cache_config: Optional[CacheConfig] = None,
        latencies: Optional[LatencyConfig] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.cache_config = cache_config or CacheConfig()
        self.latencies = latencies or LatencyConfig()
        self.net = Interconnect(sim, latency_by_kind(self.latencies))
        self.directory = DirectoryController(
            sim, self.net, self.latencies,
            line_size=self.cache_config.line_size, trace=trace,
        )
        self.caches: List[LockupFreeCache] = [
            LockupFreeCache(cpu, sim, self.net, self.cache_config, trace=trace)
            for cpu in range(num_cpus)
        ]

    def init_memory(self, values: Dict[int, int]) -> None:
        self.directory.init_memory(values)

    def read_word(self, addr: int) -> int:
        """Coherent read of the current global value of ``addr``.

        Checks for a dirty copy in some cache first, then falls back to
        the backing store.  Debug/validation helper — not a timed path.
        """
        line_addr = self.cache_config.line_addr(addr)
        ent = self.directory.entry(line_addr)
        if isinstance(ent.owner, int) and 0 <= ent.owner < len(self.caches):
            owned = self.caches[ent.owner].peek_word(addr)
            if owned is not None:
                return owned
        return self.directory.read_word(addr)

    def warm(self, cpu: int, addr: int, exclusive: bool = False) -> None:
        """Pre-install the line containing ``addr`` into ``cpu``'s cache,
        updating directory state to match (warm-start for experiments
        where the paper declares an access a cache hit)."""
        from ..coherence.directory import DirState
        from ..memory.types import LineState

        line_addr = self.cache_config.line_addr(addr)
        base = line_addr * self.cache_config.line_size
        data = [self.directory.read_word(base + i)
                for i in range(self.cache_config.line_size)]
        state = LineState.MODIFIED if exclusive else LineState.SHARED
        self.caches[cpu].warm_install(line_addr, state, data)
        ent = self.directory.entry(line_addr)
        if exclusive:
            ent.state = DirState.EXCLUSIVE
            ent.owner = cpu
            ent.sharers = set()
        else:
            if ent.state is DirState.EXCLUSIVE:
                raise ValueError("cannot warm-share a line that is exclusively owned")
            ent.state = DirState.SHARED
            ent.sharers.add(cpu)

    def is_quiescent(self) -> bool:
        return (
            self.net.is_quiescent()
            and self.directory.is_quiescent()
            and all(c.is_quiescent() for c in self.caches)
        )

"""System assembly: memory fabric, scripted agents, the multiprocessor."""

from .agent import ScriptedAgent
from .fabric import MemoryFabric, latency_by_kind
from .machine import MachineConfig, Multiprocessor, RunResult, run_workload

__all__ = [
    "MachineConfig",
    "MemoryFabric",
    "Multiprocessor",
    "RunResult",
    "ScriptedAgent",
    "latency_by_kind",
    "run_workload",
]

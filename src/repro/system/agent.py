"""A scripted coherence agent.

Attaches to the interconnect like a cache, but is driven by a script of
(cycle, action) pairs instead of a processor.  Used to inject precisely
timed coherence events — e.g. the invalidation for location D that
Figure 5 assumes arrives mid-execution — without having to reverse-
engineer a second processor's pipeline timing.

The agent is a well-behaved protocol citizen: it acks invalidations and
recalls, and keeps just enough line state to answer them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..coherence.messages import DIRECTORY_NODE, Message, MessageKind, NodeId
from ..memory.interconnect import Interconnect
from ..sim.errors import ProtocolError
from ..sim.kernel import Simulator


class ScriptedAgent:
    """A fake processor node issuing scripted coherence requests."""

    def __init__(self, node: NodeId, sim: Simulator, net: Interconnect,
                 line_size: int = 4) -> None:
        self.node = node
        self.sim = sim
        self.net = net
        self.line_size = line_size
        self._owned: Dict[int, List[int]] = {}   # line_addr -> data
        self._shared: Dict[int, List[int]] = {}
        net.attach(node, self.receive)

    # ------------------------------------------------------------------
    # Scripted actions
    # ------------------------------------------------------------------
    def write_at(self, cycle: int, addr: int, value: int) -> None:
        """Schedule a write: a READX that invalidates every other copy."""
        line_addr = addr // self.line_size

        def fire() -> None:
            self.net.send(Message(kind=MessageKind.READX, src=self.node,
                                  dst=DIRECTORY_NODE, line_addr=line_addr))
            self._pending_write = (line_addr, addr % self.line_size, value)

        self.sim.schedule_at(cycle, fire, label=f"agent write {addr:#x}")

    def read_at(self, cycle: int, addr: int) -> None:
        """Schedule a read: a READ that downgrades a remote owner."""
        line_addr = addr // self.line_size

        def fire() -> None:
            self.net.send(Message(kind=MessageKind.READ, src=self.node,
                                  dst=DIRECTORY_NODE, line_addr=line_addr))

        self.sim.schedule_at(cycle, fire, label=f"agent read {addr:#x}")

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    _pending_write: Optional[tuple] = None

    def receive(self, msg: Message) -> None:
        if msg.kind is MessageKind.DATA_EXCL:
            data = list(msg.data or [0] * self.line_size)
            if self._pending_write and self._pending_write[0] == msg.line_addr:
                _, widx, value = self._pending_write
                data[widx] = value
                self._pending_write = None
            self._owned[msg.line_addr] = data
        elif msg.kind is MessageKind.DATA:
            self._shared[msg.line_addr] = list(msg.data or [])
        elif msg.kind is MessageKind.INVAL:
            self._shared.pop(msg.line_addr, None)
            self._owned.pop(msg.line_addr, None)
            self.net.send(Message(kind=MessageKind.INVAL_ACK, src=self.node,
                                  dst=DIRECTORY_NODE, line_addr=msg.line_addr,
                                  txn=msg.txn))
        elif msg.kind in (MessageKind.RECALL, MessageKind.RECALL_INVAL):
            data = self._owned.pop(msg.line_addr, None)
            if msg.kind is MessageKind.RECALL and data is not None:
                self._shared[msg.line_addr] = data
            self.net.send(Message(kind=MessageKind.RECALL_ACK, src=self.node,
                                  dst=DIRECTORY_NODE, line_addr=msg.line_addr,
                                  txn=msg.txn, data=data))
        elif msg.kind in (MessageKind.WB_ACK, MessageKind.UPDATE_DONE):
            pass
        elif msg.kind is MessageKind.UPDATE:
            self.net.send(Message(kind=MessageKind.UPDATE_ACK, src=self.node,
                                  dst=DIRECTORY_NODE, line_addr=msg.line_addr,
                                  txn=msg.txn))
        else:
            raise ProtocolError(f"scripted agent cannot handle {msg.describe()}")

"""The full multiprocessor: N out-of-order cores over the memory fabric.

This is the top-level entry point of the detailed simulator.  A
:class:`Multiprocessor` takes one program per CPU, a machine
configuration (consistency model, techniques, latencies, cache
geometry), and runs to completion.

A convenience one-shot, :func:`run_workload`, covers the common
experiment pattern: build, warm, run, return a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..consistency.models import ConsistencyModel, SC
from ..cpu.config import ProcessorConfig
from ..cpu.processor import Processor
from ..isa.program import Program
from ..memory.types import CacheConfig, LatencyConfig
from ..obs.accounting import CycleBreakdown, machine_breakdown, per_cpu_breakdowns
from ..sim.errors import ConfigurationError
from ..sim.kernel import Simulator
from ..sim.profiler import HostProfiler
from ..sim.stats import StatsRegistry
from ..sim.trace import NullTraceRecorder, TraceRecorder
from .agent import ScriptedAgent
from .fabric import MemoryFabric


@dataclass
class MachineConfig:
    """Everything needed to build a multiprocessor."""

    model: ConsistencyModel = SC
    enable_prefetch: bool = False
    enable_speculation: bool = False
    cache: CacheConfig = field(default_factory=CacheConfig)
    latencies: LatencyConfig = field(default_factory=lambda: LatencyConfig.from_miss_latency(100))
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)

    def processor_config(self) -> ProcessorConfig:
        return replace(
            self.processor,
            model=self.model,
            enable_prefetch=self.enable_prefetch,
            enable_speculation=self.enable_speculation,
        )


@dataclass
class RunResult:
    cycles: int
    stats: StatsRegistry
    machine: "Multiprocessor"

    def counter(self, name: str) -> int:
        return self.stats.counter(name).value

    def breakdowns(self) -> List[CycleBreakdown]:
        """Per-CPU cycle-cause breakdowns (each sums to ``cycles``)."""
        return per_cpu_breakdowns(self.stats, len(self.machine.processors))

    def breakdown(self) -> CycleBreakdown:
        """All CPUs' cycle causes summed."""
        return machine_breakdown(self.stats, len(self.machine.processors))


class Multiprocessor:
    def __init__(
        self,
        programs: Sequence[Program],
        config: Optional[MachineConfig] = None,
        trace: Optional[TraceRecorder] = None,
        extra_agents: int = 0,
        profile: Union[bool, HostProfiler] = False,
        fast_forward: bool = True,
    ) -> None:
        if not programs:
            raise ConfigurationError("need at least one program")
        self.config = config or MachineConfig()
        self.trace = trace or NullTraceRecorder()
        self.sim = Simulator(profile=profile, fast_forward=fast_forward)
        self.fabric = MemoryFabric(
            self.sim,
            num_cpus=len(programs),
            cache_config=self.config.cache,
            latencies=self.config.latencies,
            trace=self.trace,
        )
        pconfig = self.config.processor_config()
        self.processors: List[Processor] = []
        for cpu_id, program in enumerate(programs):
            proc = Processor(cpu_id, self.sim, program,
                             self.fabric.caches[cpu_id], pconfig,
                             trace=self.trace)
            self.sim.register(proc)
            self.processors.append(proc)
        self.agents: List[ScriptedAgent] = [
            ScriptedAgent(f"agent{i}", self.sim, self.fabric.net,
                          line_size=self.config.cache.line_size)
            for i in range(extra_agents)
        ]

    # ------------------------------------------------------------------
    def init_memory(self, values: Dict[int, int]) -> None:
        self.fabric.init_memory(values)

    def warm(self, cpu: int, addr: int, exclusive: bool = False) -> None:
        self.fabric.warm(cpu, addr, exclusive=exclusive)

    def read_word(self, addr: int) -> int:
        return self.fabric.read_word(addr)

    def reg(self, cpu: int, name: str) -> int:
        return self.processors[cpu].regfile.read(name)

    # ------------------------------------------------------------------
    def done(self) -> bool:
        return (all(p.finished for p in self.processors)
                and all(p.lsu.is_empty() for p in self.processors)
                and self.fabric.is_quiescent())

    def run(self, max_cycles: int = 1_000_000) -> int:
        """Run until every program finishes and all memory traffic drains."""
        return self.sim.run(until=self.done, max_cycles=max_cycles,
                            deadlock_check=False)


def run_workload(
    programs: Sequence[Program],
    model: ConsistencyModel = SC,
    prefetch: bool = False,
    speculation: bool = False,
    miss_latency: int = 100,
    initial_memory: Optional[Dict[int, int]] = None,
    warm_lines: Sequence[Tuple[int, int, bool]] = (),
    cache: Optional[CacheConfig] = None,
    processor: Optional[ProcessorConfig] = None,
    trace: Optional[TraceRecorder] = None,
    max_cycles: int = 1_000_000,
    extra_agents: int = 0,
    profile: Union[bool, HostProfiler] = False,
    fast_forward: bool = True,
) -> RunResult:
    """Build a machine, warm it, run it, and return the result.

    ``profile`` enables the kernel's host-side self-profiler (pass
    ``True`` or a configured :class:`~repro.sim.profiler.HostProfiler`);
    the run then carries ``host/profile/*`` gauges in its stats.

    ``fast_forward=False`` forces the kernel onto the naive
    step-every-cycle path (results are bit-identical either way; the
    differential kernel test pins this).
    """
    config = MachineConfig(
        model=model,
        enable_prefetch=prefetch,
        enable_speculation=speculation,
        latencies=LatencyConfig.from_miss_latency(miss_latency),
        cache=cache or CacheConfig(),
        processor=processor or ProcessorConfig(),
    )
    machine = Multiprocessor(programs, config, trace=trace,
                             extra_agents=extra_agents, profile=profile,
                             fast_forward=fast_forward)
    if initial_memory:
        machine.init_memory(initial_memory)
    for cpu, addr, exclusive in warm_lines:
        machine.warm(cpu, addr, exclusive=exclusive)
    cycles = machine.run(max_cycles=max_cycles)
    return RunResult(cycles=cycles, stats=machine.sim.stats, machine=machine)

"""Hybrid cycle/event simulation kernel.

The kernel advances a global clock one cycle at a time.  Each cycle:

1. every event due at this cycle fires (message deliveries, memory
   response arrivals), then
2. every registered :class:`Component` is ticked in registration order.

Components that model pipeline stages are registered in *reverse
dataflow order* (retire before fetch) by the processor, which gives the
usual one-cycle-per-stage timing without double-counting.

Idle-cycle fast-forward: components may additionally implement a
wake/sleep protocol (:meth:`Component.next_wake` /
:meth:`Component.skip_cycles`).  When every component promises that its
next ``tick`` would be a no-op until some future cycle, and the event
queue's next event is also in the future, ``run()`` jumps the clock
directly to the earliest of those instead of single-stepping through
the idle span.  Because nothing fires and nothing ticks in the skipped
span, simulation state is literally frozen across it — a component
whose idle ticks have deterministic side effects (per-cycle stall
counters) declares them via ``skip_cycles`` so results stay
bit-identical to the naive path.  The per-cycle deadlock scan collapses
into the same check: a frozen span cannot un-deadlock itself.

Determinism: no wall-clock time, no unordered dict/set iteration in any
decision path, and the event queue breaks ties by scheduling order.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Union

from .errors import DeadlockError
from .events import Event, EventCallback, EventQueue
from .profiler import HostProfiler
from .stats import StatsRegistry

#: Sentinel wake cycle meaning "no tick needed until an event arrives".
#: Purely event-driven components (caches, directory, interconnect)
#: return this from :meth:`Component.next_wake`.
WAKE_NEVER = 1 << 62


class Component:
    """Anything with per-cycle behaviour.

    Subclasses override :meth:`tick`.  A component becomes active by
    being registered with a :class:`Simulator`.
    """

    name: str = "component"

    def tick(self, cycle: int) -> None:  # pragma: no cover - interface
        """Advance one cycle of this component's local state."""

    def is_quiescent(self) -> bool:
        """True when the component has no pending work.

        Used by the kernel's deadlock detector: if *every* component is
        quiescent and the event queue is empty but the simulation has not
        reached its termination condition, we are deadlocked.
        """
        return True

    def next_wake(self, cycle: int) -> int:
        """Earliest future cycle at which this component needs a tick.

        Called at cycle ``cycle`` *after* the component has ticked.  A
        return value of ``cycle + 1`` (the default) means "tick me every
        cycle" and disables fast-forward; :data:`WAKE_NEVER` means "only
        an event can change my state".  The contract: for every cycle
        ``c`` with ``cycle < c < next_wake``, ``tick(c)`` would leave
        all simulation state unchanged *except* for the deterministic
        per-cycle effects the component replays in :meth:`skip_cycles`.
        Returning too-early wakes is always safe; too-late wakes break
        bit-identity.
        """
        return cycle + 1

    def skip_cycles(self, skipped: int) -> None:
        """Bulk-apply the per-cycle effects of ``skipped`` elided ticks.

        Invoked by the kernel immediately after a fast-forward jump, in
        registration order, once per component.  The default is a no-op;
        components whose idle ticks increment stall/idle counters apply
        ``skipped`` increments here.
        """


class Simulator:
    """Owns the clock, the event queue, the components, and statistics."""

    def __init__(self, stats: Optional[StatsRegistry] = None,
                 profile: Union[bool, HostProfiler] = False,
                 fast_forward: bool = True) -> None:
        self.cycle = 0
        self.events = EventQueue()
        self.stats = stats if stats is not None else StatsRegistry()
        self.fast_forward = fast_forward
        self._components: List[Component] = []
        self._trace_hooks: List[Callable[[int], None]] = []
        self.profiler: Optional[HostProfiler] = None
        if profile:
            self.enable_profiling(
                profile if isinstance(profile, HostProfiler) else None)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, component: Component) -> None:
        """Register a component; ticked each cycle in registration order."""
        self._components.append(component)

    def add_trace_hook(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(cycle)`` at the end of every cycle (for tracing).

        Trace hooks observe *every* cycle, so adding one disables
        idle-cycle fast-forward for the run.
        """
        self._trace_hooks.append(hook)

    def enable_profiling(
        self, profiler: Optional[HostProfiler] = None,
    ) -> HostProfiler:
        """Switch this simulator to the host-profiled step path.

        The profiler only reads the monotonic clock — simulated results
        (cycles, stats, traces) are identical with profiling on or off;
        the run merely gains ``host/profile/*`` gauges in the stats
        registry.  Idempotent; returns the active profiler.
        """
        if self.profiler is None:
            self.profiler = profiler if profiler is not None else HostProfiler()
        # shadow the class method on the instance so the un-profiled
        # step stays branch-free
        self.step = self._step_profiled  # type: ignore[method-assign]
        return self.profiler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: EventCallback, label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``delay`` of 0 means "later this same cycle" when called from an
        event, or "at the start of the next processed cycle" when called
        from a component tick.
        """
        return self.events.schedule(self.cycle + delay, callback, label)

    def schedule_at(self, cycle: int, callback: EventCallback, label: str = "") -> Event:
        if cycle < self.cycle:
            raise ValueError(f"cannot schedule in the past ({cycle} < {self.cycle})")
        return self.events.schedule(cycle, callback, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by exactly one cycle."""
        self.cycle += 1
        self.events.run_due(self.cycle)
        for component in self._components:
            component.tick(self.cycle)
        for hook in self._trace_hooks:
            hook(self.cycle)

    def _step_profiled(self) -> None:
        """``step`` with per-phase / per-component wall-time attribution."""
        prof = self.profiler
        assert prof is not None
        t0 = time.perf_counter_ns()
        self.cycle += 1
        self.events.run_due(self.cycle)
        prev = time.perf_counter_ns()
        prof.events_ns += prev - t0
        component_ns = prof.component_ns
        for component in self._components:
            component.tick(self.cycle)
            now = time.perf_counter_ns()
            key = type(component).__name__
            component_ns[key] = component_ns.get(key, 0) + (now - prev)
            prev = now
        for hook in self._trace_hooks:
            hook(self.cycle)
        end = time.perf_counter_ns()
        prof.hooks_ns += end - prev
        prof.wall_ns += end - t0
        prof.ticks += 1
        depth = len(self.events)
        prof.queue_depth_sum += depth
        if depth > prof.queue_depth_max:
            prof.queue_depth_max = depth
        prof.maybe_heartbeat(self.cycle, self.stats, depth)

    def _maybe_fast_forward(self, next_event: Optional[int], max_cycles: int) -> int:
        """Jump the clock past an idle span; return the cycles elided.

        Only jumps when the next event *and* every component wake lie
        beyond the next cycle.  The jump lands one cycle short of the
        earliest wake/event so the following ``step()`` processes that
        cycle normally; the target is clamped to ``max_cycles`` so a
        runaway-cycle :class:`DeadlockError` raises at the identical
        cycle it would on the naive path.
        """
        cycle = self.cycle
        floor = cycle + 1
        target = next_event if next_event is not None else WAKE_NEVER
        if target <= floor:
            return 0
        for component in self._components:
            wake = component.next_wake(cycle)
            if wake <= floor:
                return 0
            if wake < target:
                target = wake
        if target > max_cycles:
            target = max_cycles
        skipped = target - floor
        if skipped <= 0:
            return 0
        for component in self._components:
            component.skip_cycles(skipped)
        self.cycle = target - 1
        return skipped

    def run(
        self,
        until: Callable[[], bool],
        max_cycles: int = 1_000_000,
        deadlock_check: bool = True,
    ) -> int:
        """Step until ``until()`` is true; return the final cycle.

        Raises :class:`DeadlockError` if ``max_cycles`` elapse first, or
        earlier if every component is quiescent with an empty event queue
        while ``until()`` remains false.

        ``until`` must be a function of simulation *state* (finished
        flags, queue emptiness), not of ``self.cycle``: with fast-forward
        enabled intermediate idle cycles are never observed.
        """
        fast = self.fast_forward and not self._trace_hooks
        prof = self.profiler
        try:
            while not until():
                if self.cycle >= max_cycles:
                    raise DeadlockError(self.cycle, self._diagnose())
                next_event = self.events.next_cycle()
                if (
                    deadlock_check
                    and next_event is None
                    and all(c.is_quiescent() for c in self._components)
                ):
                    raise DeadlockError(
                        self.cycle, "all components quiescent; " + self._diagnose())
                if fast and (next_event is None or next_event > self.cycle + 1):
                    if prof is not None:
                        t0 = time.perf_counter_ns()
                        skipped = self._maybe_fast_forward(next_event, max_cycles)
                        prof.ff_ns += time.perf_counter_ns() - t0
                        if skipped:
                            prof.ff_spans += 1
                            prof.ff_cycles += skipped
                    else:
                        self._maybe_fast_forward(next_event, max_cycles)
                self.step()
        finally:
            # export even on DeadlockError — the profile is most useful
            # exactly when a run wedges
            if prof is not None:
                prof.export(self.stats)
        return self.cycle

    def _diagnose(self) -> str:
        busy = [c.name for c in self._components if not c.is_quiescent()]
        return f"non-quiescent components: {busy!r}" if busy else "no pending work anywhere"

"""Cycle-driven simulation kernel with an auxiliary event queue.

The kernel advances a global clock one cycle at a time.  Each cycle:

1. every event due at this cycle fires (message deliveries, memory
   response arrivals), then
2. every registered :class:`Component` is ticked in registration order.

Components that model pipeline stages are registered in *reverse
dataflow order* (retire before fetch) by the processor, which gives the
usual one-cycle-per-stage timing without double-counting.

Determinism: no wall-clock time, no unordered dict/set iteration in any
decision path, and the event queue breaks ties by scheduling order.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Union

from .errors import DeadlockError
from .events import Event, EventCallback, EventQueue
from .profiler import HostProfiler
from .stats import StatsRegistry


class Component:
    """Anything with per-cycle behaviour.

    Subclasses override :meth:`tick`.  A component becomes active by
    being registered with a :class:`Simulator`.
    """

    name: str = "component"

    def tick(self, cycle: int) -> None:  # pragma: no cover - interface
        """Advance one cycle of this component's local state."""

    def is_quiescent(self) -> bool:
        """True when the component has no pending work.

        Used by the kernel's deadlock detector: if *every* component is
        quiescent and the event queue is empty but the simulation has not
        reached its termination condition, we are deadlocked.
        """
        return True


class Simulator:
    """Owns the clock, the event queue, the components, and statistics."""

    def __init__(self, stats: Optional[StatsRegistry] = None,
                 profile: Union[bool, HostProfiler] = False) -> None:
        self.cycle = 0
        self.events = EventQueue()
        self.stats = stats if stats is not None else StatsRegistry()
        self._components: List[Component] = []
        self._trace_hooks: List[Callable[[int], None]] = []
        self.profiler: Optional[HostProfiler] = None
        if profile:
            self.enable_profiling(
                profile if isinstance(profile, HostProfiler) else None)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, component: Component) -> None:
        """Register a component; ticked each cycle in registration order."""
        self._components.append(component)

    def add_trace_hook(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(cycle)`` at the end of every cycle (for tracing)."""
        self._trace_hooks.append(hook)

    def enable_profiling(
        self, profiler: Optional[HostProfiler] = None,
    ) -> HostProfiler:
        """Switch this simulator to the host-profiled step path.

        The profiler only reads the monotonic clock — simulated results
        (cycles, stats, traces) are identical with profiling on or off;
        the run merely gains ``host/profile/*`` gauges in the stats
        registry.  Idempotent; returns the active profiler.
        """
        if self.profiler is None:
            self.profiler = profiler if profiler is not None else HostProfiler()
        # shadow the class method on the instance so the un-profiled
        # step stays branch-free
        self.step = self._step_profiled  # type: ignore[method-assign]
        return self.profiler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: EventCallback, label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``delay`` of 0 means "later this same cycle" when called from an
        event, or "at the start of the next processed cycle" when called
        from a component tick.
        """
        return self.events.schedule(self.cycle + delay, callback, label)

    def schedule_at(self, cycle: int, callback: EventCallback, label: str = "") -> Event:
        if cycle < self.cycle:
            raise ValueError(f"cannot schedule in the past ({cycle} < {self.cycle})")
        return self.events.schedule(cycle, callback, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by exactly one cycle."""
        self.cycle += 1
        self.events.run_due(self.cycle)
        for component in self._components:
            component.tick(self.cycle)
        for hook in self._trace_hooks:
            hook(self.cycle)

    def _step_profiled(self) -> None:
        """``step`` with per-phase / per-component wall-time attribution."""
        prof = self.profiler
        assert prof is not None
        t0 = time.perf_counter_ns()
        self.cycle += 1
        self.events.run_due(self.cycle)
        prev = time.perf_counter_ns()
        prof.events_ns += prev - t0
        component_ns = prof.component_ns
        for component in self._components:
            component.tick(self.cycle)
            now = time.perf_counter_ns()
            key = type(component).__name__
            component_ns[key] = component_ns.get(key, 0) + (now - prev)
            prev = now
        for hook in self._trace_hooks:
            hook(self.cycle)
        end = time.perf_counter_ns()
        prof.hooks_ns += end - prev
        prof.wall_ns += end - t0
        prof.ticks += 1
        depth = len(self.events)
        prof.queue_depth_sum += depth
        if depth > prof.queue_depth_max:
            prof.queue_depth_max = depth
        prof.maybe_heartbeat(self.cycle, self.stats, depth)

    def run(
        self,
        until: Callable[[], bool],
        max_cycles: int = 1_000_000,
        deadlock_check: bool = True,
    ) -> int:
        """Step until ``until()`` is true; return the final cycle.

        Raises :class:`DeadlockError` if ``max_cycles`` elapse first, or
        earlier if every component is quiescent with an empty event queue
        while ``until()`` remains false.
        """
        while not until():
            if self.cycle >= max_cycles:
                raise DeadlockError(self.cycle, self._diagnose())
            if (
                deadlock_check
                and self.events.next_cycle() is None
                and all(c.is_quiescent() for c in self._components)
            ):
                raise DeadlockError(self.cycle, "all components quiescent; " + self._diagnose())
            self.step()
        if self.profiler is not None:
            self.profiler.export(self.stats)
        return self.cycle

    def _diagnose(self) -> str:
        busy = [c.name for c in self._components if not c.is_quiescent()]
        return f"non-quiescent components: {busy!r}" if busy else "no pending work anywhere"

"""Structured trace recording.

The Figure 5 reproduction needs an event-by-event record of the reorder
buffer, store buffer, speculative-load buffer, and cache contents.  The
:class:`TraceRecorder` collects :class:`TraceEvent` records emitted by
components; tests and benchmarks assert against the recorded sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event.

    ``kind`` is a short machine-readable tag (``"issue"``, ``"squash"``,
    ``"inval"``, ...); ``detail`` carries event-specific payload such as
    the instruction label or the buffer snapshot.
    """

    cycle: int
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.cycle:>6}] {self.source:<14} {self.kind:<18} {extras}"


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records.

    Recording can be filtered by ``kinds`` to keep long simulations
    cheap; with ``kinds=None`` everything is kept.
    """

    def __init__(self, kinds: Optional[Iterable[str]] = None, enabled: bool = True) -> None:
        self.events: List[TraceEvent] = []
        self._kinds = frozenset(kinds) if kinds is not None else None
        self.enabled = enabled

    def record(self, cycle: int, source: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        self.events.append(TraceEvent(cycle, source, kind, dict(detail)))

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        wanted = frozenset(kinds)
        return [ev for ev in self.events if ev.kind in wanted]

    def first(self, kind: str) -> Optional[TraceEvent]:
        for ev in self.events:
            if ev.kind == kind:
                return ev
        return None

    def render(self) -> str:
        return "\n".join(ev.describe() for ev in self.events)

    def clear(self) -> None:
        self.events.clear()


class NullTraceRecorder(TraceRecorder):
    """A recorder that drops everything (default for batch runs)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(self, cycle: int, source: str, kind: str, **detail: Any) -> None:
        return

"""Structured trace recording.

The Figure 5 reproduction needs an event-by-event record of the reorder
buffer, store buffer, speculative-load buffer, and cache contents.  The
:class:`TraceRecorder` collects :class:`TraceEvent` records emitted by
components; tests and benchmarks assert against the recorded sequence.

Long batch runs should bound the recorder with ``max_events``: the
recorder then behaves as a ring buffer that keeps the most recent
events and counts the rest in ``dropped`` instead of growing without
limit.  Post-processors (the trace sanitizer, the Perfetto exporter)
can check ``dropped`` to know whether they saw a complete run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event.

    ``kind`` is a short machine-readable tag (``"issue"``, ``"squash"``,
    ``"inval"``, ...); ``detail`` carries event-specific payload such as
    the instruction label or the buffer snapshot.
    """

    cycle: int
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.cycle:>6}] {self.source:<14} {self.kind:<18} {extras}"


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records.

    Recording can be filtered by ``kinds`` to keep long simulations
    cheap; with ``kinds=None`` everything is kept.  ``max_events``
    turns the recorder into a bounded ring buffer: once full, the
    oldest event is discarded for each new one and ``dropped`` counts
    the discards.  ``max_events=None`` keeps everything (the historical
    behaviour, right for short runs and golden-trace tests).
    """

    #: ring-buffer bound batch entry points default to (``run.py``,
    #: benchmark drivers); interactive/test uses keep everything
    DEFAULT_BATCH_MAX_EVENTS = 200_000

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        enabled: bool = True,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1 or None, got {max_events}")
        self._events: Deque[TraceEvent] = deque()
        self._kinds = frozenset(kinds) if kinds is not None else None
        self.enabled = enabled
        self.max_events = max_events
        self.dropped = 0

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (a fresh list)."""
        return list(self._events)

    def record(self, cycle: int, source: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        if self.max_events is not None and len(self._events) >= self.max_events:
            self._events.popleft()
            self.dropped += 1
        self._events.append(TraceEvent(cycle, source, kind, dict(detail)))

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        wanted = frozenset(kinds)
        return [ev for ev in self._events if ev.kind in wanted]

    def first(self, kind: str) -> Optional[TraceEvent]:
        for ev in self._events:
            if ev.kind == kind:
                return ev
        return None

    def render(self) -> str:
        return "\n".join(ev.describe() for ev in self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


class NullTraceRecorder(TraceRecorder):
    """A recorder that drops everything (default when tracing is off)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(self, cycle: int, source: str, kind: str, **detail: Any) -> None:
        return

"""Exception hierarchy for the simulator.

Every error raised by the library derives from :class:`SimulationError` so
callers can catch simulator failures without also swallowing programming
errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class ConfigurationError(SimulationError):
    """A component was configured with inconsistent or illegal parameters."""


class DeadlockError(SimulationError):
    """The simulation reached its cycle limit without making progress.

    Carries the cycle at which the deadlock was declared and a short
    diagnostic describing what each processor was waiting on.
    """

    def __init__(self, cycle: int, diagnostic: str = "") -> None:
        self.cycle = cycle
        self.diagnostic = diagnostic
        msg = f"simulation made no progress by cycle {cycle}"
        if diagnostic:
            msg += f": {diagnostic}"
        super().__init__(msg)


class ProtocolError(SimulationError):
    """The coherence protocol reached an illegal state transition."""


class IsaError(SimulationError):
    """An instruction was malformed or referenced an illegal operand."""


class AssemblerError(IsaError):
    """The textual assembler rejected its input."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        self.line_no = line_no
        self.line = line
        self.reason = reason
        super().__init__(f"line {line_no}: {reason!r} in {line!r}")

"""BatchRunner: route job lists onto the lockstep engine.

The runner is the public face of ``repro.sim.batch``: it takes a list
of :class:`~repro.sim.batch.jobs.BatchJob`, runs everything it can on
the vectorized :class:`~repro.sim.batch.engine.BatchEngine`, and falls
back to the scalar ``run_workload`` for anything outside the engine's
envelope (techniques on, branches, dynamic addressing, ...) or any lane
that deadlocks — the scalar rerun reproduces the genuine
:class:`~repro.sim.errors.DeadlockError` with the identical cycle.
Results always come back in input order, one per job, regardless of
how jobs were grouped or which backend ran them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...consistency.models import get_model
from ...sim.stats import StatsRegistry
from ...system.machine import run_workload
from .compile import (CompiledProgram, compile_core, job_unsupported_reason,
                      specialize_model)
from .engine import BatchEngine
from .jobs import BatchJob


def _tm():
    """Campaign telemetry, imported lazily (cycle-safe, stdlib-only)."""
    from ...obs import telemetry
    return telemetry


_THREAD_PREFIX = re.compile(r"^T\d+: ")


def _reason_label(reason: str) -> str:
    """Normalize an unsupported-reason string into a low-cardinality
    metric label: per-thread prefixes (``T3: branch``) collapse onto
    the underlying reason so the counter groups by *cause*."""
    return _THREAD_PREFIX.sub("", reason)


@dataclass
class BatchResult:
    """Outcome of one job: mirrors what ``run_workload`` exposes.

    ``error`` carries the exception a scalar run would have raised
    (``DeadlockError`` for a hung lane); callers decide when to raise
    so batched sweeps can keep ordering semantics identical to serial
    scalar loops.
    """

    job: BatchJob
    backend: str  # "batched" | "scalar" | "scalar-fallback"
    cycles: Optional[int] = None
    error: Optional[BaseException] = None
    unsupported_reason: Optional[str] = None
    #: finalized ArchTraceCollector when the job asked for one; the
    #: header of any serialization must carry ``backend`` and
    #: ``unsupported_reason`` so a scalar fallback is never silent
    archtrace: Optional[object] = field(
        default=None, repr=False, compare=False)
    _stats: Optional[StatsRegistry] = field(
        default=None, repr=False, compare=False)
    _stats_thunk: Optional[Callable[[], StatsRegistry]] = field(
        default=None, repr=False, compare=False)
    _read_word: Optional[Callable[[int], int]] = field(
        default=None, repr=False, compare=False)

    @property
    def stats(self) -> Optional[StatsRegistry]:
        """Lane statistics, materialized on first access.

        Batched lanes keep their stats in the engine's packed
        accumulators; building the scalar-shaped ``StatsRegistry`` is
        deferred so outcome-only consumers (the fuzz harness) never pay
        for it.
        """
        if self._stats is None and self._stats_thunk is not None:
            self._stats = self._stats_thunk()
        return self._stats

    @property
    def ok(self) -> bool:
        return self.error is None

    def read_word(self, addr: int) -> int:
        if self._read_word is None:
            raise RuntimeError("no final memory available (job errored)")
        return self._read_word(addr)

    def raise_if_error(self) -> "BatchResult":
        if self.error is not None:
            raise self.error
        return self

    def write_archtrace(self, path: str, label: str = "",
                        lane: Optional[int] = None) -> int:
        """Serialize the job's archtrace, tagging the header with the
        backend that actually ran and (for scalar routing of a job that
        asked for the batched engine) the specific unsupported reason —
        a fallback is visible in the stream, never silent."""
        if self.archtrace is None:
            raise RuntimeError("job did not request an archtrace")
        return self.archtrace.write_jsonl(
            path, backend=self.backend, label=label, lane=lane,
            fallback_reason=self.unsupported_reason)


class _CompileCache:
    """Per-``run`` compile memoization, keyed by program identity.

    Three layers: model-independent cores (one instruction walk per
    program object), specialized tables per (program, model), and
    ``delay_arc`` verdicts per model (the fuzz universe has only a
    handful of distinct access-class pairs).  A fuzz sweep's model x
    run-config grid collapses onto one core walk + four cheap
    specializations per program.
    """

    __slots__ = ("cores", "specialized", "arcs", "masks")

    def __init__(self) -> None:
        self.cores: Dict[int, CompiledProgram] = {}
        self.specialized: Dict[Tuple[int, str], CompiledProgram] = {}
        self.arcs: Dict[str, dict] = {}
        self.masks: Dict[str, dict] = {}

    def get(self, program, model) -> CompiledProgram:
        tm = _tm()
        key = (id(program), model.name)
        cp = self.specialized.get(key)
        if cp is None:
            tm.inc("batch/compile_memo",
                   labels={"layer": "specialized", "result": "miss"})
            core = self.cores.get(id(program))
            if core is None:
                tm.inc("batch/compile_memo",
                       labels={"layer": "core", "result": "miss"})
                core = self.cores[id(program)] = compile_core(program)
            else:
                tm.inc("batch/compile_memo",
                       labels={"layer": "core", "result": "hit"})
            cp = specialize_model(core, model,
                                  self.arcs.setdefault(model.name, {}),
                                  self.masks.setdefault(model.name, {}))
            self.specialized[key] = cp
        else:
            tm.inc("batch/compile_memo",
                   labels={"layer": "specialized", "result": "hit"})
        return cp


class BatchRunner:
    """Runs heterogeneous job lists, batching what the engine supports.

    Jobs are grouped by CPU count (one engine per group — the SoA
    tables need a homogeneous context grid); models, technique-free
    machine configs, and max_cycles may vary per lane.  Compilation is
    memoized per ``(program identity, model)`` within one ``run`` call,
    which collapses the fuzz harness's model x run-config sweeps onto a
    handful of compiles.
    """

    #: lanes per engine instance.  Every vectorized phase touches the
    #: whole context grid each step, so lanes that finished early keep
    #: costing until the entire engine drains; capping the group keeps
    #: the grid small relative to the live-lane count.  Empirically flat
    #: between 128 and 512 on fuzz mixes; results are chunking-invariant
    #: (lanes never interact), which the property suite pins down.
    chunk_size: int = 512

    def __init__(self, force_scalar: bool = False,
                 reference_fabric: bool = False,
                 chunk_size: Optional[int] = None) -> None:
        self.force_scalar = force_scalar
        self.reference_fabric = reference_fabric
        if chunk_size is not None:
            self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[BatchJob]) -> List[BatchResult]:
        jobs = list(jobs)
        results: List[Optional[BatchResult]] = [None] * len(jobs)
        groups: Dict[int, List[Tuple[int, BatchJob]]] = {}
        # strong refs (jobs) keep id()-keyed memoization sound for this
        # call: model-independent cores per program, model masks per
        # (program, model), delay_arc verdicts per model
        compile_cache = _CompileCache()
        reason_cache: Dict[int, Optional[str]] = {}

        tm = _tm()
        tm.inc("batch/jobs", len(jobs))
        scalar_routed: List[Tuple[int, BatchJob, str]] = []
        for i, job in enumerate(jobs):
            reason = None if not self.force_scalar else "forced scalar"
            if reason is None:
                reason = job_unsupported_reason(job, reason_cache)
            if reason is not None:
                scalar_routed.append((i, job, reason))
            else:
                groups.setdefault(job.ncpu, []).append((i, job))

        if scalar_routed:
            with tm.span("batch/fallback",
                         {"jobs": len(scalar_routed)}):
                for i, job, reason in scalar_routed:
                    tm.inc("batch/fallback",
                           labels={"reason": _reason_label(reason)})
                    results[i] = self._run_scalar(job, backend="scalar",
                                                  reason=reason)

        step = max(1, self.chunk_size)
        for _ncpu, members in sorted(groups.items()):
            for lo in range(0, len(members), step):
                chunk = members[lo:lo + step]
                idxs = [i for i, _ in chunk]
                batch = [job for _, job in chunk]
                for i, res in zip(idxs,
                                  self._run_batched(batch, compile_cache)):
                    results[i] = res
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    def _run_batched(self, batch: List[BatchJob],
                     compile_cache: "_CompileCache") -> List[BatchResult]:
        tm = _tm()
        with tm.span("batch/compile", {"lanes": len(batch)}):
            compiled = []
            for job in batch:
                model = get_model(job.model_name)
                compiled.append(tuple(compile_cache.get(program, model)
                                      for program in job.programs))

        arch: List[Optional[object]] = [None] * len(batch)
        if any(job.archtrace for job in batch):
            from ...obs.archtrace import ArchTraceCollector
            arch = [ArchTraceCollector() if job.archtrace else None
                    for job in batch]

        try:
            with tm.span("batch/step", {"lanes": len(batch)}):
                engine = BatchEngine(batch, compiled,
                                     reference_fabric=self.reference_fabric,
                                     arch=arch)
                engine.run()
        except Exception:
            # engine bug or unanticipated envelope escape: never lose a
            # result — rerun the whole group on the reference kernel
            tm.inc("batch/fallback", len(batch),
                   labels={"reason": "engine error"})
            with tm.span("batch/fallback", {"jobs": len(batch)}):
                return [self._run_scalar(job, backend="scalar-fallback",
                                         reason="engine error")
                        for job in batch]

        out = []
        for lane, job in enumerate(batch):
            if engine.lane_deadlocked[lane]:
                # reproduce the genuine DeadlockError (identical cycle,
                # identical message) on the reference kernel
                tm.inc("batch/fallback", labels={"reason": "deadlock"})
                out.append(self._run_scalar(job, backend="scalar-fallback",
                                            reason="deadlock"))
                continue
            fabric = engine.fabrics[lane]
            collector = arch[lane]
            if collector is not None:
                from ...obs.accounting import per_cpu_breakdowns
                collector.finalize(
                    cycles=int(engine.lane_cycles[lane]),
                    final_memory={
                        addr: fabric.read_word(addr)
                        for addr in sorted(job.initial_memory or {})},
                    breakdowns=per_cpu_breakdowns(
                        engine.materialize_stats(lane), job.ncpu))
            out.append(BatchResult(
                job=job,
                backend="batched",
                cycles=int(engine.lane_cycles[lane]),
                archtrace=collector,
                _stats_thunk=partial(engine.materialize_stats, lane),
                _read_word=fabric.read_word,
            ))
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _run_scalar(job: BatchJob, backend: str,
                    reason: Optional[str] = None) -> BatchResult:
        collector = None
        if job.archtrace:
            from ...obs.archtrace import ArchTraceCollector
            collector = ArchTraceCollector()
        try:
            rr = run_workload(
                programs=job.programs,
                model=get_model(job.model_name),
                prefetch=job.prefetch,
                speculation=job.speculation,
                miss_latency=job.miss_latency,
                initial_memory=job.initial_memory,
                warm_lines=job.warm_lines,
                cache=job.cache,
                max_cycles=job.max_cycles,
                trace=collector,
            )
        except Exception as exc:
            return BatchResult(job=job, backend=backend, error=exc,
                               unsupported_reason=reason,
                               archtrace=collector)
        if collector is not None:
            collector.finalize(
                cycles=rr.cycles,
                final_memory={addr: rr.machine.read_word(addr)
                              for addr in sorted(job.initial_memory or {})},
                breakdowns=rr.breakdowns())
        return BatchResult(
            job=job,
            backend=backend,
            cycles=rr.cycles,
            _stats=rr.stats,
            unsupported_reason=reason,
            archtrace=collector,
            _read_word=rr.machine.read_word,
        )

"""Batch job descriptions for the lockstep engine.

A :class:`BatchJob` captures exactly the arguments of
:func:`repro.system.machine.run_workload` that the batched backend
supports, so one job <=> one scalar ``run_workload`` call.  Anything
the struct-of-arrays engine cannot represent bit-exactly (techniques
on, branches, non-default processor geometry, ...) is detected by
:func:`repro.sim.batch.compile.unsupported_reason` and transparently
routed back to the scalar kernel by the :class:`~repro.sim.batch.runner.BatchRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ...isa.program import Program
from ...memory.types import CacheConfig


@dataclass
class BatchJob:
    """One independent simulation: the arguments of ``run_workload``.

    ``model_name`` is the consistency model by name (``"SC"``, ``"PC"``,
    ``"WC"``, ``"RC"``, ...) so jobs stay picklable for sweep workers.
    """

    programs: Tuple[Program, ...]
    model_name: str = "SC"
    prefetch: bool = False
    speculation: bool = False
    miss_latency: int = 100
    initial_memory: Optional[Dict[int, int]] = None
    warm_lines: Sequence[Tuple[int, int, bool]] = ()
    cache: Optional[CacheConfig] = None
    max_cycles: int = 1_000_000
    #: collect the canonical architectural event stream for this job
    #: (see :mod:`repro.obs.archtrace`); batched and scalar backends
    #: produce bit-identical streams
    archtrace: bool = False
    #: opaque caller cookie carried through to the result (job routing)
    key: object = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self.programs = tuple(self.programs)

    @property
    def ncpu(self) -> int:
        return len(self.programs)

    def cache_config(self) -> CacheConfig:
        return self.cache if self.cache is not None else CacheConfig()

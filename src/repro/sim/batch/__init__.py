"""Batched lockstep simulation: hundreds of independent runs per clock.

Public surface:

- :class:`~repro.sim.batch.jobs.BatchJob` — one ``run_workload``-shaped
  simulation description.
- :class:`~repro.sim.batch.runner.BatchRunner` /
  :class:`~repro.sim.batch.runner.BatchResult` — run job lists on the
  struct-of-arrays engine with transparent scalar fallback.
- :func:`~repro.sim.batch.compile.job_unsupported_reason` — why a job
  would fall back (None when it batches).

The scalar kernel remains the bit-exact reference; the engine is pinned
to it lane-for-lane by ``tests/test_batch_differential.py`` and the
``--backend batched`` conformance mode of ``repro.verify``.
"""

from .compile import job_unsupported_reason
from .jobs import BatchJob
from .runner import BatchResult, BatchRunner

__all__ = ["BatchJob", "BatchResult", "BatchRunner", "job_unsupported_reason"]

"""Per-lane stats parity with the scalar kernel.

A scalar ``run_workload`` eagerly creates every CPU-side counter at
construction time (so zero-valued counters still appear in snapshots),
while fabric-side counters come from the coherence layer — the real
classes in reference mode, or ``FastFabric.flush_stats`` for the fast
path.  This module reproduces the eager CPU-side creation and folds the
engine's vector accumulators and latency sample lists into a registry
*lazily*: fuzz/sweep consumers compare outcomes only and never pay for
registry construction.  Deferring histogram fills is exact because
:class:`~repro.sim.stats.Histogram` is a multiset of bucketed samples —
insertion order never affects any snapshot field.  ``squash_reason/*``
and ``slb/*`` counters are lazily created in the scalar kernel and can
never fire inside the batch envelope (no branches, no speculation), so
they are correctly absent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ...obs.accounting import CAUSES
from ...sim.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from .engine import BatchEngine

#: eager per-CPU counters, in scalar creation order (order is cosmetic —
#: snapshots sort by name — but kept for debuggability)
_PROC_COUNTERS = (
    "instructions_retired",
    "instructions_decoded",
    "instructions_squashed",
    "squash_events",
    "branch_mispredicts",
)
_LSU_COUNTERS = (
    "loads",
    "stores",
    "rmws",
    "store_forwards",
    "rs_consistency_stalls",
    "sb_consistency_stalls",
)


def create_cpu_stats(stats: StatsRegistry, ncpu: int) -> None:
    """Pre-create the eager CPU-side counters/histograms for a lane."""
    for k in range(ncpu):
        for name in _PROC_COUNTERS:
            stats.counter(f"cpu{k}/{name}")
        stats.histogram(f"cpu{k}/squash_depth")
        for cause in CAUSES:
            stats.counter(f"cpu{k}/cycles/{cause.value}")
        for name in _LSU_COUNTERS:
            stats.counter(f"cpu{k}/lsu/{name}")
        stats.histogram(f"cpu{k}/lsu/load_latency")
        stats.histogram(f"cpu{k}/lsu/store_latency")


def materialize_lane_stats(stats: StatsRegistry, engine: "BatchEngine",
                           lane: int) -> None:
    """Fold one lane's accumulators into ``stats`` (CPU side only; the
    fabric side comes from the lane fabric's own counters)."""
    ncpu = engine.ncpu
    create_cpu_stats(stats, ncpu)
    for k in range(ncpu):
        ctx = lane * ncpu + k
        stats.counter(f"cpu{k}/instructions_retired").inc(
            int(engine.retired_acc[ctx]))
        stats.counter(f"cpu{k}/instructions_decoded").inc(
            int(engine.decoded_acc[ctx]))
        for ci, cause in enumerate(CAUSES):
            amount = int(engine.cause_acc[ctx, ci])
            if amount:
                stats.counter(f"cpu{k}/cycles/{cause.value}").inc(amount)
        stats.counter(f"cpu{k}/lsu/loads").inc(int(engine.loads_acc[ctx]))
        stats.counter(f"cpu{k}/lsu/stores").inc(int(engine.stores_acc[ctx]))
        stats.counter(f"cpu{k}/lsu/rmws").inc(int(engine.rmws_acc[ctx]))
        stats.counter(f"cpu{k}/lsu/store_forwards").inc(
            int(engine.forwards_acc[ctx]))
        stats.counter(f"cpu{k}/lsu/rs_consistency_stalls").inc(
            int(engine.rs_stalls_acc[ctx]))
        stats.counter(f"cpu{k}/lsu/sb_consistency_stalls").inc(
            int(engine.sb_stalls_acc[ctx]))
        load_hist = stats.histogram(f"cpu{k}/lsu/load_latency")
        for sample in engine.load_lat[ctx]:
            load_hist.add(sample)
        store_hist = stats.histogram(f"cpu{k}/lsu/store_latency")
        for sample in engine.store_lat[ctx]:
            store_hist.add(sample)


def snapshot_names(stats: StatsRegistry) -> List[str]:
    """Sorted stat names (debug helper for differential diffs)."""
    return sorted(stats.snapshot())

"""Struct-of-arrays lockstep engine: many simulations, one clock.

One :class:`BatchEngine` steps L independent simulations ("lanes") of
``ncpu`` CPUs each.  CPU state lives in packed numpy arrays indexed by
*context* (``ctx = lane * ncpu + cpu``): the per-cycle work — retire,
decode, reservation-station advance, address-unit drain, ALU
issue/complete, cycle accounting — is vectorized across every context
at once, which kills the O(cycles x cpus) interpreted-python term that
dominates the scalar kernel.  Per-*operation* work (cache accesses,
store forwards, completion callbacks) stays plain python against a
per-lane coherence fabric — by default the transliterated
:class:`~repro.sim.batch.coherence.FastFabric`, or the real
:class:`~repro.system.fabric.MemoryFabric` component graph when
constructed with ``reference_fabric=True`` (slow; for triage).  Either
way that work is O(memory ops), not O(cycles), and the protocol
behaviour is scalar-identical.

Bit-exactness contract
----------------------

Every phase below mirrors one method of the scalar kernel, in the same
order the scalar ``Processor.tick`` / ``LoadStoreUnit.tick`` run them:

=================  =====================================================
engine phase       scalar counterpart
=================  =====================================================
event drain        ``Simulator.step`` -> ``EventQueue.run_due``
retire (x width)   ``Processor._retire``
addr-unit drain    ``LoadStoreUnit._drain_addr_unit``
RS advance         ``LoadStoreUnit._advance_rs``
store issue        ``LoadStoreUnit._issue_stores``
load issue         ``LoadStoreUnit._issue_loads`` / ``_try_forward``
ALU complete+issue ``AluUnit.tick``
decode (x width)   ``Processor._decode``
accountant         ``CycleAccountant.account`` / ``account_drained``
staged flush       (event-queue scheduling-order tie break)
lane completion    ``Multiprocessor.done`` via ``Simulator.run(until=)``
deadlock check     ``Simulator.run`` max_cycles check
fast-forward       ``Simulator.run`` idle-span jump
=================  =====================================================

Running phase-major across CPUs (all contexts retire, then all drain,
...) instead of CPU-major is safe because within one cycle no two CPUs
write shared state before the issue phases, and cache/directory/
interconnect interaction is mediated by per-channel messages whose
delivery order is fixed by the staged event keys ``(lane, cpu, phase)``
— exactly the order the scalar kernel's global event-queue sequence
numbers would impose.

Events are kept in one shared heap keyed ``(when, lane, seq)`` with
per-lane monotone sequence numbers.  Schedules made *during the event
drain* (cache pipelines chaining) push immediately — the scalar
``run_due`` executes same-cycle chained events in the same drain.
Schedules made *during tick phases* (cache accesses, store forwards)
are staged and flushed in ``(lane, cpu, phase, chronological)`` order,
reproducing the scalar per-CPU tick order.

Idle-cycle fast-forward: when a processed cycle turns out to be a pure
stall for every live lane (nothing retired, decoded, drained, advanced,
issued, completed, or fired), every gate in the machine is
cycle-invariant until the next event, so the engine jumps the clock to
``min(next event, next deadlock horizon)`` and bulk-replays the skipped
cycles' accounting (cycle causes and rs/sb consistency-stall counters
repeat the stalled cycle's pattern exactly — the same replay the scalar
kernel's wake/sleep protocol performs).
"""

from __future__ import annotations

import heapq
import itertools
from functools import partial
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ...consistency.models import get_model
from ...memory.types import AccessKind, AccessRequest
from .compile import (
    C_BUSY,
    C_IDLE,
    C_ROB_FULL,
    C_WRITE,
    CompiledProgram,
    K_ALU,
    K_HALT,
    K_LOAD,
    K_NOP,
    K_PAD,
    K_RMW,
    K_STORE,
    RMW_OPS_BY_CODE,
)
from ...sim.stats import StatsRegistry
from .coherence import FastFabric
from .fabric import build_lane_fabric
from .jobs import BatchJob
from .stats import materialize_lane_stats

#: default ProcessorConfig geometry the engine assumes (checked against
#: the envelope by ``job_unsupported_reason``)
WIDTH = 2
ROB_SIZE = 32
ALU_RS_SIZE = 16
LS_RS_SIZE = 16
STORE_BUFFER_SIZE = 16
ALU_COUNT = 2

_ONE = np.uint64(1)
_ZERO = np.uint64(0)
_M64 = (1 << 64) - 1


def _bits(positions: np.ndarray) -> np.ndarray:
    """Elementwise ``1 << positions`` as uint64."""
    return np.left_shift(_ONE, positions.astype(np.uint64))


#: archtrace op names matching scalar ``type(instr).__name__.lower()``
_K_OPNAME = {K_ALU: "alu", K_LOAD: "load", K_STORE: "store",
             K_RMW: "rmw", K_NOP: "nop", K_HALT: "halt"}
#: archtrace sync codes from the compiler's per-pc table
_SYNC_NAMES = (None, "acquire", "release", "full")


class BatchEngine:
    """Lockstep SoA execution of a homogeneous-``ncpu`` batch of jobs."""

    def __init__(self, jobs: Sequence[BatchJob],
                 compiled: Sequence[Tuple[CompiledProgram, ...]],
                 reference_fabric: bool = False,
                 arch: Optional[Sequence] = None) -> None:
        if not jobs:
            raise ValueError("empty batch")
        ncpu = jobs[0].ncpu
        if any(j.ncpu != ncpu for j in jobs):
            raise ValueError("all jobs in one engine must share ncpu")
        self.jobs = list(jobs)
        self.ncpu = ncpu
        self.L = len(jobs)
        self.C = self.L * ncpu
        self.cycle = 0
        #: run each lane against the real component-graph MemoryFabric
        #: instead of the transliterated FastFabric (slow; for triaging
        #: any fast-path divergence back to the scalar classes)
        self.reference_fabric = reference_fabric
        #: per-lane archtrace collectors (or None); the reference fabric
        #: routes through the real component graph, which has its own
        #: trace plumbing — combining it with the engine's emission
        #: would double-count, so refuse
        if arch is not None and any(a is not None for a in arch):
            if reference_fabric:
                raise ValueError(
                    "archtrace is not supported with reference_fabric")
            if len(arch) != self.L:
                raise ValueError("need one archtrace sink per lane")
        self.arch: List = (list(arch) if arch is not None
                           else [None] * self.L)
        self._any_arch = any(a is not None for a in self.arch)

        # --- events ---------------------------------------------------
        # calendar buckets: cycle -> [(lane, fabric-or-None, fn, args)].
        # Cross-lane order inside a bucket is append order, not the old
        # (lane, seq) heap order — sound because lanes share no state;
        # per-lane order (what bit-exactness needs) is append order too.
        self._buckets: dict = {}
        self._cycle_heap: List[int] = []
        self._stage: List[tuple] = []
        self._stage_key: Optional[Tuple[int, int, int]] = None
        self._stage_n = 0
        self._events_fired = 0

        self._build_tables(compiled)
        self._build_state()
        self._build_lanes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_tables(self, compiled) -> None:
        C, L, ncpu = self.C, self.L, self.ncpu
        progs = [cp for lane in compiled for cp in lane]
        assert len(progs) == C
        P = max(cp.nseq_len for cp in progs)
        M = max(1, max(cp.n_mem for cp in progs))
        A = max(1, max(cp.n_alu for cp in progs))
        self.P, self.M, self.A = P, M, A

        self.PLEN = np.array([cp.nseq_len for cp in progs], dtype=np.int32)
        self.NMEM = np.array([cp.n_mem for cp in progs], dtype=np.int32)

        # per-pc tables, width P+1 so any in-range gather is safe
        self.KIND = np.full((C, P + 1), K_PAD, dtype=np.int8)
        self.MIDX = np.full((C, P + 1), -1, dtype=np.int16)
        self.AIDX = np.full((C, P + 1), -1, dtype=np.int16)
        self.HEADC = np.full((C, P + 1), -1, dtype=np.int8)
        self.VALSTAT = np.zeros((C, P + 1), dtype=np.int64)
        self.SYNC = np.zeros((C, P + 1), dtype=np.int8)

        self.MPC = np.zeros((C, M), dtype=np.int16)
        self.MADDR = np.zeros((C, M), dtype=np.int64)
        self.MISL = np.zeros((C, M), dtype=bool)
        self.MISS = np.zeros((C, M), dtype=bool)
        self.MISR = np.zeros((C, M), dtype=bool)
        self.MBDEP = np.full((C, M), -1, dtype=np.int16)
        self.MDDEP = np.full((C, M), -1, dtype=np.int16)
        self.MDVAL = np.zeros((C, M), dtype=np.int64)
        self.MRMW = np.full((C, M), -1, dtype=np.int8)
        self.BLOCK = np.zeros((C, M), dtype=np.uint64)
        self.SBBLOCK = np.zeros((C, M), dtype=np.uint64)
        self.FWD = np.zeros((C, M), dtype=np.uint64)
        self.MTAG: List[Tuple[str, ...]] = []

        self.APC = np.zeros((C, A), dtype=np.int16)
        self.ADEP = np.zeros((C, A), dtype=np.uint64)
        self.AREADY0 = np.zeros(C, dtype=np.uint64)

        for ctx, cp in enumerate(progs):
            n, nm, na = cp.nseq_len, cp.n_mem, cp.n_alu
            self.KIND[ctx, :n] = cp.kind
            self.MIDX[ctx, :n] = cp.midx
            self.AIDX[ctx, :n] = cp.aidx
            self.HEADC[ctx, :n] = cp.headcause
            self.VALSTAT[ctx, :n] = cp.value
            if cp.sync is not None:
                self.SYNC[ctx, :n] = cp.sync
            if nm:
                self.MPC[ctx, :nm] = cp.m_pc
                self.MADDR[ctx, :nm] = cp.m_addr
                self.MISL[ctx, :nm] = cp.m_isload
                self.MISS[ctx, :nm] = cp.m_isstore
                self.MISR[ctx, :nm] = cp.m_isrmw
                self.MBDEP[ctx, :nm] = cp.m_base_dep
                self.MDDEP[ctx, :nm] = cp.m_data_dep
                self.MDVAL[ctx, :nm] = cp.m_data_val
                self.MRMW[ctx, :nm] = cp.m_rmw_code
                self.BLOCK[ctx, :nm] = cp.block
                self.SBBLOCK[ctx, :nm] = cp.sbblock
                self.FWD[ctx, :nm] = cp.fwd
            self.MTAG.append(cp.m_tag)
            if na:
                self.APC[ctx, :na] = cp.a_pc
                self.ADEP[ctx, :na] = cp.a_depmask
            self.AREADY0[ctx] = cp.a_init_ready

        # per-ctx scalars derived from the job
        self.IS_SC = np.zeros(C, dtype=bool)
        self.HIT_LAT = [1] * C
        for lane, job in enumerate(self.jobs):
            sc = get_model(job.model_name).name == "SC"
            hl = job.cache_config().hit_latency
            for cpu in range(ncpu):
                ctx = lane * ncpu + cpu
                self.IS_SC[ctx] = sc
                self.HIT_LAT[ctx] = hl

        self.lane_max = np.array([j.max_cycles for j in self.jobs],
                                 dtype=np.int64)

    def _build_state(self) -> None:
        C = self.C
        self.finished = np.zeros(C, dtype=bool)
        self.fetch_halted = np.zeros(C, dtype=bool)
        self.nseq = np.zeros(C, dtype=np.int32)
        self.retired = np.zeros(C, dtype=np.int32)
        self.done = np.zeros((C, self.P + 1), dtype=bool)
        self.value = self.VALSTAT.copy()  # ALU results pre-bound

        self.disp = np.zeros(C, dtype=np.uint64)      # dispatched memops
        self.perf = np.zeros(C, dtype=np.uint64)      # performed memops
        self.sb = np.zeros(C, dtype=np.uint64)        # IN_SB | SB_ISSUED
        self.sbissued = np.zeros(C, dtype=np.uint64)  # SB_ISSUED
        self.ready = np.zeros(C, dtype=np.uint64)     # ready_loads
        self.sig = np.zeros(C, dtype=np.uint64)       # ROB-signalled stores
        self.n_mem_disp = np.zeros(C, dtype=np.int32)
        self.rs_next = np.zeros(C, dtype=np.int32)
        self.addr_occ = np.zeros(C, dtype=bool)
        self.addr_m = np.full(C, -1, dtype=np.int16)
        self.addr_ready = np.zeros(C, dtype=np.int64)

        self.alu_inrs = np.zeros(C, dtype=np.uint64)
        self.alu_ready = self.AREADY0.copy()
        self.exec_aidx = np.full((C, ALU_COUNT), -1, dtype=np.int16)
        self.scan_load = np.zeros(C, dtype=bool)

        self.retired_acc = np.zeros(C, dtype=np.int64)
        self.decoded_acc = np.zeros(C, dtype=np.int64)
        self.cause_acc = np.zeros((C, 7), dtype=np.int64)
        self.rs_stalls_acc = np.zeros(C, dtype=np.int64)
        self.sb_stalls_acc = np.zeros(C, dtype=np.int64)

        self.lane_active = np.ones(self.L, dtype=bool)
        self.lane_cycles = np.full(self.L, -1, dtype=np.int64)
        self.lane_deadlocked = np.zeros(self.L, dtype=bool)
        self.act = np.ones(self.C, dtype=bool)
        self._n_active = self.L

    def _build_lanes(self) -> None:
        self.shims: List = []
        self.fabrics: List = []
        self.caches = [None] * self.C
        self.req_ids = [itertools.count(1) for _ in range(self.C)]
        # live LSU accounting: flat accumulators + latency sample lists,
        # folded into a real StatsRegistry only on materialize_stats()
        self.loads_acc = np.zeros(self.C, dtype=np.int64)
        self.stores_acc = np.zeros(self.C, dtype=np.int64)
        self.rmws_acc = np.zeros(self.C, dtype=np.int64)
        self.forwards_acc = np.zeros(self.C, dtype=np.int64)
        self.load_lat: List[List[int]] = [[] for _ in range(self.C)]
        self.store_lat: List[List[int]] = [[] for _ in range(self.C)]
        self._materialized: dict = {}
        for lane, job in enumerate(self.jobs):
            if self.reference_fabric:
                shim, fabric = build_lane_fabric(self, lane, job)
                self.shims.append(shim)
            else:
                fabric = FastFabric(self, lane, job, arch=self.arch[lane])
            self.fabrics.append(fabric)
            for cpu in range(self.ncpu):
                self.caches[lane * self.ncpu + cpu] = fabric.caches[cpu]

    def materialize_stats(self, lane: int) -> StatsRegistry:
        """Build the lane's scalar-identical StatsRegistry on demand.

        Fuzz/sweep consumers compare outcomes only, so the registry (70+
        counter objects per lane) is never built unless a caller asks.
        """
        reg = self._materialized.get(lane)
        if reg is not None:
            return reg
        # reference fabric keeps its counters live on the shim registry;
        # the fast fabric flushes its plain-int counters on demand
        reg = self.shims[lane].stats if self.reference_fabric else StatsRegistry()
        materialize_lane_stats(reg, self, lane)
        if not self.reference_fabric:
            self.fabrics[lane].flush_stats(reg)
        self._materialized[lane] = reg
        return reg

    # ------------------------------------------------------------------
    # Event plumbing (FastFabric / LaneShim entry point)
    # ------------------------------------------------------------------
    def post(self, lane: int, when: int, fab, fn, args: tuple) -> None:
        """Schedule ``fn(*args)``; ``fab`` non-None marks an in-flight
        network message whose delivery decrements ``fab.in_flight``.

        During tick phases (``_stage_key`` set) the event is staged and
        flushed in scalar per-CPU order afterwards; during the event
        drain it lands in its bucket directly — the scalar ``run_due``
        executes same-cycle chained events within the same drain.
        """
        if self._stage_key is None:
            bucket = self._buckets.get(when)
            if bucket is None:
                bucket = self._buckets[when] = []
                heapq.heappush(self._cycle_heap, when)
            bucket.append((lane, fab, fn, args))
        else:
            _, cpu, rank = self._stage_key
            self._stage.append(
                (lane, cpu, rank, self._stage_n, when, fab, fn, args))
            self._stage_n += 1

    def lane_schedule(self, lane: int, when: int, callback: Callable) -> None:
        self.post(lane, when, None, callback, ())

    def _flush_staged(self) -> None:
        if not self._stage:
            return
        self._stage.sort(key=lambda t: t[:4])
        buckets = self._buckets
        for lane, _cpu, _rank, _n, when, fab, fn, args in self._stage:
            bucket = buckets.get(when)
            if bucket is None:
                bucket = buckets[when] = []
                heapq.heappush(self._cycle_heap, when)
            bucket.append((lane, fab, fn, args))
        self._stage.clear()

    def _drain_events(self) -> int:
        fired = 0
        cheap = self._cycle_heap
        buckets = self._buckets
        active = self.lane_active
        while cheap and cheap[0] <= self.cycle:
            # handlers may post same-cycle follow-ups: those create a
            # fresh bucket for this cycle, re-pushed and drained by the
            # outer loop (the scalar run_due's same-drain chaining)
            bucket = buckets.pop(heapq.heappop(cheap))
            for lane, fab, fn, args in bucket:
                if not active[lane]:
                    continue  # deadlocked lane's leftovers: drop
                if fab is not None:
                    fab.in_flight -= 1
                fn(*args)
                fired += 1
        return fired

    def _next_event_cycle(self) -> Optional[int]:
        cheap = self._cycle_heap
        active = self.lane_active
        while cheap:
            when = cheap[0]
            bucket = self._buckets.get(when)
            if bucket is not None and any(active[e[0]] for e in bucket):
                return when
            # bucket only holds dead lanes' leftovers: discard it
            heapq.heappop(cheap)
            self._buckets.pop(when, None)
        return None

    # ------------------------------------------------------------------
    # Completion handlers (run in event context)
    # ------------------------------------------------------------------
    def _on_store_done(self, ctx: int, m: int, start: int,
                       _req, value) -> None:
        bit = 1 << m
        if not (int(self.sbissued[ctx]) >> m) & 1:
            return  # stale (cannot happen inside the envelope; guard anyway)
        inv = np.uint64(bit ^ _M64)
        self.perf[ctx] |= np.uint64(bit)
        self.sb[ctx] &= inv
        self.sbissued[ctx] &= inv
        self.store_lat[ctx].append(self.cycle - start)
        if self._any_arch:
            lane, cpu = divmod(ctx, self.ncpu)
            arch = self.arch[lane]
            if arch is not None:
                arch.record(self.cycle, f"cpu{cpu}/lsu", "store_complete",
                            seq=int(self.MPC[ctx, m]),
                            addr=int(self.MADDR[ctx, m]),
                            value=int(value),
                            rmw=bool(self.MISR[ctx, m]))
        if self.MISR[ctx, m]:
            pc = self.MPC[ctx, m]
            self.done[ctx, pc] = True
            self.value[ctx, pc] = value
        # a store leaving the SB (or an RMW binding its value) can
        # unblock a forward-pending ready load
        self.scan_load[ctx] = True

    def _on_load_cb(self, ctx: int, m: int, start: int, _req, value) -> None:
        self._load_done(ctx, m, value, start)

    def _load_done(self, ctx: int, m: int, value: int, start: int) -> None:
        bit = 1 << m
        d = int(self.disp[ctx])
        p = int(self.perf[ctx])
        if not ((d >> m) & 1) or ((p >> m) & 1):
            return  # stale
        self.perf[ctx] |= np.uint64(bit)
        pc = self.MPC[ctx, m]
        self.done[ctx, pc] = True
        self.value[ctx, pc] = value
        self.load_lat[ctx].append(self.cycle - start)
        if self._any_arch:
            lane, cpu = divmod(ctx, self.ncpu)
            arch = self.arch[lane]
            if arch is not None:
                arch.record(self.cycle, f"cpu{cpu}/lsu", "load_complete",
                            seq=int(pc), addr=int(self.MADDR[ctx, m]),
                            value=int(value))
        # the bound value may be a later store's data operand
        self.scan_load[ctx] = True

    def _arch_retire(self, ri: np.ndarray, rpcs: np.ndarray,
                     kinds: np.ndarray) -> None:
        """Archtrace retire events mirroring ``Processor._retire``.

        Inside the batch envelope decode order is program order, so the
        scalar sequence number equals the flat pc.  ``bound`` mirrors
        the scalar ``head.value is not None``: ALU/Load/RMW heads bind
        a value, Store/Nop/Halt heads do not.
        """
        for ctx, pc, k in zip(ri.tolist(), rpcs.tolist(), kinds.tolist()):
            lane, cpu = divmod(ctx, self.ncpu)
            arch = self.arch[lane]
            if arch is None:
                continue
            extra = {}
            code = int(self.SYNC[ctx, pc])
            if code:
                extra["sync"] = _SYNC_NAMES[code]
            arch.record(self.cycle, f"cpu{cpu}", "retire",
                        seq=pc, pc=pc, op=_K_OPNAME[k],
                        bound=k in (K_ALU, K_LOAD, K_RMW), **extra)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _phase_retire(self, finished_pre: np.ndarray) -> Tuple[np.ndarray, int]:
        rc = np.zeros(self.C, dtype=np.int32)
        halted_now = np.zeros(self.C, dtype=bool)
        m = self.act & ~finished_pre
        for it in range(WIDTH):
            m = m & (self.retired < self.nseq)
            idx = np.nonzero(m)[0]
            if idx.size == 0:
                break
            rpc = self.retired[idx]
            k = self.KIND[idx, rpc]
            mi = self.MIDX[idx, rpc]
            mi_safe = np.where(mi >= 0, mi, 0)
            mbit = _bits(mi_safe)
            # signal store/RMW heads (idempotent; happens even when
            # retirement then fails — mirrors Processor._retire)
            sig_sel = (k == K_STORE) | (k == K_RMW)
            if sig_sel.any():
                si = idx[sig_sel]
                self.sig[si] |= mbit[sig_sel]
            perf_bit = (self.perf[idx] & mbit) != 0
            sb_bit = (self.sb[idx] & mbit) != 0
            done_h = self.done[idx, rpc]
            may = np.where(
                k == K_LOAD, done_h,
                np.where(k == K_RMW, perf_bit,
                         np.where(k == K_STORE,
                                  perf_bit | (sb_bit & ~self.IS_SC[idx]),
                                  done_h)))
            ri = idx[may]
            if ri.size:
                if self._any_arch:
                    self._arch_retire(ri, rpc[may], k[may])
                self.retired[ri] += 1
                self.retired_acc[ri] += 1
                rc[ri] += 1
                halt = ri[k[may] == K_HALT]
                if halt.size:
                    self.finished[halt] = True
                    halted_now[halt] = True
            # scalar _retire returns on the first failed retirement and
            # after a Halt: iteration 2 only for clean retirers
            nxt = np.zeros(self.C, dtype=bool)
            nxt[ri] = True
            m = nxt & ~halted_now
        return rc, int(rc.sum())

    def _phase_drain_addr(self) -> int:
        if not self.addr_occ.any():
            return 0
        d = self.act & self.addr_occ & (self.cycle >= self.addr_ready)
        idx = np.nonzero(d)[0]
        if idx.size == 0:
            return 0
        mi = self.addr_m[idx].astype(np.int64)
        isload = self.MISL[idx, mi]
        drained = 0
        li = idx[isload]
        if li.size:
            lm = mi[isload]
            self.ready[li] |= _bits(lm)
            self.addr_occ[li] = False
            self.scan_load[li] = True
            drained += li.size
        si = idx[~isload]
        if si.size:
            sm = mi[~isload]
            room = np.bitwise_count(self.sb[si]) < STORE_BUFFER_SIZE
            s_ok = si[room]
            if s_ok.size:
                sm_ok = sm[room]
                self.sb[s_ok] |= _bits(sm_ok)
                self.addr_occ[s_ok] = False
                # a pure store "completes" for ROB purposes at translation
                pure = self.MISS[s_ok, sm_ok]
                ps = s_ok[pure]
                if ps.size:
                    self.done[ps, self.MPC[ps, sm_ok[pure]]] = True
                drained += s_ok.size
            # SB full: silent stall, the address unit stays occupied
        return drained

    def _phase_advance_rs(self, rs_stall_now: np.ndarray) -> int:
        a = self.act & ~self.addr_occ & (self.rs_next < self.n_mem_disp)
        idx = np.nonzero(a)[0]
        if idx.size == 0:
            return 0
        mi = self.rs_next[idx].astype(np.int64)
        bdep = self.MBDEP[idx, mi]
        base_ok = (bdep < 0) | self.done[idx, np.where(bdep >= 0, bdep, 0)]
        idx = idx[base_ok]
        if idx.size == 0:
            return 0  # effective address not computable yet: silent stall
        mi = mi[base_ok]
        pending = self.disp[idx] & ~self.perf[idx]
        stalled = self.MISL[idx, mi] & ((self.BLOCK[idx, mi] & pending) != 0)
        st = idx[stalled]
        if st.size:
            self.rs_stalls_acc[st] += 1
            rs_stall_now[st] = True
        adv = idx[~stalled]
        if adv.size:
            self.rs_next[adv] += 1
            self.addr_occ[adv] = True
            self.addr_m[adv] = mi[~stalled].astype(np.int16)
            self.addr_ready[adv] = self.cycle + 1
        return int(adv.size)

    def _phase_issue_stores(self, sb_stall_now: np.ndarray) -> int:
        if not self.sb.any():
            return 0
        cand = self.sb & ~self.sbissued
        has = self.act & (cand != 0)
        idx = np.nonzero(has)[0]
        if idx.size == 0:
            return 0
        c = cand[idx]
        lsb = c & (_ZERO - c)
        m0 = np.bitwise_count(lsb - _ONE).astype(np.int64)
        sig_ok = (self.sig[idx] & lsb) != 0
        dep = self.MDDEP[idx, m0]
        data_ok = (dep < 0) | self.done[idx, np.where(dep >= 0, dep, 0)]
        blocked = (self.SBBLOCK[idx, m0] & self.sb[idx]) != 0
        # scalar gate order: signalled (silent) -> data (silent) ->
        # earlier-SB consistency block (counted) -> port/cache attempt
        stall = sig_ok & data_ok & blocked
        st = idx[stall]
        if st.size:
            self.sb_stalls_acc[st] += 1
            sb_stall_now[st] = True
        attempt = np.nonzero(sig_ok & data_ok & ~blocked)[0]
        issued = 0
        if attempt.size == 0:
            return 0
        ncpu = self.ncpu
        for ctx, m, d in zip(idx[attempt].tolist(), m0[attempt].tolist(),
                             dep[attempt].tolist()):
            cache = self.caches[ctx]
            if not cache.can_accept():
                continue
            value = int(self.MDVAL[ctx, m]) if d < 0 else int(self.value[ctx, d])
            is_rmw = bool(self.MISR[ctx, m])
            lane, cpu = divmod(ctx, ncpu)
            self._stage_key = (lane, cpu, 0)
            try:
                req = AccessRequest(
                    req_id=next(self.req_ids[ctx]),
                    kind=AccessKind.RMW if is_rmw else AccessKind.STORE,
                    addr=int(self.MADDR[ctx, m]),
                    value=value,
                    rmw_op=(RMW_OPS_BY_CODE[self.MRMW[ctx, m]]
                            if is_rmw else None),
                    generation=1,
                    tag=self.MTAG[ctx][m],
                    callback=partial(self._on_store_done, ctx, m, self.cycle),
                )
                accepted = cache.access(req)
            finally:
                self._stage_key = None
            if accepted:
                self.sbissued[ctx] |= np.uint64(1 << m)
                if is_rmw:
                    self.rmws_acc[ctx] += 1
                else:
                    self.stores_acc[ctx] += 1
                issued += 1
            # rejected: scalar reverts to IN_SB and retries next tick
        return issued

    def _phase_issue_loads(self) -> int:
        if not self.scan_load.any():
            return 0
        sel = self.act & self.scan_load & (self.ready != 0)
        idx = np.nonzero(sel)[0]
        acted = 0
        ncpu = self.ncpu
        for ctx in idx.tolist():
            r = int(self.ready[ctx])
            sbits = int(self.sb[ctx])
            issued_one = False
            rescan = False
            lane, cpu = divmod(ctx, ncpu)
            while r:
                m = (r & -r).bit_length() - 1
                r &= r - 1
                if issued_one:
                    rescan = True
                    break
                fwd = int(self.FWD[ctx, m]) & sbits
                if fwd:
                    match = fwd.bit_length() - 1  # youngest earlier store
                    if self.MISR[ctx, match]:
                        continue  # RMWs do not forward; wait for result
                    d = int(self.MDDEP[ctx, match])
                    if d >= 0 and not self.done[ctx, d]:
                        continue  # store value unknown yet; retry
                    value = (int(self.MDVAL[ctx, match]) if d < 0
                             else int(self.value[ctx, d]))
                    self.ready[ctx] &= np.uint64((1 << m) ^ _M64)
                    self.forwards_acc[ctx] += 1
                    self._stage_key = (lane, cpu, 1)
                    try:
                        self.post(lane, self.cycle + self.HIT_LAT[ctx], None,
                                  self._load_done, (ctx, m, value, self.cycle))
                    finally:
                        self._stage_key = None
                    issued_one = True
                    acted += 1
                    continue
                cache = self.caches[ctx]
                if not cache.can_accept():
                    rescan = True
                    break
                self._stage_key = (lane, cpu, 1)
                try:
                    req = AccessRequest(
                        req_id=next(self.req_ids[ctx]),
                        kind=AccessKind.LOAD,
                        addr=int(self.MADDR[ctx, m]),
                        generation=1,
                        tag=self.MTAG[ctx][m],
                        callback=partial(self._on_load_cb, ctx, m, self.cycle),
                    )
                    accepted = cache.access(req)
                finally:
                    self._stage_key = None
                # scalar removes the op from ready_loads and sets
                # issued_one even when the cache rejects the access (the
                # op is then lost — reproduced deliberately; such lanes
                # deadlock at max_cycles exactly like the scalar kernel)
                self.ready[ctx] &= np.uint64((1 << m) ^ _M64)
                issued_one = True
                acted += 1
                if accepted:
                    self.loads_acc[ctx] += 1
            self.scan_load[ctx] = rescan
        return acted

    def _phase_alu(self) -> int:
        if not self.alu_inrs.any() and not (self.exec_aidx >= 0).any():
            return 0
        acted = 0
        completed = np.zeros(self.C, dtype=bool)
        for slot in range(ALU_COUNT):
            col = self.exec_aidx[:, slot]
            has = self.act & (col >= 0)
            idx = np.nonzero(has)[0]
            if idx.size == 0:
                continue
            ai = col[idx].astype(np.int64)
            self.done[idx, self.APC[idx, ai]] = True
            self.alu_ready[idx] |= self.ADEP[idx, ai]
            col[idx] = -1
            completed[idx] = True
            acted += idx.size
        # an ALU result may be a store's data operand a pending forward waits on
        self.scan_load |= completed & (self.ready != 0)
        avail = self.alu_inrs & self.alu_ready
        for slot in range(ALU_COUNT):
            has = self.act & (avail != 0)
            idx = np.nonzero(has)[0]
            if idx.size == 0:
                break
            a = avail[idx]
            lsb = a & (_ZERO - a)
            ai = np.bitwise_count(lsb - _ONE).astype(np.int16)
            self.exec_aidx[idx, slot] = ai
            self.alu_inrs[idx] &= ~lsb
            avail[idx] &= ~lsb
            acted += idx.size
        return acted

    def _phase_decode(self, finished_pre: np.ndarray) -> int:
        can = self.act & ~finished_pre & ~self.fetch_halted
        advanced = 0
        for it in range(WIDTH):
            can = can & ((self.nseq - self.retired) < ROB_SIZE)
            idx = np.nonzero(can)[0]
            if idx.size == 0:
                break
            pc = self.nseq[idx]
            k = self.KIND[idx, pc]

            pad = idx[k == K_PAD]  # ran off the end (no trailing Halt)
            if pad.size:
                self.fetch_halted[pad] = True
                can[pad] = False

            halt = idx[k == K_HALT]
            if halt.size:
                self.done[halt, self.nseq[halt]] = True
                self.fetch_halted[halt] = True
                self._advance(halt)
                advanced += halt.size
                can[halt] = False

            nop = idx[k == K_NOP]
            if nop.size:
                self.done[nop, self.nseq[nop]] = True
                self._advance(nop)
                advanced += nop.size

            alu = idx[k == K_ALU]
            if alu.size:
                full = np.bitwise_count(self.alu_inrs[alu]) >= ALU_RS_SIZE
                stall = alu[full]
                can[stall] = False
                go = alu[~full]
                if go.size:
                    ai = self.AIDX[go, self.nseq[go]]
                    self.alu_inrs[go] |= _bits(ai)
                    self._advance(go)
                    advanced += go.size

            mem = idx[(k == K_LOAD) | (k == K_STORE) | (k == K_RMW)]
            if mem.size:
                full = (self.n_mem_disp[mem] - self.rs_next[mem]) >= LS_RS_SIZE
                stall = mem[full]
                can[stall] = False
                go = mem[~full]
                if go.size:
                    mi = self.MIDX[go, self.nseq[go]]
                    self.disp[go] |= _bits(mi)
                    self.n_mem_disp[go] += 1
                    self._advance(go)
                    advanced += go.size
        return advanced

    def _advance(self, idx: np.ndarray) -> None:
        self.nseq[idx] += 1
        self.decoded_acc[idx] += 1

    def _lsu_empty(self) -> np.ndarray:
        return ((self.rs_next == self.n_mem_disp)
                & ~self.addr_occ
                & (self.ready == 0)
                & (self.sb == 0)
                & ((self.disp & ~self.perf) == 0))

    def _phase_account(self, finished_pre: np.ndarray, rc: np.ndarray,
                       lsu_empty: np.ndarray) -> np.ndarray:
        cidx = np.full(self.C, -1, dtype=np.int8)
        drained = self.act & finished_pre
        if drained.any():
            cidx[drained] = np.where(lsu_empty[drained], C_IDLE, C_WRITE)
        live = self.act & ~finished_pre
        idx = np.nonzero(live)[0]
        if idx.size:
            rpc = self.retired[idx]
            head_exists = self.nseq[idx] > rpc
            hc = np.where(head_exists, self.HEADC[idx, rpc], -1)
            rob_full = (self.nseq[idx] - rpc) >= ROB_SIZE
            cause = np.where(
                rc[idx] > 0, C_BUSY,
                np.where(hc >= 0, hc,
                         np.where(rob_full, C_ROB_FULL, C_BUSY)))
            cidx[idx] = cause.astype(np.int8)
            self.cause_acc[idx, cause] += 1
        d_idx = np.nonzero(drained)[0]
        if d_idx.size:
            self.cause_acc[d_idx, cidx[d_idx]] += 1
        return cidx

    # ------------------------------------------------------------------
    # Lane lifecycle
    # ------------------------------------------------------------------
    def _deactivate(self, lanes: np.ndarray) -> None:
        for lane in lanes:
            self.lane_active[lane] = False
            lo = lane * self.ncpu
            self.act[lo:lo + self.ncpu] = False
            self._n_active -= 1

    def _check_completion(self, lsu_empty: np.ndarray) -> None:
        ok = self.finished & lsu_empty
        lane_ok = ok.reshape(self.L, self.ncpu).all(axis=1) & self.lane_active
        if not lane_ok.any():
            return
        finished_lanes = []
        for lane in np.nonzero(lane_ok)[0]:
            if self.fabrics[lane].is_quiescent():
                self.lane_cycles[lane] = self.cycle
                finished_lanes.append(lane)
        if finished_lanes:
            self._deactivate(np.array(finished_lanes))

    def _check_deadlock(self) -> None:
        dead = self.lane_active & (self.cycle >= self.lane_max)
        if dead.any():
            lanes = np.nonzero(dead)[0]
            self.lane_deadlocked[lanes] = True
            self._deactivate(lanes)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        while self._n_active:
            self._step()
        # stats stay in the vector accumulators until a caller asks —
        # see materialize_stats()

    def _step(self) -> None:
        self.cycle += 1
        fired = self._drain_events()
        finished_pre = self.finished.copy()
        rs_stall_now = np.zeros(self.C, dtype=bool)
        sb_stall_now = np.zeros(self.C, dtype=bool)

        rc, n_ret = self._phase_retire(finished_pre)
        n_drain = self._phase_drain_addr()
        n_adv = self._phase_advance_rs(rs_stall_now)
        n_store = self._phase_issue_stores(sb_stall_now)
        n_load = self._phase_issue_loads()
        n_alu = self._phase_alu()
        n_dec = self._phase_decode(finished_pre)

        lsu_empty = self._lsu_empty()
        cause_idx = self._phase_account(finished_pre, rc, lsu_empty)
        self._flush_staged()
        self._check_completion(lsu_empty)
        self._check_deadlock()
        if not self._n_active:
            return

        acted = (fired or n_ret or n_drain or n_adv or n_store or n_load
                 or n_alu or n_dec)
        if acted:
            return
        # quiet cycle: every gate is provably cycle-invariant until the
        # next event, unless an ALU is mid-flight or a load scan is armed
        if (self.act & (self.exec_aidx >= 0).any(axis=1)).any():
            return
        if (self.act & self.scan_load & (self.ready != 0)).any():
            return
        nxt = self._next_event_cycle()
        horizon = int(self.lane_max[self.lane_active].min())
        target = horizon if nxt is None else min(nxt, horizon)
        skipped = target - 1 - self.cycle
        if skipped <= 0:
            return
        # bulk-replay the skipped cycles' deterministic accounting
        live = np.nonzero(self.act & (cause_idx >= 0))[0]
        self.cause_acc[live, cause_idx[live]] += skipped
        self.rs_stalls_acc[rs_stall_now & self.act] += skipped
        self.sb_stalls_acc[sb_stall_now & self.act] += skipped
        self.cycle = target - 1

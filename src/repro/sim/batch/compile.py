"""Static compilation of a program onto the lockstep engine's tables.

The batched engine only admits programs whose *dataflow* is statically
resolvable: straight-line code (the litmus/fuzz universe) where every
register value except load/RMW results is a compile-time constant.
For such programs the out-of-order core's rename/forwarding machinery
collapses to two facts per operand —

* its eventual **value** (precomputed here, or read at runtime from the
  producing load/RMW's slot), and
* its **readiness**, which is exactly "the producing instruction has
  completed" (``done[producer_pc]``), because completion is sticky and
  the scalar ROB resolves an operand the moment its producer's result
  is broadcast.

Programs outside the envelope (branches, ALU inputs fed by loads,
multi-producer ALU operands, >64 memory ops, ...) report an
``unsupported_reason`` and fall back to the scalar kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...consistency.access_class import classify
from ...consistency.models import ConsistencyModel
from ...isa.instructions import Alu, Halt, Instruction, Load, Nop, Rmw, Store
from ...isa.program import Program
from ...obs.accounting import CAUSES, StallCause

# Instruction kinds (the engine's per-pc dispatch table).
K_ALU = 0
K_LOAD = 1
K_STORE = 2
K_RMW = 3
K_NOP = 4
K_HALT = 5
K_PAD = 6

#: index of each stall cause in the engine's accumulator columns
CAUSE_INDEX = {cause: i for i, cause in enumerate(CAUSES)}
C_BUSY = CAUSE_INDEX[StallCause.BUSY]
C_READ = CAUSE_INDEX[StallCause.READ]
C_WRITE = CAUSE_INDEX[StallCause.WRITE]
C_ACQUIRE = CAUSE_INDEX[StallCause.ACQUIRE]
C_ROB_FULL = CAUSE_INDEX[StallCause.ROB_FULL]
C_IDLE = CAUSE_INDEX[StallCause.IDLE]

#: hard caps from the uint64 bitmask representation
MAX_MEMOPS = 64
MAX_ALUS = 64

_RMW_CODE = {"ts": 0, "swap": 1, "add": 2}
RMW_OPS_BY_CODE = ("ts", "swap", "add")


@dataclass
class CompiledProgram:
    """Per-context SoA tables for one (program, model) pair."""

    nseq_len: int                 # instruction count (including Halt)
    n_mem: int
    n_alu: int
    # per-pc tables, length nseq_len
    kind: np.ndarray              # int8
    midx: np.ndarray              # int16, memop index or -1
    aidx: np.ndarray              # int16, alu index or -1
    headcause: np.ndarray         # int8, accountant cause for a memory head, -1 otherwise
    value: np.ndarray             # int64, static results (ALU), 0 elsewhere
    # per-memop tables, length n_mem
    m_pc: np.ndarray              # int16
    m_addr: np.ndarray            # int64
    m_isload: np.ndarray          # bool (pure load)
    m_isstore: np.ndarray         # bool (pure store)
    m_isrmw: np.ndarray           # bool
    m_base_dep: np.ndarray        # int16 producer pc of the base value, -1
    m_data_dep: np.ndarray        # int16 producer pc of the store/rmw operand, -1
    m_data_val: np.ndarray        # int64 static operand when m_data_dep < 0
    m_rmw_code: np.ndarray        # int8 (ts/swap/add), -1 for non-RMW
    block: np.ndarray             # uint64: earlier memops with delay_arc(e, m)
    sbblock: np.ndarray           # uint64: block restricted to store/rmw sources
    fwd: np.ndarray               # uint64: earlier store/rmw memops at the same address
    m_tag: Tuple[str, ...]        # instruction tags, for AccessRequest fidelity
    # per-alu tables, length n_alu
    a_pc: np.ndarray              # int16
    a_ready0: bool                # unused placeholder (kept for clarity)
    a_init_ready: np.ndarray      # uint64 scalar mask: alus ready at reset
    a_depmask: np.ndarray         # uint64: dependent alus woken by this alu's completion
    #: access classes per memop — kept on the model-independent core so
    #: specialize_model can rebuild block/sbblock for another model
    m_klass: Tuple = ()
    #: per-pc archtrace sync annotation: 0 none, 1 acquire, 2 release,
    #: 3 full (indexes :data:`repro.obs.archtrace.SYNC_NAMES`)
    sync: Optional[np.ndarray] = None


def unsupported_reason(instr_lists, model: ConsistencyModel) -> Optional[str]:
    """Why these programs cannot run batched, or ``None`` if they can."""
    for tid, program in enumerate(instr_lists):
        reason = _program_reason(program)
        if reason is not None:
            return f"T{tid}: {reason}"
    return None


def _program_reason(program: Program) -> Optional[str]:
    # static register walk mirroring compile_program, checks only
    regs: Dict[str, Tuple[Optional[int], Optional[int], str]] = {}
    n_mem = n_alu = 0
    for pc, instr in enumerate(program):
        if isinstance(instr, (Nop, Halt)):
            continue
        if isinstance(instr, Alu):
            if instr.latency != 1:
                return f"ALU latency {instr.latency} at pc {pc}"
            n_alu += 1
            if n_alu > MAX_ALUS:
                return f"more than {MAX_ALUS} ALU ops"
            producers = set()
            srcs = [instr.src1] + ([instr.src2] if instr.src2 is not None else [])
            for reg in srcs:
                val, prod, kind = _read(regs, reg)
                if kind in ("load", "rmw"):
                    return f"ALU source fed by a {kind} at pc {pc}"
                if prod is not None:
                    producers.add(prod)
            if len(producers) > 1:
                return f"ALU with multiple operand producers at pc {pc}"
            _write(regs, instr.dst, 0, pc, "alu")
            continue
        if isinstance(instr, (Load, Store, Rmw)):
            n_mem += 1
            if n_mem > MAX_MEMOPS:
                return f"more than {MAX_MEMOPS} memory ops"
            _, prod, kind = _read(regs, instr.base)
            if kind in ("load", "rmw"):
                return f"memory base fed by a {kind} at pc {pc}"
            if isinstance(instr, (Load, Rmw)):
                _write(regs, instr.dst, None, pc, "load" if isinstance(instr, Load) else "rmw")
            continue
        return f"unsupported instruction {type(instr).__name__} at pc {pc}"
    return None


def _read(regs, reg):
    """(static value or None, producer pc or None, producer kind)."""
    if reg == "r0":
        return 0, None, "init"
    return regs.get(reg, (0, None, "init"))


def _write(regs, reg, value, pc, kind):
    if reg != "r0":
        regs[reg] = (value, pc, kind)


def compile_program(program: Program, model: ConsistencyModel) -> CompiledProgram:
    """Build the SoA tables (caller must have checked supportability)."""
    return specialize_model(compile_core(program), model)


def compile_core(program: Program) -> CompiledProgram:
    """The model-independent compilation: everything except the
    ``block``/``sbblock`` consistency masks (zeroed here).

    A fuzz sweep runs each program under every model; splitting the
    compile lets the per-program instruction walk happen once, with
    :func:`specialize_model` adding the (cheap) model-dependent masks
    per (program, model) pair.
    """
    n = len(program)
    kind = np.full(n, K_PAD, dtype=np.int8)
    midx = np.full(n, -1, dtype=np.int16)
    aidx = np.full(n, -1, dtype=np.int16)
    headcause = np.full(n, -1, dtype=np.int8)
    value = np.zeros(n, dtype=np.int64)
    sync = np.zeros(n, dtype=np.int8)

    regs: Dict[str, Tuple[Optional[int], Optional[int], str]] = {}
    mem: List[dict] = []
    alus: List[dict] = []

    for pc, instr in enumerate(program):
        if isinstance(instr, Halt):
            kind[pc] = K_HALT
            continue
        if isinstance(instr, Nop):
            kind[pc] = K_NOP
            continue
        if isinstance(instr, Alu):
            kind[pc] = K_ALU
            aidx[pc] = len(alus)
            producers = set()
            vals = []
            srcs = [instr.src1] + ([instr.src2] if instr.src2 is not None else [])
            for reg in srcs:
                val, prod, _pkind = _read(regs, reg)
                vals.append(val)
                if prod is not None:
                    producers.add(prod)
            a = vals[0]
            b = vals[1] if len(vals) > 1 else (instr.imm or 0)
            result = instr.compute(a, b)
            value[pc] = result
            alus.append({"pc": pc, "dep": producers.pop() if producers else -1})
            _write(regs, instr.dst, result, pc, "alu")
            continue
        # memory
        sync[pc] = ((1 if instr.is_acquire else 0)
                    | (2 if instr.is_release else 0))
        klass = classify(instr)
        base_val, base_prod, _bk = _read(regs, instr.base)
        m = {
            "pc": pc,
            "addr": base_val + instr.offset,
            "klass": klass,
            "isload": klass.is_load and not klass.is_store,
            "isstore": klass.is_store and not klass.is_load,
            "isrmw": klass.is_load and klass.is_store,
            "base_dep": base_prod if base_prod is not None else -1,
            "data_dep": -1,
            "data_val": 0,
            "rmw_code": -1,
            "tag": instr.describe(),
        }
        if isinstance(instr, (Store, Rmw)):
            dval, dprod, _dk = _read(regs, instr.src)
            if dprod is not None:
                m["data_dep"] = dprod
            else:
                m["data_val"] = dval or 0
            if isinstance(instr, Rmw):
                m["rmw_code"] = _RMW_CODE[instr.op]
        if isinstance(instr, Load):
            kind[pc] = K_LOAD
            headcause[pc] = C_ACQUIRE if instr.is_acquire else C_READ
            _write(regs, instr.dst, None, pc, "load")
        elif isinstance(instr, Store):
            kind[pc] = K_STORE
            headcause[pc] = C_WRITE
        else:
            kind[pc] = K_RMW
            headcause[pc] = C_ACQUIRE if instr.is_acquire else C_WRITE
            _write(regs, instr.dst, None, pc, "rmw")
        midx[pc] = len(mem)
        mem.append(m)

    n_mem, n_alu = len(mem), len(alus)
    m_pc = np.array([m["pc"] for m in mem] or [], dtype=np.int16)
    m_addr = np.array([m["addr"] for m in mem] or [], dtype=np.int64)
    m_isload = np.array([m["isload"] for m in mem] or [], dtype=bool)
    m_isstore = np.array([m["isstore"] for m in mem] or [], dtype=bool)
    m_isrmw = np.array([m["isrmw"] for m in mem] or [], dtype=bool)
    m_base_dep = np.array([m["base_dep"] for m in mem] or [], dtype=np.int16)
    m_data_dep = np.array([m["data_dep"] for m in mem] or [], dtype=np.int16)
    m_data_val = np.array([m["data_val"] for m in mem] or [], dtype=np.int64)
    m_rmw_code = np.array([m["rmw_code"] for m in mem] or [], dtype=np.int8)

    fwd_bits = [0] * n_mem
    for j, m in enumerate(mem):
        for e in range(j):
            if mem[e]["klass"].is_store and mem[e]["addr"] == m["addr"]:
                fwd_bits[j] |= 1 << e
    fwd = np.array(fwd_bits or [], dtype=np.uint64)

    a_pc = np.array([a["pc"] for a in alus] or [], dtype=np.int16)
    a_depmask = np.zeros(n_alu, dtype=np.uint64)
    init_ready = np.uint64(0)
    pc_to_aidx = {int(a["pc"]): i for i, a in enumerate(alus)}
    for i, a in enumerate(alus):
        if a["dep"] < 0:
            init_ready |= np.uint64(1) << np.uint64(i)
        else:
            a_depmask[pc_to_aidx[a["dep"]]] |= np.uint64(1) << np.uint64(i)

    zeros = np.zeros(n_mem, dtype=np.uint64)
    return CompiledProgram(
        nseq_len=n, n_mem=n_mem, n_alu=n_alu,
        kind=kind, midx=midx, aidx=aidx, headcause=headcause, value=value,
        m_pc=m_pc, m_addr=m_addr, m_isload=m_isload, m_isstore=m_isstore,
        m_isrmw=m_isrmw, m_base_dep=m_base_dep, m_data_dep=m_data_dep,
        m_data_val=m_data_val, m_rmw_code=m_rmw_code,
        block=zeros, sbblock=zeros.copy(), fwd=fwd,
        m_tag=tuple(m["tag"] for m in mem),
        a_pc=a_pc, a_ready0=False, a_init_ready=init_ready, a_depmask=a_depmask,
        m_klass=tuple(m["klass"] for m in mem),
        sync=sync,
    )


def specialize_model(core: CompiledProgram, model: ConsistencyModel,
                     arc_cache: Optional[dict] = None,
                     mask_cache: Optional[dict] = None) -> CompiledProgram:
    """Fill the model-dependent ``block``/``sbblock`` masks onto a core.

    All model-independent tables are shared with the core (the engine
    only reads them).  ``arc_cache`` optionally memoizes ``delay_arc``
    per (earlier-class, later-class) pair across calls for one model —
    the fuzz universe only has a handful of distinct access classes.
    ``mask_cache`` memoizes the finished mask arrays per access-class
    *sequence*: the masks depend only on ``m_klass`` (never on
    addresses), and a fuzz sweep's thousands of programs collapse onto
    a few hundred distinct class sequences.  Cached arrays are shared
    read-only, matching how the engine consumes them.
    """
    n_mem = core.n_mem
    klasses = core.m_klass
    if mask_cache is not None:
        cached = mask_cache.get(klasses)
        if cached is not None:
            return _with_masks(core, cached[0], cached[1])
    arc = model.delay_arc
    block_bits = [0] * n_mem
    sb_bits = [0] * n_mem
    for j in range(n_mem):
        kj = klasses[j]
        bj = sj = 0
        for e in range(j):
            ke = klasses[e]
            if arc_cache is not None:
                pair = (ke, kj)
                delayed = arc_cache.get(pair)
                if delayed is None:
                    delayed = arc_cache[pair] = arc(ke, kj)
            else:
                delayed = arc(ke, kj)
            if delayed:
                bit = 1 << e
                bj |= bit
                if ke.is_store:
                    sj |= bit
        block_bits[j] = bj
        sb_bits[j] = sj
    block = np.array(block_bits or [], dtype=np.uint64)
    sbblock = np.array(sb_bits or [], dtype=np.uint64)
    if mask_cache is not None:
        mask_cache[klasses] = (block, sbblock)
    return _with_masks(core, block, sbblock)


def _with_masks(core: CompiledProgram, block: np.ndarray,
                sbblock: np.ndarray) -> CompiledProgram:
    """Shallow-copy ``core`` with new masks.

    Equivalent to ``dataclasses.replace(core, block=..., sbblock=...)``
    but without the per-call field introspection — this runs once per
    (program, model) pair on the fuzz hot path.
    """
    cp = CompiledProgram.__new__(CompiledProgram)
    cp.__dict__.update(core.__dict__)
    cp.block = block
    cp.sbblock = sbblock
    return cp


def job_unsupported_reason(job, _memo: Optional[dict] = None) -> Optional[str]:
    """Full-job supportability: techniques, cache config, programs.

    The engine assumes the default :class:`ProcessorConfig` geometry
    (width 2, ROB 32, RS 16/16, store buffer 16, 2 ALUs) — exactly what
    ``run_workload`` uses when no explicit processor config is passed.

    ``_memo`` optionally caches the per-program static walk by program
    identity (the caller must keep the programs alive, as the
    :class:`~repro.sim.batch.runner.BatchRunner` does for one ``run``).
    """
    from ...consistency.models import get_model

    if job.prefetch:
        return "hardware prefetching enabled"
    if job.speculation:
        return "speculative loads enabled"
    cache = job.cache_config()
    if cache.protocol != "invalidate":
        return f"cache protocol {cache.protocol!r}"
    if getattr(cache, "uncached_ranges", ()):
        return "uncached address ranges configured"
    try:
        get_model(job.model_name)
    except KeyError as exc:
        return str(exc)
    for tid, program in enumerate(job.programs):
        if _memo is not None:
            key = id(program)
            if key in _memo:
                reason = _memo[key]
            else:
                reason = _memo[key] = _program_reason(program)
        else:
            reason = _program_reason(program)
        if reason is not None:
            return f"T{tid}: {reason}"
    return None

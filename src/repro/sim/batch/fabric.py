"""Per-lane memory fabric, driven through a simulator shim.

The batched engine vectorizes the *CPU* side only.  Coherence — caches,
directory, interconnect — is the real :class:`repro.system.fabric.MemoryFabric`,
one instance per lane, so its behaviour is scalar-identical by
construction rather than by transliteration.  The fabric only ever uses
four things from the simulator it is handed (``cycle``, ``stats``,
``schedule``, ``schedule_at``), which :class:`LaneShim` provides on top
of the engine's shared clock and a per-lane event namespace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...memory.types import LatencyConfig
from ...sim.stats import StatsRegistry
from ...sim.trace import NullTraceRecorder
from ...system.fabric import MemoryFabric

if TYPE_CHECKING:  # pragma: no cover
    from .engine import BatchEngine
    from .jobs import BatchJob


class LaneShim:
    """The slice of the :class:`~repro.sim.kernel.Simulator` interface
    the memory fabric consumes, bound to one lane of the engine.

    Events scheduled through the shim land in the engine's shared heap
    keyed ``(when, lane, seq)`` with a per-lane monotone sequence
    number, reproducing the scalar event queue's scheduling-order tie
    break lane-locally.  During the engine's tick phases, schedules are
    *staged* and flushed in scalar component order afterwards (see
    :meth:`BatchEngine._flush_staged`); during event drain they are
    pushed directly, which matches the scalar ``run_due`` executing
    same-cycle chained events within the same drain.
    """

    __slots__ = ("engine", "lane", "stats")

    def __init__(self, engine: "BatchEngine", lane: int) -> None:
        self.engine = engine
        self.lane = lane
        self.stats = StatsRegistry()

    @property
    def cycle(self) -> int:
        return self.engine.cycle

    def schedule(self, delay: int, callback, label: str = ""):
        self.engine.lane_schedule(self.lane, self.engine.cycle + delay, callback)
        return None

    def schedule_at(self, cycle: int, callback, label: str = ""):
        if cycle < self.engine.cycle:
            raise ValueError(
                f"cannot schedule in the past ({cycle} < {self.engine.cycle})")
        self.engine.lane_schedule(self.lane, cycle, callback)
        return None


def build_lane_fabric(engine: "BatchEngine", lane: int, job: "BatchJob"):
    """Real fabric for one lane, warmed exactly like ``run_workload``.

    Returns ``(shim, fabric)`` — the shim owns the lane's stats registry.
    """
    shim = LaneShim(engine, lane)
    fabric = MemoryFabric(
        shim,
        num_cpus=job.ncpu,
        cache_config=job.cache_config(),
        latencies=LatencyConfig.from_miss_latency(job.miss_latency),
        trace=NullTraceRecorder(),
    )
    if job.initial_memory:
        fabric.init_memory(job.initial_memory)
    for cpu, addr, exclusive in job.warm_lines:
        fabric.warm(cpu, addr, exclusive=exclusive)
    return shim, fabric

"""Packed per-lane coherence fast path (the batch envelope's fabric).

:class:`FastFabric` is a specialized transliteration of the scalar
memory system — :class:`~repro.memory.interconnect.Interconnect` +
:class:`~repro.coherence.directory.DirectoryController` +
:class:`~repro.memory.cache.LockupFreeCache` — restricted to the batch
envelope (invalidate protocol, no prefetch, no speculation, no update
protocol, no uncached ranges).  Within that envelope it is *bit-exact*:
every ``sim.schedule`` call the scalar classes would make is made here
in the same order with the same delay, so event sequence numbers, FIFO
channel floors, transaction interleavings, final memory, and every
statistic come out identical.  The differential suite pins this against
the scalar kernel; ``BatchEngine(reference_fabric=True)`` swaps the
real component classes back in for triaging any divergence.

What makes it fast rather than faithful-but-slow:

* no :class:`~repro.coherence.messages.Message` dataclasses — a message
  is one scheduled closure carrying its handler arguments;
* no :class:`~repro.sim.kernel.Component` registration, no trace
  recorder calls, no label strings;
* statistics are plain integer attributes (flushed into a
  :class:`~repro.sim.stats.StatsRegistry` only when a caller actually
  asks for stats);
* per-line directory state and cache sets are tiny ``__slots__``
  records in dicts keyed by line address.

The transliteration drops the prefetch bookkeeping (``prefetch_only``
MSHRs, ``_prefetched_unused``) because no prefetch can be issued inside
the envelope — the corresponding counters are constant zero, which the
flush reproduces.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, TYPE_CHECKING

from ...memory.cache import _rmw_new_value
from ...memory.types import AccessKind, AccessRequest, LatencyConfig
from ...sim.errors import ProtocolError
from ...sim.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from .engine import BatchEngine
    from .jobs import BatchJob

# line states (mirror LineState; ints for speed)
_INV, _SHARED, _MODIFIED = 0, 1, 2
#: archtrace state strings matching the scalar LineState.value
_STATE_NAMES = ("I", "S", "M")
# directory states (mirror DirState)
_UNOWNED, _DSHARED, _DEXCL = 0, 1, 2
# transaction kinds (mirror MessageKind.READ/READX/UPGRADE)
_T_READ, _T_READX, _T_UPGRADE = 0, 1, 2
#: the directory's node id on FIFO channels (caches are 0..ncpu-1)
_DIR = -1

#: LatencyConfig derivation memo — every fuzz lane shares a couple of
#: distinct miss latencies, and lane construction is throughput-critical
_LAT_CACHE: Dict[int, LatencyConfig] = {}


class _Line:
    __slots__ = ("line_addr", "state", "data", "lru")

    def __init__(self, line_addr: int, state: int, data: List[int]) -> None:
        self.line_addr = line_addr
        self.state = state
        self.data = data
        self.lru = 0


class _Mshr:
    __slots__ = ("line_addr", "exclusive", "waiters", "pending_exclusive",
                 "issued_cycle")

    def __init__(self, line_addr: int, exclusive: bool, issued_cycle: int) -> None:
        self.line_addr = line_addr
        self.exclusive = exclusive
        self.waiters: List[AccessRequest] = []
        self.pending_exclusive: List[AccessRequest] = []
        self.issued_cycle = issued_cycle


class _DirEnt:
    __slots__ = ("state", "sharers", "owner")

    def __init__(self) -> None:
        self.state = _UNOWNED
        self.sharers: set = set()
        self.owner: Optional[int] = None


class _Txn:
    __slots__ = ("txn_id", "kind", "requester", "line_addr", "pending_acks",
                 "awaiting_writeback", "writeback_arrived", "grant_with_data")

    def __init__(self, txn_id: int, kind: int, requester: int,
                 line_addr: int) -> None:
        self.txn_id = txn_id
        self.kind = kind
        self.requester = requester
        self.line_addr = line_addr
        self.pending_acks = 0
        self.awaiting_writeback = False
        self.writeback_arrived = False
        self.grant_with_data = True


class FastCache:
    """One CPU's cache: the ``can_accept``/``access`` surface the engine
    drives, plus the protocol handlers the lane's directory calls."""

    __slots__ = ("fab", "node", "_sets", "mshrs", "_lru_clock",
                 "_port_cycle", "_port_used", "_writebacks",
                 "hits", "misses", "merges", "invals_received",
                 "replacements", "writebacks_ctr", "port_accesses")

    def __init__(self, fab: "FastFabric", node: int) -> None:
        self.fab = fab
        self.node = node
        # sets come into existence on first touch: a fuzz lane uses a
        # couple of sets out of 64, and lane setup cost is on the
        # throughput-critical path
        self._sets: Dict[int, List[_Line]] = {}
        self.mshrs: Dict[int, _Mshr] = {}
        self._lru_clock = 0
        self._port_cycle = -1
        self._port_used = 0
        self._writebacks: Dict[int, List[int]] = {}
        self.hits = 0
        self.misses = 0
        self.merges = 0
        self.invals_received = 0
        self.replacements = 0
        self.writebacks_ctr = 0
        self.port_accesses = 0

    # -- lookup --------------------------------------------------------
    def _find_line(self, line_addr: int) -> Optional[_Line]:
        cache_set = self._sets.get(line_addr % self.fab.num_sets)
        if cache_set:
            for line in cache_set:
                if line.line_addr == line_addr and line.state != _INV:
                    return line
        return None

    def peek_word(self, addr: int) -> Optional[int]:
        line = self._find_line(addr // self.fab.line_size)
        if line is None:
            return None
        return line.data[addr % self.fab.line_size]

    def _touch(self, line: _Line) -> None:
        self._lru_clock += 1
        line.lru = self._lru_clock

    # -- port arbitration ---------------------------------------------
    def can_accept(self) -> bool:
        if self._port_cycle != self.fab.engine.cycle:
            return self.fab.ports > 0
        return self._port_used < self.fab.ports

    def _use_port(self) -> None:
        cycle = self.fab.engine.cycle
        if self._port_cycle != cycle:
            self._port_cycle = cycle
            self._port_used = 0
        self._port_used += 1
        self.port_accesses += 1

    # -- demand accesses ----------------------------------------------
    def access(self, req: AccessRequest) -> bool:
        fab = self.fab
        cycle = fab.engine.cycle
        # can_accept, inlined (hot path: every load/store issue attempt)
        if self._port_cycle == cycle:
            if self._port_used >= fab.ports:
                return False
        elif fab.ports <= 0:
            return False
        line_addr = req.addr // fab.line_size
        line = self._find_line(line_addr)
        mshr = self.mshrs.get(line_addr)
        needs_excl = req.kind is not AccessKind.LOAD or req.exclusive_hint

        if line is not None and (line.state == _MODIFIED
                                 or (line.state == _SHARED and not needs_excl)):
            self._use_port()
            self.hits += 1
            self._touch(line)
            req.issued_cycle = cycle
            fab.post(fab.hit_latency, self._complete_access, req, line_addr)
            return True

        if mshr is not None:
            self._use_port()
            self.merges += 1
            req.issued_cycle = cycle
            if needs_excl and not mshr.exclusive:
                mshr.pending_exclusive.append(req)
            else:
                mshr.waiters.append(req)
            return True

        if len(self.mshrs) >= fab.mshr_entries:
            return False

        self._use_port()
        self.misses += 1
        req.issued_cycle = cycle
        entry = _Mshr(line_addr, needs_excl, cycle)
        entry.waiters.append(req)
        self.mshrs[line_addr] = entry
        if needs_excl and line is not None and line.state == _SHARED:
            fab.send_request(self.node, _T_UPGRADE, line_addr)
        else:
            fab.send_request(self.node, _T_READX if needs_excl else _T_READ,
                             line_addr)
        return True

    # -- completion ----------------------------------------------------
    def _complete_access(self, req: AccessRequest, line_addr: int) -> None:
        line = self._find_line(line_addr)
        if line is None:
            # invalidated/replaced between hit detection and completion
            self.fab.post(0, self._retry, req)
            return
        if req.kind is not AccessKind.LOAD and line.state != _MODIFIED:
            # lost permission (RECALL downgrade) in the same window
            self.fab.post(0, self._retry, req)
            return
        widx = req.addr % self.fab.line_size
        if req.kind is AccessKind.LOAD:
            value = line.data[widx]
        elif req.kind is AccessKind.STORE:
            line.data[widx] = req.value
            value = req.value
        else:  # RMW
            old = line.data[widx]
            line.data[widx] = _rmw_new_value(req.rmw_op, old, req.value)
            value = old
        self._touch(line)
        if req.callback is not None:
            req.callback(req, value)

    def _retry(self, req: AccessRequest) -> None:
        if not self.access(req):
            self.fab.post(1, self._retry, req)

    # -- fills ---------------------------------------------------------
    def _arch(self, kind: str, **detail) -> None:
        """Archtrace emission mirroring the scalar CoherentCache's
        trace.record sites (same kinds, same conditions)."""
        arch = self.fab.arch
        if arch is not None:
            arch.record(self.fab.engine.cycle, f"cache{self.node}",
                        kind, **detail)

    def _install(self, line_addr: int, state: int,
                 data: List[int]) -> Optional[_Line]:
        cache_set = self._sets.setdefault(line_addr % self.fab.num_sets, [])
        for line in cache_set:
            if line.line_addr == line_addr:
                line.state = state
                line.data = list(data)
                self._touch(line)
                self._arch("fill", line=line_addr,
                           state=_STATE_NAMES[state])
                return line
        if len(cache_set) < self.fab.assoc:
            line = _Line(line_addr, state, list(data))
            self._touch(line)
            cache_set.append(line)
            self._arch("fill", line=line_addr, state=_STATE_NAMES[state])
            return line
        victims = [
            l for l in cache_set
            if l.line_addr not in self.mshrs and l.line_addr not in self._writebacks
        ]
        if not victims:
            return None
        victim = min(victims, key=lambda l: l.lru)
        self._evict(victim)
        victim.line_addr = line_addr
        victim.state = state
        victim.data = list(data)
        self._touch(victim)
        self._arch("fill", line=line_addr, state=_STATE_NAMES[state])
        return victim

    def _evict(self, line: _Line) -> None:
        self.replacements += 1
        self._arch("evict", line=line.line_addr,
                   state=_STATE_NAMES[line.state])
        if line.state == _MODIFIED:
            self.writebacks_ctr += 1
            self._writebacks[line.line_addr] = list(line.data)
            self.fab.send_writeback(self.node, line.line_addr, list(line.data))
        line.state = _INV

    def _on_data(self, line_addr: int, data: List[int]) -> None:
        entry = self.mshrs.get(line_addr)
        if entry is None:
            raise ProtocolError(
                f"cache{self.node}: DATA with no MSHR for line {line_addr:#x}")
        line = self._install(line_addr, _SHARED, data)
        if line is None:
            self.fab.post(1, self._on_data, line_addr, data)
            return
        del self.mshrs[line_addr]
        pending_excl = entry.pending_exclusive
        for req in entry.waiters:
            self._complete_access(req, line_addr)
        if pending_excl:
            # stores merged onto a shared miss: upgrade to ownership now
            new_entry = _Mshr(line_addr, True, self.fab.engine.cycle)
            new_entry.waiters.extend(pending_excl)
            self.mshrs[line_addr] = new_entry
            self.fab.send_request(self.node, _T_UPGRADE, line_addr)

    def _on_data_excl(self, line_addr: int, data: Optional[List[int]]) -> None:
        entry = self.mshrs.get(line_addr)
        if entry is None:
            raise ProtocolError(
                f"cache{self.node}: DATA_EXCL with no MSHR for line {line_addr:#x}")
        if data is None:
            # upgrade ack: keep the data we already have
            existing = self._find_line(line_addr)
            if existing is None:
                raise ProtocolError(
                    f"cache{self.node}: upgrade ack for line {line_addr:#x} not present")
            fill = existing.data
        else:
            fill = data
        line = self._install(line_addr, _MODIFIED, fill)
        if line is None:
            self.fab.post(1, self._on_data_excl, line_addr, data)
            return
        del self.mshrs[line_addr]
        for req in entry.waiters + entry.pending_exclusive:
            self._complete_access(req, line_addr)

    # -- snoops --------------------------------------------------------
    def _on_inval(self, line_addr: int, txn: int) -> None:
        self.invals_received += 1
        line = self._find_line(line_addr)
        if line is not None:
            line.state = _INV
        self._arch("inval", line=line_addr)
        self.fab.send_inval_ack(self.node, line_addr, txn)

    def _on_recall(self, line_addr: int, txn: int) -> None:
        line = self._find_line(line_addr)
        if line is None or line.state != _MODIFIED:
            # raced with our own writeback; the directory will use it
            self.fab.send_recall_ack(self.node, line_addr, txn, None)
            return
        line.state = _SHARED
        self._arch("downgrade", line=line_addr)
        self.fab.send_recall_ack(self.node, line_addr, txn, list(line.data))

    def _on_recall_inval(self, line_addr: int, txn: int) -> None:
        line = self._find_line(line_addr)
        data: Optional[List[int]] = None
        if line is not None:
            if line.state == _MODIFIED:
                data = list(line.data)
            line.state = _INV
        self._arch("inval", line=line_addr)
        self.fab.send_recall_ack(self.node, line_addr, txn, data)

    def _on_wb_ack(self, line_addr: int) -> None:
        self._writebacks.pop(line_addr, None)

    # -- bookkeeping ---------------------------------------------------
    def is_quiescent(self) -> bool:
        return not self.mshrs and not self._writebacks

    def warm_install(self, line_addr: int, state: int, data: List[int]) -> None:
        if self._install(line_addr, state, data) is None:
            raise ProtocolError("warm_install could not find a victim way")


class FastFabric:
    """One lane's memory system: caches + directory + FIFO channels."""

    __slots__ = ("engine", "lane", "arch", "num_sets", "assoc", "line_size",
                 "hit_latency", "mshr_entries", "ports",
                 "lat_request", "lat_response", "lat_inval", "lat_inval_ack",
                 "lat_recall", "lat_recall_response", "lat_memory",
                 "caches", "_chan", "in_flight", "net_messages", "net_hops",
                 "_mem", "_entries", "_busy", "_queues", "_next_txn",
                 "dir_reads", "dir_readx", "dir_upgrades", "dir_invals_sent",
                 "dir_recalls_sent", "dir_writebacks", "dir_queued")

    def __init__(self, engine: "BatchEngine", lane: int, job: "BatchJob",
                 arch=None) -> None:
        self.engine = engine
        self.lane = lane
        # archtrace collector; must be bound before the warm loop below
        # so warm fills land at cycle 0, matching the scalar kernel
        self.arch = arch
        cfg = job.cache_config()
        self.num_sets = cfg.num_sets
        self.assoc = cfg.assoc
        self.line_size = cfg.line_size
        self.hit_latency = cfg.hit_latency
        self.mshr_entries = cfg.mshr_entries
        self.ports = cfg.ports
        lat = _LAT_CACHE.get(job.miss_latency)
        if lat is None:
            lat = _LAT_CACHE[job.miss_latency] = (
                LatencyConfig.from_miss_latency(job.miss_latency))
        self.lat_request = lat.request
        self.lat_response = lat.response
        self.lat_inval = lat.inval
        self.lat_inval_ack = lat.inval_ack
        self.lat_recall = lat.recall
        self.lat_recall_response = lat.recall_response
        self.lat_memory = lat.memory

        self.caches = [FastCache(self, cpu) for cpu in range(job.ncpu)]
        self._chan: Dict[tuple, int] = {}
        self.in_flight = 0
        self.net_messages = 0
        self.net_hops = 0

        self._mem: Dict[int, int] = {}
        self._entries: Dict[int, _DirEnt] = {}
        self._busy: Dict[int, _Txn] = {}
        self._queues: Dict[int, deque] = {}
        self._next_txn = 1
        self.dir_reads = 0
        self.dir_readx = 0
        self.dir_upgrades = 0
        self.dir_invals_sent = 0
        self.dir_recalls_sent = 0
        self.dir_writebacks = 0
        self.dir_queued = 0

        if job.initial_memory:
            self._mem.update(job.initial_memory)
        for cpu, addr, exclusive in job.warm_lines:
            self.warm(cpu, addr, exclusive=exclusive)

    # -- event plumbing ------------------------------------------------
    def post(self, delay: int, fn, *args) -> None:
        engine = self.engine
        engine.post(self.lane, engine.cycle + delay, None, fn, args)

    def _net_send(self, latency: int, src: int, dst: int, fn, *args) -> None:
        """The Interconnect's ``send``: FIFO per (src, dst) channel."""
        engine = self.engine
        arrival = engine.cycle + latency
        channel = (src, dst)
        floor = self._chan.get(channel, -1)
        if arrival < floor:
            arrival = floor
        self._chan[channel] = arrival
        self.net_messages += 1
        self.net_hops += latency
        self.in_flight += 1
        # the engine decrements in_flight at delivery (no per-message
        # closure; ``self`` rides along in the bucket entry)
        engine.post(self.lane, arrival, self, fn, args)

    # -- cache -> directory --------------------------------------------
    def send_request(self, src: int, kind: int, line_addr: int) -> None:
        self._net_send(self.lat_request, src, _DIR,
                       self._accept_request, kind, src, line_addr)

    def send_writeback(self, src: int, line_addr: int, data: List[int]) -> None:
        self._net_send(self.lat_request, src, _DIR,
                       self._on_writeback, src, line_addr, data)

    def send_inval_ack(self, src: int, line_addr: int, txn: int) -> None:
        self._net_send(self.lat_inval_ack, src, _DIR,
                       self._on_inval_ack, line_addr, txn)

    def send_recall_ack(self, src: int, line_addr: int, txn: int,
                        data: Optional[List[int]]) -> None:
        self._net_send(self.lat_recall_response, src, _DIR,
                       self._on_recall_ack, line_addr, txn, data)

    # -- directory: backing store --------------------------------------
    def init_memory(self, values: Dict[int, int]) -> None:
        self._mem.update(values)

    def dir_read_word(self, addr: int) -> int:
        return self._mem.get(addr, 0)

    def _read_line(self, line_addr: int) -> List[int]:
        base = line_addr * self.line_size
        mem = self._mem
        return [mem.get(base + i, 0) for i in range(self.line_size)]

    def _write_line(self, line_addr: int, data: List[int]) -> None:
        base = line_addr * self.line_size
        for i, word in enumerate(data):
            self._mem[base + i] = word

    def entry(self, line_addr: int) -> _DirEnt:
        ent = self._entries.get(line_addr)
        if ent is None:
            ent = self._entries[line_addr] = _DirEnt()
        return ent

    # -- directory: transactions ---------------------------------------
    def _accept_request(self, kind: int, src: int, line_addr: int) -> None:
        if line_addr in self._busy:
            self.dir_queued += 1
            self._queues.setdefault(line_addr, deque()).append((kind, src))
            return
        self._start(kind, src, line_addr)

    def _start(self, kind: int, src: int, line_addr: int) -> None:
        txn = _Txn(self._next_txn, kind, src, line_addr)
        self._next_txn += 1
        self._busy[line_addr] = txn
        # directory lookup + memory access latency, then act
        self.post(self.lat_memory, self._act, txn)

    def _finish(self, txn: _Txn) -> None:
        del self._busy[txn.line_addr]
        queue = self._queues.get(txn.line_addr)
        if queue:
            kind, src = queue.popleft()
            if not queue:
                del self._queues[txn.line_addr]
            self.post(0, self._start, kind, src, txn.line_addr)

    def _act(self, txn: _Txn) -> None:
        if txn.kind == _T_READ:
            self._act_read(txn)
        else:
            self._act_readx(txn, upgrade=txn.kind == _T_UPGRADE)

    def _act_read(self, txn: _Txn) -> None:
        self.dir_reads += 1
        ent = self.entry(txn.line_addr)
        if ent.state != _DEXCL:
            ent.state = _DSHARED
            ent.sharers.add(txn.requester)
            self._send_data(txn)
            self._finish(txn)
            return
        if ent.owner == txn.requester:
            raise ProtocolError(
                f"owner {ent.owner} issued READ for line {txn.line_addr:#x} it still owns")
        self.dir_recalls_sent += 1
        self._net_send(self.lat_recall, _DIR, ent.owner,
                       self.caches[ent.owner]._on_recall,
                       txn.line_addr, txn.txn_id)

    def _act_readx(self, txn: _Txn, upgrade: bool) -> None:
        if upgrade:
            self.dir_upgrades += 1
        else:
            self.dir_readx += 1
        ent = self.entry(txn.line_addr)
        if ent.state == _UNOWNED:
            self._grant_exclusive(txn, with_data=True)
            return
        if ent.state == _DSHARED:
            others = sorted(s for s in ent.sharers if s != txn.requester)
            txn.pending_acks = len(others)
            requester_has_copy = upgrade and txn.requester in ent.sharers
            txn.grant_with_data = not requester_has_copy
            if not others:
                self._grant_exclusive(txn, with_data=not requester_has_copy)
                return
            for node in others:
                self.dir_invals_sent += 1
                self._net_send(self.lat_inval, _DIR, node,
                               self.caches[node]._on_inval,
                               txn.line_addr, txn.txn_id)
            return
        if ent.owner == txn.requester:
            raise ProtocolError(
                f"owner {ent.owner} re-requested exclusive line {txn.line_addr:#x}")
        self.dir_recalls_sent += 1
        self._net_send(self.lat_recall, _DIR, ent.owner,
                       self.caches[ent.owner]._on_recall_inval,
                       txn.line_addr, txn.txn_id)

    def _current_txn(self, line_addr: int, txn_id: int) -> _Txn:
        txn = self._busy.get(line_addr)
        if txn is None or txn.txn_id != txn_id:
            raise ProtocolError(
                f"ack for line {line_addr:#x} txn {txn_id} does not match the busy transaction")
        return txn

    def _on_inval_ack(self, line_addr: int, txn_id: int) -> None:
        txn = self._current_txn(line_addr, txn_id)
        txn.pending_acks -= 1
        if txn.pending_acks == 0:
            self._grant_exclusive(txn, with_data=txn.grant_with_data)

    def _on_recall_ack(self, line_addr: int, txn_id: int,
                       data: Optional[List[int]]) -> None:
        txn = self._current_txn(line_addr, txn_id)
        if data is None:
            # the owner's writeback crossed our recall
            if txn.writeback_arrived:
                self._complete_after_recall(txn)
            else:
                txn.awaiting_writeback = True
            return
        self._write_line(line_addr, data)
        self._complete_after_recall(txn)

    def _complete_after_recall(self, txn: _Txn) -> None:
        ent = self.entry(txn.line_addr)
        old_owner = ent.owner
        if txn.kind == _T_READ:
            ent.state = _DSHARED
            ent.owner = None
            ent.sharers = {txn.requester}
            if old_owner is not None:
                ent.sharers.add(old_owner)
            self._send_data(txn)
            self._finish(txn)
        else:  # READX / UPGRADE that found an exclusive owner
            self._grant_exclusive(txn, with_data=True)

    def _on_writeback(self, src: int, line_addr: int, data: List[int]) -> None:
        self.dir_writebacks += 1
        ent = self.entry(line_addr)
        txn = self._busy.get(line_addr)
        if txn is not None and ent.state == _DEXCL and ent.owner == src:
            # the owner is writing back a line we are recalling
            self._write_line(line_addr, data or [])
            ent.state = _UNOWNED
            ent.owner = None
            ent.sharers = set()
            self._net_send(self.lat_response, _DIR, src,
                           self.caches[src]._on_wb_ack, line_addr)
            if txn.awaiting_writeback:
                txn.awaiting_writeback = False
                self._complete_after_recall(txn)
            else:
                txn.writeback_arrived = True
            return
        if ent.state == _DEXCL and ent.owner == src:
            self._write_line(line_addr, data or [])
            ent.state = _UNOWNED
            ent.owner = None
            ent.sharers = set()
        self._net_send(self.lat_response, _DIR, src,
                       self.caches[src]._on_wb_ack, line_addr)

    # -- directory: replies --------------------------------------------
    def _grant_exclusive(self, txn: _Txn, with_data: bool) -> None:
        ent = self.entry(txn.line_addr)
        ent.state = _DEXCL
        ent.owner = txn.requester
        ent.sharers = set()
        self._net_send(self.lat_response, _DIR, txn.requester,
                       self.caches[txn.requester]._on_data_excl,
                       txn.line_addr,
                       self._read_line(txn.line_addr) if with_data else None)
        self._finish(txn)

    def _send_data(self, txn: _Txn) -> None:
        self._net_send(self.lat_response, _DIR, txn.requester,
                       self.caches[txn.requester]._on_data,
                       txn.line_addr, self._read_line(txn.line_addr))

    # -- fabric-level helpers (mirror MemoryFabric) --------------------
    def read_word(self, addr: int) -> int:
        ent = self.entry(addr // self.line_size)
        if isinstance(ent.owner, int) and 0 <= ent.owner < len(self.caches):
            owned = self.caches[ent.owner].peek_word(addr)
            if owned is not None:
                return owned
        return self._mem.get(addr, 0)

    def warm(self, cpu: int, addr: int, exclusive: bool = False) -> None:
        line_addr = addr // self.line_size
        data = self._read_line(line_addr)
        self.caches[cpu].warm_install(
            line_addr, _MODIFIED if exclusive else _SHARED, data)
        ent = self.entry(line_addr)
        if exclusive:
            ent.state = _DEXCL
            ent.owner = cpu
            ent.sharers = set()
        else:
            if ent.state == _DEXCL:
                raise ValueError("cannot warm-share a line that is exclusively owned")
            ent.state = _DSHARED
            ent.sharers.add(cpu)

    def is_quiescent(self) -> bool:
        if self.in_flight or self._busy or self._queues:
            return False
        for cache in self.caches:
            if cache.mshrs or cache._writebacks:
                return False
        return True

    # -- stats ---------------------------------------------------------
    def flush_stats(self, stats: StatsRegistry) -> None:
        """Create the exact counter set the scalar fabric classes create
        eagerly, with this lane's final values (prefetch/update counters
        are structurally zero inside the envelope)."""
        stats.counter("net/messages").inc(self.net_messages)
        stats.counter("net/total_latency").inc(self.net_hops)
        stats.counter("dir/reads").inc(self.dir_reads)
        stats.counter("dir/readx").inc(self.dir_readx)
        stats.counter("dir/upgrades").inc(self.dir_upgrades)
        stats.counter("dir/invals_sent").inc(self.dir_invals_sent)
        stats.counter("dir/recalls_sent").inc(self.dir_recalls_sent)
        stats.counter("dir/writebacks").inc(self.dir_writebacks)
        stats.counter("dir/updates_sent")
        stats.counter("dir/requests_queued").inc(self.dir_queued)
        for cache in self.caches:
            p = f"cache{cache.node}"
            stats.counter(f"{p}/hits").inc(cache.hits)
            stats.counter(f"{p}/misses").inc(cache.misses)
            stats.counter(f"{p}/mshr_merges").inc(cache.merges)
            stats.counter(f"{p}/prefetches_issued")
            stats.counter(f"{p}/prefetches_discarded")
            stats.counter(f"{p}/prefetches_useful")
            stats.counter(f"{p}/prefetches_late")
            stats.counter(f"{p}/prefetches_useful_hit")
            stats.counter(f"{p}/prefetches_useless_invalidated")
            stats.counter(f"{p}/invals_received").inc(cache.invals_received)
            stats.counter(f"{p}/updates_received")
            stats.counter(f"{p}/replacements").inc(cache.replacements)
            stats.counter(f"{p}/writebacks").inc(cache.writebacks_ctr)
            stats.counter(f"{p}/port_accesses").inc(cache.port_accesses)

"""Simulation kernel: deterministic clock, events, components, stats, traces."""

from .errors import (
    AssemblerError,
    ConfigurationError,
    DeadlockError,
    IsaError,
    ProtocolError,
    SimulationError,
)
from .events import Event, EventQueue
from .kernel import Component, Simulator
from .stats import Counter, Histogram, StatsRegistry, format_stats_table
from .sweep import (
    SweepError,
    SweepResult,
    WorkerStats,
    derive_seed,
    run_sweep,
    sweep_map,
)
from .trace import NullTraceRecorder, TraceEvent, TraceRecorder

__all__ = [
    "AssemblerError",
    "Component",
    "ConfigurationError",
    "Counter",
    "DeadlockError",
    "Event",
    "EventQueue",
    "Histogram",
    "IsaError",
    "NullTraceRecorder",
    "ProtocolError",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "SweepError",
    "SweepResult",
    "TraceEvent",
    "TraceRecorder",
    "WorkerStats",
    "derive_seed",
    "format_stats_table",
    "run_sweep",
    "sweep_map",
]

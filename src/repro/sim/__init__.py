"""Simulation kernel: deterministic clock, events, components, stats, traces."""

from .errors import (
    AssemblerError,
    ConfigurationError,
    DeadlockError,
    IsaError,
    ProtocolError,
    SimulationError,
)
from .events import Event, EventQueue
from .kernel import WAKE_NEVER, Component, Simulator
from .profiler import HostHeartbeat, HostProfiler
from .stats import Counter, Histogram, StatsRegistry, format_stats_table
from .sweep import (
    ProgressMeter,
    SweepError,
    SweepProgress,
    SweepResult,
    WorkerStats,
    derive_seed,
    format_duration,
    run_sweep,
    sweep_map,
)
from .trace import NullTraceRecorder, TraceEvent, TraceRecorder

__all__ = [
    "AssemblerError",
    "Component",
    "ConfigurationError",
    "Counter",
    "DeadlockError",
    "Event",
    "EventQueue",
    "Histogram",
    "HostHeartbeat",
    "HostProfiler",
    "IsaError",
    "NullTraceRecorder",
    "ProgressMeter",
    "ProtocolError",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "SweepError",
    "SweepProgress",
    "SweepResult",
    "TraceEvent",
    "TraceRecorder",
    "WAKE_NEVER",
    "WorkerStats",
    "derive_seed",
    "format_duration",
    "format_stats_table",
    "run_sweep",
    "sweep_map",
]

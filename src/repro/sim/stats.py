"""Statistics collection.

Components register named counters and histograms against a shared
:class:`StatsRegistry`.  Statistics are plain Python numbers so reports
can be rendered without any third-party dependency.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Tuple


class Counter:
    """A monotonically increasing (or arbitrary-increment) scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """An exact histogram over integer samples (e.g. access latencies)."""

    __slots__ = ("name", "_buckets", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: Dict[int, int] = defaultdict(int)
        self.count = 0
        self.total = 0
        self.min: int = 0
        self.max: int = 0

    def add(self, sample: int, weight: int = 1) -> None:
        if self.count == 0:
            self.min = self.max = sample
        else:
            self.min = min(self.min, sample)
            self.max = max(self.max, sample)
        self._buckets[sample] += weight
        self.count += weight
        self.total += sample * weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Return the ``p``-th percentile (0 <= p <= 100) of the samples."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0
        target = p / 100.0 * (self.count - 1)
        seen = 0
        for sample in sorted(self._buckets):
            seen += self._buckets[sample]
            if seen - 1 >= target:
                return sample
        return self.max

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self._buckets.items())

    def reset(self) -> None:
        self._buckets.clear()
        self.count = self.total = 0
        self.min = self.max = 0


class StatsRegistry:
    """Hierarchically named counters and histograms.

    Names use ``/`` separators by convention, e.g. ``cpu0/lsu/loads`` or
    ``cache1/misses``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counters(self, prefix: str = "") -> Mapping[str, int]:
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, object]:
        """A flat, JSON-friendly view of every statistic."""
        out: Dict[str, object] = {}
        for name, c in sorted(self._counters.items()):
            out[name] = c.value
        for name, h in sorted(self._histograms.items()):
            out[name + "/count"] = h.count
            out[name + "/mean"] = round(h.mean, 3)
            out[name + "/min"] = h.min
            out[name + "/max"] = h.max
            out[name + "/p50"] = h.percentile(50)
            out[name + "/p95"] = h.percentile(95)
            out[name + "/p99"] = h.percentile(99)
        return out

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for h in self._histograms.values():
            h.reset()

    def merge_from(self, other: "StatsRegistry", prefix: str = "") -> None:
        """Accumulate another registry's counters into this one."""
        for name, c in other._counters.items():
            self.counter(prefix + name).inc(c.value)
        for name, h in other._histograms.items():
            dest = self.histogram(prefix + name)
            for sample, weight in h.items():
                dest.add(sample, weight)


def format_stats_table(stats: Mapping[str, object], title: str = "") -> str:
    """Render a stats mapping as an aligned two-column text table.

    Values are right-aligned in a common column; floats are rendered
    with a fixed precision so mixed int/float listings line up.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if not stats:
        lines.append("(no statistics)")
        return "\n".join(lines)

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered = {key: fmt(value) for key, value in stats.items()}
    key_width = max(len(k) for k in rendered)
    value_width = max(len(v) for v in rendered.values())
    for key, value in rendered.items():
        lines.append(f"{key:<{key_width}}  {value:>{value_width}}")
    return "\n".join(lines)

"""Host-side self-profiler for the simulation kernel.

Everything else in :mod:`repro.obs` measures the *guest* — the simulated
machine.  This module measures the *host*: how much wall-clock time the
simulator itself spends per registered :class:`~repro.sim.kernel.Component`
class per tick, how deep the event queue runs, and how many simulated
cycles / retired instructions per wall-second the stack sustains.

Design constraints:

* **near-zero overhead when off** — the kernel's normal ``step`` path is
  untouched; enabling profiling swaps in a separate timed step, so a
  non-profiled run executes exactly the instructions it always did;
* **no effect on simulation results** — the profiler only *reads* the
  monotonic clock; it never feeds wall time back into any simulated
  decision, so cycle counts, statistics, and traces are bit-identical
  with profiling on or off (``host/*`` counters excepted);
* **exported through the stats registry** — :meth:`HostProfiler.export`
  writes integer gauges under ``host/profile/...``, so ``--stats-json``
  and :func:`~repro.sim.stats.format_stats_table` pick them up for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from .stats import StatsRegistry

#: prefix of every counter the profiler writes into a stats registry
HOST_PREFIX = "host/profile/"


def _retired_instructions(stats: StatsRegistry) -> int:
    """Total retired instructions across every CPU counter."""
    return sum(value for name, value in stats.counters().items()
               if name.endswith("/instructions_retired"))


@dataclass
class HostHeartbeat:
    """One live progress sample, emitted every ``heartbeat_cycles``."""

    cycle: int                      # current simulated cycle
    wall_seconds: float             # wall time since profiling started
    cycles_per_second: float        # instantaneous, since last heartbeat
    instructions_per_second: float  # instantaneous, since last heartbeat
    event_queue_depth: int          # pending events right now

    def describe(self) -> str:
        kips = self.instructions_per_second / 1e3
        kcps = self.cycles_per_second / 1e3
        return (f"cycle {self.cycle}: {kcps:.0f} kcycles/s, "
                f"{kips:.0f} KIPS, queue={self.event_queue_depth}, "
                f"{self.wall_seconds:.1f}s")


class HostProfiler:
    """Accumulates per-component wall time while the kernel steps.

    The kernel's profiled step writes the raw nanosecond buckets
    directly (they are plain attributes — no per-tick method calls);
    this class owns aggregation, heartbeats, and export.
    """

    def __init__(self,
                 heartbeat: Optional[Callable[[HostHeartbeat], None]] = None,
                 heartbeat_cycles: int = 50_000) -> None:
        if heartbeat_cycles < 1:
            raise ValueError(
                f"heartbeat_cycles must be >= 1, got {heartbeat_cycles}")
        #: wall nanoseconds per Component subclass name, tick phase only
        self.component_ns: Dict[str, int] = {}
        self.events_ns = 0      # event-queue run_due phase
        self.hooks_ns = 0       # trace-hook phase
        self.wall_ns = 0        # total time inside profiled steps
        self.ticks = 0          # cycles stepped while profiling
        self.ff_spans = 0       # fast-forward jumps taken
        self.ff_cycles = 0      # cycles elided by fast-forward
        self.ff_ns = 0          # wall time inside wake/sleep analysis
        self.queue_depth_sum = 0
        self.queue_depth_max = 0
        self.heartbeat = heartbeat
        self.heartbeat_cycles = heartbeat_cycles
        self._start_ns = time.perf_counter_ns()
        self._hb_last_ns = self._start_ns
        self._hb_last_cycle = 0
        self._hb_last_retired = 0

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        return (self.wall_ns + self.ff_ns) / 1e9

    @property
    def sim_cycles(self) -> int:
        """Simulated cycles covered: stepped ticks plus elided cycles."""
        return self.ticks + self.ff_cycles

    @property
    def tick_ns_total(self) -> int:
        """Wall nanoseconds spent inside component ticks (all classes)."""
        return sum(self.component_ns.values())

    def shares(self) -> Dict[str, float]:
        """Fraction of component-tick wall time per component class.

        By construction the values sum to 1.0 (within float rounding)
        whenever any tick time was measured at all.
        """
        total = self.tick_ns_total
        if total <= 0:
            return {name: 0.0 for name in self.component_ns}
        return {name: ns / total
                for name, ns in sorted(self.component_ns.items())}

    def cycles_per_second(self) -> float:
        total_ns = self.wall_ns + self.ff_ns
        if total_ns <= 0:
            return 0.0
        return self.sim_cycles / (total_ns / 1e9)

    def mean_queue_depth(self) -> float:
        return self.queue_depth_sum / self.ticks if self.ticks else 0.0

    # ------------------------------------------------------------------
    # Heartbeats (live progress for long runs)
    # ------------------------------------------------------------------
    def maybe_heartbeat(self, cycle: int, stats: StatsRegistry,
                        queue_depth: int) -> None:
        """Emit a heartbeat if one is due; called by the profiled step."""
        if self.heartbeat is None or self.ticks % self.heartbeat_cycles:
            return
        now = time.perf_counter_ns()
        dt = (now - self._hb_last_ns) / 1e9
        retired = _retired_instructions(stats)
        d_cycles = cycle - self._hb_last_cycle
        d_retired = retired - self._hb_last_retired
        cps = d_cycles / dt if dt > 1e-9 else 0.0
        ips = d_retired / dt if dt > 1e-9 else 0.0
        self._hb_last_ns = now
        self._hb_last_cycle = cycle
        self._hb_last_retired = retired
        self.heartbeat(HostHeartbeat(
            cycle=cycle,
            wall_seconds=(now - self._start_ns) / 1e9,
            cycles_per_second=cps,
            instructions_per_second=ips,
            event_queue_depth=queue_depth,
        ))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, stats: StatsRegistry) -> None:
        """Write the profile as integer gauges under ``host/profile/``.

        Idempotent: gauges are *set*, not incremented, so calling after
        every ``run()`` of a multi-run simulation never double-counts.
        """
        def put(name: str, value: int) -> None:
            stats.counter(HOST_PREFIX + name).value = int(value)

        put("cycles", self.sim_cycles)
        put("ticks", self.ticks)
        put("wall_ns", self.wall_ns + self.ff_ns)
        put("events_ns", self.events_ns)
        put("hooks_ns", self.hooks_ns)
        put("fastforward/spans", self.ff_spans)
        put("fastforward/cycles", self.ff_cycles)
        put("fastforward/ns", self.ff_ns)
        for name, ns in sorted(self.component_ns.items()):
            put(f"tick_ns/{name}", ns)
        put("queue_depth/max", self.queue_depth_max)
        put("queue_depth/milli_mean", round(self.mean_queue_depth() * 1000))
        put("cycles_per_sec", round(self.cycles_per_second()))
        retired = _retired_instructions(stats)
        wall_s = self.wall_seconds
        ips = retired / wall_s if wall_s > 1e-9 else 0.0
        put("instructions_per_sec", round(ips))

    def summary(self, stats: Optional[StatsRegistry] = None) -> Dict[str, object]:
        """A JSON-friendly digest (rates, phases, per-class shares)."""
        out: Dict[str, object] = {
            "cycles": self.sim_cycles,
            "ticks": self.ticks,
            "fastforward_spans": self.ff_spans,
            "fastforward_cycles": self.ff_cycles,
            "wall_seconds": round(self.wall_seconds, 6),
            "cycles_per_second": round(self.cycles_per_second(), 1),
            "event_queue_depth_max": self.queue_depth_max,
            "event_queue_depth_mean": round(self.mean_queue_depth(), 3),
            "events_ns": self.events_ns,
            "hooks_ns": self.hooks_ns,
        }
        if stats is not None:
            retired = _retired_instructions(stats)
            wall_s = self.wall_seconds
            out["instructions_retired"] = retired
            out["kips"] = round(retired / wall_s / 1e3, 3) if wall_s > 1e-9 else 0.0
        out["component_share"] = {
            name: round(share, 4) for name, share in self.shares().items()
        }
        return out

    def render(self, stats: Optional[StatsRegistry] = None) -> str:
        """Human-readable profile report."""
        lines = ["host profile", "------------"]
        summary = self.summary(stats)
        shares: Mapping[str, float] = summary.pop("component_share")  # type: ignore[assignment]
        for key, value in summary.items():
            lines.append(f"{key:<28} {value}")
        ranked = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)
        for name, share in ranked:
            ns = self.component_ns.get(name, 0)
            lines.append(f"  tick {name:<22} {share * 100:5.1f}%  ({ns / 1e6:.1f} ms)")
        return "\n".join(lines)

"""A generic parallel sweep engine (``ProcessPoolExecutor``).

Every heavy workload in this repo has the same shape: a pure worker
function mapped over a list of independent work items (configuration
cells, fuzzing seeds, latency points).  :func:`run_sweep` is the one
shared runner for all of them:

* **chunked dispatch** — items are grouped into chunks so the
  per-task pickling/IPC overhead is amortized over many items;
* **deterministic seeding** — :func:`derive_seed` turns a master seed
  plus an item index into a stable 63-bit stream seed, identical
  regardless of worker count, chunk size, or platform;
* **ordered results** — ``results[i]`` always corresponds to
  ``items[i]``, whatever order chunks finish in;
* **per-worker stats** — items/chunks per worker process and wall
  time, for utilization reporting;
* **serial fallback** — ``jobs <= 1`` runs in-process with no
  multiprocessing at all (same chunking, same result order), which is
  also the path used on machines where fork is unavailable.

Workers must be module-level (picklable) callables and items must be
picklable values.  Exceptions inside a worker propagate to the caller
unless ``on_error="record"``, in which case the failing item's result
slot holds a :class:`SweepError`.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    IO,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .errors import ConfigurationError

#: worker signature: one picklable item in, one picklable result out
SweepWorker = Callable[[Any], Any]

#: chunk-worker signature: a whole chunk of items in, one result per
#: item out (same order).  Lets a worker amortize shared setup — or
#: batch the chunk's work onto a vectorized engine — while keeping the
#: sweep's chunking/ordering/error contract.  A slot may be a
#: :class:`SweepError` the worker built itself for a failed item.
ChunkWorker = Callable[[Sequence[Any]], List[Any]]

#: progress callback: (items_done, items_total) -> None, called in the
#: parent process each time a chunk completes
ProgressCallback = Callable[[int, int], None]

#: elapsed times below this are treated as zero in every rate/ETA
#: division (a chunk of trivial items can complete within clock
#: resolution, and 1e-12 s elapsed must not report 10^12 items/s)
MIN_ELAPSED_SECONDS = 1e-9

#: EMA rates (items/second) below this yield ``eta=None`` rather than
#: an astronomically large ETA.  This is a *rate* epsilon, distinct
#: from :data:`MIN_ELAPSED_SECONDS` (a *time* epsilon): comparing an
#: items/sec value against a seconds threshold is a units mismatch —
#: a stalled sweep limping at 1e-8 items/s would pass a 1e-9 check
#: and report an ETA of three human lifetimes instead of "unknown"
MIN_RATE = 1e-6

#: smoothing factor for the telemetry rate EMA: high enough to follow a
#: genuine speed change within a few chunks, low enough that one slow
#: straggler chunk does not swing the ETA wildly
EMA_ALPHA = 0.3


def _tm():
    """Campaign telemetry, imported lazily: ``repro.obs`` reaches back
    into ``repro.sim`` for trace types, so a module-level import here
    would be a cycle.  The telemetry package itself is stdlib-only and
    cheap; the first call pays the import, the rest hit sys.modules."""
    from ..obs import telemetry
    return telemetry


def derive_seed(master_seed: int, index: int, stream: str = "") -> int:
    """A stable per-item seed from a master seed and an item index.

    Uses SHA-256 over the decimal renderings, so the derivation is
    identical across Python versions, platforms, and worker processes —
    the property the fuzzer's replay feature and the determinism tests
    rely on.  An optional ``stream`` label separates independent seed
    streams drawn from the same master seed.
    """
    payload = f"{master_seed}/{index}/{stream}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True)
class SweepError:
    """Recorded in a result slot when a worker raised (``on_error="record"``)."""

    item_index: int
    error_type: str
    message: str

    def describe(self) -> str:
        return f"item {self.item_index}: {self.error_type}: {self.message}"


@dataclass
class WorkerStats:
    """Utilization of one worker process (or the in-process runner)."""

    worker_id: str
    items: int = 0
    chunks: int = 0
    busy_seconds: float = 0.0


@dataclass
class SweepProgress:
    """One live telemetry sample, emitted each time a chunk completes.

    ``items_per_second`` is an EMA over per-chunk instantaneous rates
    (not the run-average), so the derived ``eta_seconds`` tracks the
    sweep's *current* speed; ``workers`` holds the live
    :class:`WorkerStats` objects for per-worker utilization.
    """

    done: int
    total: int
    elapsed_seconds: float
    items_per_second: float            # EMA-smoothed
    eta_seconds: Optional[float]       # None until a rate is measurable
    jobs: int
    workers: Dict[str, WorkerStats]
    #: worst chunk queue wait observed so far (seconds between the
    #: parent submitting a chunk and a worker starting it), derived
    #: from the workers' shipped chunk spans; 0.0 when telemetry is
    #: off or the sweep is serial.  A growing value means the pool is
    #: oversubscribed relative to chunk granularity.
    queue_wait_seconds: float = 0.0

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def utilization(self) -> float:
        """Aggregate busy fraction across the worker pool, in [0, 1]."""
        if self.elapsed_seconds < MIN_ELAPSED_SECONDS or self.jobs < 1:
            return 0.0
        busy = sum(w.busy_seconds for w in self.workers.values())
        return min(1.0, busy / (self.elapsed_seconds * self.jobs))

    def describe(self) -> str:
        pct = 100.0 * self.fraction
        eta = format_duration(self.eta_seconds)
        return (f"{self.done}/{self.total} ({pct:.0f}%) "
                f"{self.items_per_second:.1f}/s eta {eta} "
                f"util {self.utilization * 100:.0f}%")


#: telemetry callback: one SweepProgress per completed chunk
TelemetryCallback = Callable[[SweepProgress], None]


def compute_eta(remaining: int, rate: float) -> Optional[float]:
    """Seconds to completion from a smoothed rate, or ``None`` when the
    rate is below :data:`MIN_RATE` (too small to be meaningful)."""
    if rate < MIN_RATE:
        return None
    return remaining / rate


def format_duration(seconds: Optional[float]) -> str:
    """``None``-safe compact rendering for ETA displays (``1m23s``)."""
    if seconds is None:
        return "?"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressMeter:
    """Renders :class:`SweepProgress` samples as a single live line.

    The carriage-return live line only appears on a real terminal; on a
    redirected stream (CI logs, pipes) the per-chunk updates are
    suppressed and :meth:`finish` prints one clean summary line — item
    count, wall time, rate, pool utilization — instead of leaving a
    ``\\r``-riddled partial line in the log.

    Usable directly as a ``telemetry=`` callback::

        meter = ProgressMeter(label="verify")
        run_sweep(worker, items, jobs=4, telemetry=meter)
        meter.finish()
    """

    def __init__(self, label: str = "sweep",
                 stream: Optional[IO[str]] = None) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.last: Optional[SweepProgress] = None

    def _interactive(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        try:
            return bool(isatty()) if isatty is not None else False
        except (OSError, ValueError):  # pragma: no cover - closed stream
            return False

    def __call__(self, progress: SweepProgress) -> None:
        self.last = progress
        if self._interactive():
            print(f"\r  {self.label}: {progress.describe()}",
                  end="", file=self.stream, flush=True)

    def finish(self) -> None:
        """Print the final summary line (call once after the sweep
        returns); silent when no sample ever arrived."""
        if self.last is None:
            return
        p = self.last
        prefix = "\r" if self._interactive() else ""
        summary = (f"{self.label}: {p.describe()} "
                   f"in {format_duration(p.elapsed_seconds)}")
        if p.queue_wait_seconds > 0.0:
            summary += f" (max queue wait {p.queue_wait_seconds:.2f}s)"
        print(f"{prefix}  {summary}", file=self.stream, flush=True)


@dataclass
class SweepResult:
    """Ordered results plus run-wide accounting."""

    results: List[Any]
    elapsed_seconds: float
    jobs: int
    chunk_size: int
    workers: Dict[str, WorkerStats] = field(default_factory=dict)

    @property
    def errors(self) -> List[SweepError]:
        return [r for r in self.results if isinstance(r, SweepError)]

    @property
    def items_per_second(self) -> float:
        if self.elapsed_seconds < MIN_ELAPSED_SECONDS:
            return 0.0
        return len(self.results) / self.elapsed_seconds

    def describe(self) -> str:
        lines = [
            f"sweep: {len(self.results)} item(s) in {self.elapsed_seconds:.2f}s "
            f"({self.items_per_second:.1f}/s, jobs={self.jobs}, "
            f"chunk={self.chunk_size})"
        ]
        for stats in sorted(self.workers.values(), key=lambda w: w.worker_id):
            lines.append(
                f"  {stats.worker_id}: {stats.items} item(s) in "
                f"{stats.chunks} chunk(s), {stats.busy_seconds:.2f}s busy"
            )
        if self.errors:
            lines.append(f"  {len(self.errors)} item(s) FAILED")
        return "\n".join(lines)


def _chunk_indices(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """``[start, stop)`` index ranges covering ``range(total)``."""
    return [(start, min(start + chunk_size, total))
            for start in range(0, total, chunk_size)]


def _chunk_body(worker: Optional[SweepWorker], start: int,
                items: Sequence[Any], record_errors: bool,
                chunk_worker: Optional[ChunkWorker]) -> List[Any]:
    """The chunk's actual work, shared by both telemetry modes."""
    if chunk_worker is not None:
        try:
            out = list(chunk_worker(items))
        except Exception as exc:  # noqa: BLE001 - reported to the caller
            if not record_errors:
                raise
            out = [SweepError(item_index=start + offset,
                              error_type=type(exc).__name__,
                              message=str(exc))
                   for offset in range(len(items))]
        if len(out) != len(items):
            raise ConfigurationError(
                f"chunk worker returned {len(out)} result(s) for "
                f"{len(items)} item(s)")
        return out
    assert worker is not None
    out = []
    for offset, item in enumerate(items):
        if record_errors:
            try:
                out.append(worker(item))
            except Exception as exc:  # noqa: BLE001 - reported to the caller
                out.append(SweepError(item_index=start + offset,
                                      error_type=type(exc).__name__,
                                      message=str(exc)))
        else:
            out.append(worker(item))
    return out


def _run_chunk(worker: Optional[SweepWorker], start: int,
               items: Sequence[Any], record_errors: bool,
               chunk_worker: Optional[ChunkWorker] = None,
               ctx: Optional[Dict[str, Any]] = None,
               ) -> Tuple[str, float, List[Any], Optional[Dict[str, Any]]]:
    """Executed inside a worker process: map ``worker`` over one chunk,
    or hand the whole chunk to ``chunk_worker`` at once.

    ``ctx`` is the parent's telemetry context (present only when the
    parent had campaign telemetry enabled at submit time).  The chunk
    then runs inside a fresh :func:`repro.obs.telemetry.collect` scope —
    fresh so consecutive chunks in the same long-lived worker process
    never double-count — and the scope's metrics and spans come back as
    the 4th element of the return tuple for the parent to absorb.  The
    chunk span's wall-clock start minus the parent's submit stamp is the
    chunk's *queue wait*, shipped alongside.
    """
    worker_id = f"pid{os.getpid()}"
    if ctx is None:
        t0 = time.perf_counter()
        out = _chunk_body(worker, start, items, record_errors, chunk_worker)
        return worker_id, time.perf_counter() - t0, out, None

    tm = _tm()
    with tm.collect() as scope:
        queue_wait = max(
            0.0, (tm.spans.now_us() - ctx["submit_us"]) / 1e6)
        t0 = time.perf_counter()
        with tm.span("sweep/chunk", {"start": start, "items": len(items),
                                     "queue_wait_seconds": round(queue_wait, 6)}):
            out = _chunk_body(worker, start, items, record_errors,
                              chunk_worker)
        busy = time.perf_counter() - t0
        tm.inc("sweep/chunks")
        tm.inc("sweep/items", len(items))
        tm.observe("sweep/chunk_busy_seconds", busy)
    shipment = scope.shipment()
    shipment["queue_wait_seconds"] = queue_wait
    return worker_id, busy, out, shipment


def default_chunk_size(total: int, jobs: int) -> int:
    """Aim for ~4 chunks per worker so stragglers rebalance, while
    keeping chunks non-trivial."""
    if total <= 0:
        return 1
    return max(1, total // max(1, jobs * 4))


def run_sweep(
    worker: Optional[SweepWorker],
    items: Sequence[Any],
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    telemetry: Optional[TelemetryCallback] = None,
    on_error: str = "raise",
    chunk_worker: Optional[ChunkWorker] = None,
) -> SweepResult:
    """Map ``worker`` over ``items``, optionally across processes.

    ``jobs <= 1`` (or a single item) runs serially in-process.
    ``progress`` receives plain ``(done, total)`` ticks; ``telemetry``
    receives full :class:`SweepProgress` samples (EMA rate, ETA,
    per-worker utilization) — both fire in the parent process each time
    a chunk completes.  ``on_error`` is ``"raise"`` (default) or
    ``"record"`` (failing items yield :class:`SweepError` result slots
    instead of aborting the sweep).

    ``chunk_worker``, when given, replaces the per-item ``worker``: each
    chunk is handed to it whole and it returns one result per item in
    order (the batched fuzz harness uses this to run a chunk's
    simulations in one lockstep engine).  With ``on_error="record"`` a
    raise from the chunk worker marks every item of that chunk as a
    :class:`SweepError`; for per-item granularity the chunk worker can
    place :class:`SweepError` values in individual result slots itself.
    """
    if on_error not in ("raise", "record"):
        raise ConfigurationError(
            f"on_error must be 'raise' or 'record', got {on_error!r}")
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if worker is None and chunk_worker is None:
        raise ConfigurationError("either worker or chunk_worker is required")
    items = list(items)
    total = len(items)
    record = on_error == "record"
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    size = chunk_size or default_chunk_size(total, jobs)
    ranges = _chunk_indices(total, size)

    tm = _tm()
    instrumented = tm.enabled()

    t0 = time.perf_counter()
    slots: List[Any] = [None] * total
    workers: Dict[str, WorkerStats] = {}
    done = 0
    effective_jobs = 1 if (jobs == 1 or total <= 1) else jobs
    ema_rate = 0.0
    last_sample = (t0, 0)  # (wall time, items done) at the last sample
    max_queue_wait = 0.0

    def emit_telemetry() -> None:
        nonlocal ema_rate, last_sample
        assert telemetry is not None
        now = time.perf_counter()
        last_t, last_done = last_sample
        dt = now - last_t
        if dt >= MIN_ELAPSED_SECONDS:
            instantaneous = (done - last_done) / dt
            ema_rate = (instantaneous if ema_rate <= 0.0
                        else EMA_ALPHA * instantaneous
                        + (1.0 - EMA_ALPHA) * ema_rate)
            last_sample = (now, done)
        eta = compute_eta(total - done, ema_rate)
        telemetry(SweepProgress(
            done=done, total=total, elapsed_seconds=now - t0,
            items_per_second=ema_rate, eta_seconds=eta,
            jobs=effective_jobs, workers=dict(workers),
            queue_wait_seconds=max_queue_wait))

    def account(worker_id: str, busy: float, start: int, stop: int,
                chunk_results: List[Any],
                shipment: Optional[Dict[str, Any]]) -> None:
        nonlocal done, max_queue_wait
        slots[start:stop] = chunk_results
        stats = workers.setdefault(worker_id, WorkerStats(worker_id=worker_id))
        stats.items += stop - start
        stats.chunks += 1
        stats.busy_seconds += busy
        done += stop - start
        if shipment is not None:
            tm.absorb(shipment)
            queue_wait = float(shipment.get("queue_wait_seconds", 0.0))
            if queue_wait > max_queue_wait:
                max_queue_wait = queue_wait
                tm.set_gauge("sweep/queue_wait_seconds", max_queue_wait)
        if progress is not None:
            progress(done, total)
        if telemetry is not None:
            emit_telemetry()

    if jobs == 1 or total <= 1:
        with tm.span("sweep/run", {"items": total, "jobs": 1}):
            for start, stop in ranges:
                if instrumented:
                    with tm.span("sweep/chunk",
                                 {"start": start, "items": stop - start}):
                        worker_id, busy, chunk_results, _ = _run_chunk(
                            worker, start, items[start:stop], record,
                            chunk_worker)
                    tm.inc("sweep/chunks")
                    tm.inc("sweep/items", stop - start)
                    tm.observe("sweep/chunk_busy_seconds", busy)
                else:
                    worker_id, busy, chunk_results, _ = _run_chunk(
                        worker, start, items[start:stop], record,
                        chunk_worker)
                account("serial", busy, start, stop, chunk_results, None)
        return SweepResult(results=slots,
                           elapsed_seconds=time.perf_counter() - t0,
                           jobs=1, chunk_size=size, workers=workers)

    with tm.span("sweep/run", {"items": total, "jobs": jobs,
                               "chunks": len(ranges)}):
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending = {
                pool.submit(_run_chunk, worker, start, items[start:stop],
                            record, chunk_worker,
                            ({"submit_us": tm.spans.now_us()}
                             if instrumented else None)):
                (start, stop)
                for start, stop in ranges
            }
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    start, stop = pending.pop(future)
                    worker_id, busy, chunk_results, shipment = future.result()
                    account(worker_id, busy, start, stop, chunk_results,
                            shipment)
    return SweepResult(results=slots,
                       elapsed_seconds=time.perf_counter() - t0,
                       jobs=jobs, chunk_size=size, workers=workers)


def sweep_map(worker: SweepWorker, items: Sequence[Any], jobs: int = 1,
              chunk_size: Optional[int] = None) -> List[Any]:
    """:func:`run_sweep` returning just the ordered result list."""
    return run_sweep(worker, items, jobs=jobs, chunk_size=chunk_size).results

"""Discrete event queue used by the memory system.

The processor pipeline is cycle-driven (each component has a ``tick``),
but message deliveries and memory responses are naturally modelled as
*events*: callbacks scheduled for a future cycle.  The queue is a binary
heap keyed on ``(cycle, sequence)`` so that events scheduled for the same
cycle fire in the order they were scheduled — this keeps simulations
fully deterministic.

The queue also maintains a live count of non-cancelled events (so
``len()`` is O(1) — the profiler samples it every cycle) and a pop
horizon: once events due at cycle *c* have been drained, scheduling a
new event before *c* is an error rather than a silently late firing.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from .errors import ConfigurationError

EventCallback = Callable[[], Any]


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`EventQueue.schedule` and may be
    cancelled; a cancelled event is skipped when its cycle arrives.
    """

    __slots__ = ("cycle", "seq", "callback", "cancelled", "label", "_queue")

    def __init__(self, cycle: int, seq: int, callback: EventCallback, label: str,
                 queue: Optional["EventQueue"] = None) -> None:
        self.cycle = cycle
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event {self.label or self.callback!r} @cycle {self.cycle} ({state})>"


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0           # non-cancelled events still in the heap
        self._popped_through = -1  # latest cycle handed to pop_due

    def __len__(self) -> int:
        return self._live

    def schedule(self, cycle: int, callback: EventCallback, label: str = "") -> Event:
        """Schedule ``callback`` to run at ``cycle``.

        ``cycle`` must not be in the past: once :meth:`pop_due` has
        drained events due at some cycle, scheduling before that cycle
        raises (a past event would otherwise fire silently late).
        """
        if cycle < 0:
            raise ConfigurationError(f"cannot schedule event at negative cycle {cycle}")
        if cycle < self._popped_through:
            raise ConfigurationError(
                f"cannot schedule event at cycle {cycle}: events due at or "
                f"before cycle {self._popped_through} have already fired")
        ev = Event(cycle, next(self._counter), callback, label, queue=self)
        heapq.heappush(self._heap, (cycle, ev.seq, ev))
        self._live += 1
        return ev

    def next_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending event, or ``None`` if empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop_due(self, cycle: int) -> List[Event]:
        """Remove and return all non-cancelled events due at or before ``cycle``."""
        if cycle > self._popped_through:
            self._popped_through = cycle
        due: List[Event] = []
        while self._heap and self._heap[0][0] <= cycle:
            _, _, ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                self._live -= 1
                due.append(ev)
        return due

    def run_due(self, cycle: int) -> int:
        """Fire every event due at or before ``cycle``; return count fired.

        Events scheduled *during* the sweep for the same cycle also fire,
        so a message that triggers an immediate (zero-latency) response
        within the same cycle is handled before the pipeline ticks.
        """
        fired = 0
        while True:
            due = self.pop_due(cycle)
            if not due:
                return fired
            for ev in due:
                ev.callback()
                fired += 1

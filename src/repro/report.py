"""Regenerate the full experiment report (``python -m repro.report``).

Runs every experiment (E1–E10 plus the ablations) and prints the
tables.  With ``--output FILE`` the report is also written to disk —
this is how EXPERIMENTS.md's measured numbers are produced.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List, Optional, Tuple

from .analysis import (
    barrier_scaling_table,
    cpu_scaling_table,
    detailed_equalization_table,
    false_sharing_table,
    equalization_table,
    example_cycle_table,
    figure5_report,
    hw_vs_sw_prefetch_table,
    latency_sweep_table,
    litmus_outcome_table,
    lookahead_window_table,
    prefetch_bandwidth_table,
    protocol_table,
    related_work_table,
    rmw_handoff_table,
    rob_size_table,
    rollback_cost_table,
    slb_size_table,
    stall_breakdown_table,
    traffic_table,
)


def _figure5_table():
    _, table = figure5_report()
    return table


class _RawText:
    """Adapter so plain text can sit in a SECTIONS slot."""

    def __init__(self, text: str) -> None:
        self._text = text

    def render(self) -> str:
        return self._text


def _arc_matrices() -> _RawText:
    from .analysis import delay_arc_matrix
    from .consistency import ALL_MODELS

    return _RawText("\n\n".join(delay_arc_matrix(m).render()
                                for m in ALL_MODELS))


SECTIONS: List[Tuple[str, Callable[[], object]]] = [
    ("E1  Figure 1 / delay arcs", _arc_matrices),
    ("E1  Figure 1 / litmus outcomes", litmus_outcome_table),
    ("E2  Example 1 (analytical)", lambda: example_cycle_table("example1")),
    ("E2  Example 1 (detailed)", lambda: example_cycle_table("example1", detailed=True)),
    ("E3  Example 2 (analytical)", lambda: example_cycle_table("example2")),
    ("E3  Example 2 (detailed)", lambda: example_cycle_table("example2", detailed=True)),
    ("E4  Figure 5 rollback trace", _figure5_table),
    ("E5  Equalization (analytical)", equalization_table),
    ("E5  Equalization (detailed)", detailed_equalization_table),
    ("E6  Miss-latency sweep", latency_sweep_table),
    ("E7  Rollback cost", rollback_cost_table),
    ("E8  Related work", related_work_table),
    ("E9  RMW hand-off", rmw_handoff_table),
    ("E10 Prefetch traffic", traffic_table),
    ("E11 Stall breakdown (example1)",
     lambda: stall_breakdown_table("example1")),
    ("E11 Stall breakdown (example2)",
     lambda: stall_breakdown_table("example2")),
    ("A1  Lookahead window", lookahead_window_table),
    ("A2  HW vs SW prefetch", hw_vs_sw_prefetch_table),
    ("A3  SLB size", slb_size_table),
    ("A4  ROB size", rob_size_table),
    ("A5  Prefetch bandwidth", prefetch_bandwidth_table),
    ("A6  Update vs invalidate protocol", protocol_table),
    ("A7  False sharing vs speculation", false_sharing_table),
    ("S1  CPU-count scaling", cpu_scaling_table),
    ("S2  Barrier scaling", barrier_scaling_table),
]


def generate(selected: List[str], verbose: bool = True) -> str:
    chunks: List[str] = []
    for name, builder in SECTIONS:
        if selected and not any(s.lower() in name.lower() for s in selected):
            continue
        start = time.time()
        table = builder()
        elapsed = time.time() - start
        chunks.append(table.render())
        if verbose:
            print(f"[{elapsed:6.2f}s] {name}", file=sys.stderr)
    return "\n\n".join(chunks)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Regenerate the reproduction's experiment tables.",
    )
    parser.add_argument("sections", nargs="*",
                        help="substring filters (e.g. 'E5' 'figure 5'); "
                             "default: everything")
    parser.add_argument("--output", "-o", help="also write the report here")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress per-section progress on stderr")
    args = parser.parse_args(argv)

    report = generate(args.sections, verbose=not args.quiet)
    print(report)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

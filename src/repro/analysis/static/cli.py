"""Command-line front end for the static analyzer.

Examples::

    # analyze one program per CPU under one model
    python -m repro.analysis.static examples/asm/dekker.s \
        examples/asm/dekker_mirror.s --model PC

    # all four models, with the fence fix applied and re-checked
    python -m repro.analysis.static examples/asm/dekker.s \
        examples/asm/dekker_mirror.s --all-models --fix

    # CI self-check over the bundled examples
    python -m repro.analysis.static --selfcheck examples/asm
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional

from ...consistency.models import ALL_MODELS, get_model
from ...isa.assembler import assemble
from ...isa.program import Program
from .diagnostics import summarize_reports
from .racecheck import analyze_programs, apply_fence_suggestions


def _load_programs(paths: List[str]) -> List[Program]:
    programs = []
    for path in paths:
        with open(path) as fh:
            programs.append(assemble(fh.read()))
    return programs


def _analyze_and_print(programs: List[Program], model_names: List[str],
                       fix: bool, line_size: int) -> int:
    reports = []
    for name in model_names:
        model = get_model(name)
        report = analyze_programs(programs, model, line_size=line_size)
        reports.append(report)
        print(report.render())
        if fix and report.fence_suggestions():
            patched = apply_fence_suggestions(programs,
                                              report.fence_suggestions(),
                                              line_size=line_size)
            fixed = analyze_programs(patched, model, line_size=line_size)
            verdict = ("restores SC" if fixed.sc_guaranteed
                       else "does NOT restore SC")
            print(f"  after applying {len(report.fence_suggestions())} "
                  f"fence(s): {verdict}")
        print()
    print(summarize_reports(reports))
    return 1 if any(r.races() for r in reports) else 0


def selfcheck(examples_dir: str, line_size: int = 4) -> int:
    """Verify the analyzer's classification of the bundled examples.

    Checks the acceptance triangle: Dekker and Example 1 are racy under
    every relaxed model with fence fixes that restore SC; the
    producer/consumer pair with real synchronization is race-free.
    Returns a process exit code.
    """
    relaxed = [m for m in ALL_MODELS if m.name != "SC"]
    failures: List[str] = []

    def check(cond: bool, what: str) -> None:
        status = "ok  " if cond else "FAIL"
        print(f"[{status}] {what}")
        if not cond:
            failures.append(what)

    def path(*names: str) -> List[str]:
        return [os.path.join(examples_dir, n) for n in names]

    dekker = _load_programs(path("dekker.s", "dekker_mirror.s"))
    example1 = _load_programs(path("example1.s", "example1.s"))
    prodcons = _load_programs(path("producer.s", "consumer.s"))

    sc_report = analyze_programs(dekker, get_model("SC"), line_size=line_size)
    check(sc_report.sc_guaranteed and not sc_report.races(),
          "dekker under SC: no race findings, SC guaranteed")

    for model in relaxed:
        r = analyze_programs(dekker, model, line_size=line_size)
        check(bool(r.races()) and not r.sc_guaranteed,
              f"dekker under {model.name}: flagged racy, SC not guaranteed")
        patched = apply_fence_suggestions(dekker, r.fence_suggestions(),
                                          line_size=line_size)
        check(analyze_programs(patched, model, line_size=line_size).sc_guaranteed,
              f"dekker under {model.name}: suggested fences restore SC")

        r1 = analyze_programs(example1, model, line_size=line_size)
        check(bool(r1.races()),
              f"example1 under {model.name}: flagged racy (optimistic lock)")
        if model.name != "PC":
            # PC keeps W->W in program order, so example1 stays SC even
            # though the race is real; WC/RC overlap the writes.
            check(not r1.sc_guaranteed,
                  f"example1 under {model.name}: SC not guaranteed")
        check(bool(r1.by_kind("ineffective-sync")),
              f"example1 under {model.name}: ineffective lock acquire warned")
        p1 = apply_fence_suggestions(example1, r1.fence_suggestions(),
                                     line_size=line_size)
        check(analyze_programs(p1, model, line_size=line_size).sc_guaranteed,
              f"example1 under {model.name}: suggested fences restore SC")

        rp = analyze_programs(prodcons, model, line_size=line_size)
        check(not rp.races(),
              f"producer/consumer under {model.name}: race-free")

    if failures:
        print(f"\nself-check FAILED ({len(failures)} of the checks above)")
        return 1
    print("\nself-check passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.static",
        description="Static race & ordering analysis of assembly programs.",
    )
    parser.add_argument("programs", nargs="*",
                        help="assembly files, one per processor")
    parser.add_argument("--model", action="append", default=[],
                        metavar="NAME",
                        help="consistency model to analyze under "
                             "(repeatable; default PC WC RC)")
    parser.add_argument("--all-models", action="store_true",
                        help="analyze under SC, PC, WC, and RC")
    parser.add_argument("--fix", action="store_true",
                        help="apply the suggested fences and re-analyze")
    parser.add_argument("--line-size", type=int, default=4,
                        help="cache line size in words (conflict granularity)")
    parser.add_argument("--selfcheck", metavar="EXAMPLES_DIR",
                        help="verify the expected classification of the "
                             "bundled examples/asm programs and exit")
    args = parser.parse_args(argv)

    if args.selfcheck:
        return selfcheck(args.selfcheck, line_size=args.line_size)
    if not args.programs:
        parser.error("give at least one assembly file (or --selfcheck DIR)")
    models = (["SC", "PC", "WC", "RC"] if args.all_models
              else (args.model or ["PC", "WC", "RC"]))
    programs = _load_programs(args.programs)
    return _analyze_and_print(programs, models, args.fix, args.line_size)

"""Cross-validation: static race prediction vs dynamic SC detection.

The DRF theorem cuts both ways.  Statically, :mod:`racecheck` predicts
which conflicting accesses can be observed out of SC order under a
model; dynamically, :class:`~repro.core.sc_detection.ScViolationDetector`
flags the accesses that *were* hit by a coherence event outside their SC
window during a detailed-machine run.  The dynamic detector has no
false negatives (under write atomicity) but plenty of conservatism, so
the two must agree in one direction:

    every (cpu, line) the dynamic detector flags must be one the
    static analyzer marked racy, fence-fixable, or competing-sync.

A dynamic flag on a line the analyzer called race-free would mean one
of the two is wrong — that is the property :func:`cross_validate`
checks over a litmus suite, one detailed run per (test, model, skew).

Dynamic runs use the *conventional* relaxed hardware (no speculative
loads, no prefetch): accesses then perform early only where the model
itself allows, which is exactly the situation Section 6's detection
mechanism is specified for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ...consistency.litmus import LitmusTest
from ...consistency.models import ALL_MODELS, ConsistencyModel
from .diagnostics import AnalysisReport
from .racecheck import analyze_programs

#: start-time skews explored per (test, model)
DEFAULT_DELAYS: Tuple[Tuple[int, ...], ...] = ((0, 0), (0, 40), (40, 0), (15, 3))


@dataclass
class CrossCase:
    """One (litmus test, model) comparison."""

    test: str
    model: str
    static_report: AnalysisReport
    #: lines the static analyzer says the dynamic detector may flag
    static_lines: Set[Tuple[int, int]] = field(default_factory=set)
    #: True when some static site has an unresolvable address (then any
    #: dynamic flag is conservatively covered)
    static_wildcard: bool = False
    #: (cpu, line) pairs the dynamic detector actually flagged
    dynamic_lines: Set[Tuple[int, int]] = field(default_factory=set)
    #: human-readable detail of each dynamic flag
    dynamic_detail: List[str] = field(default_factory=list)
    #: third leg: does the axiomatic checker's outcome set equal the
    #: interleaving enumerator's on this (test, model)?
    axiomatic_agree: bool = True
    #: sizes of the two static outcome sets, for the report line
    axiomatic_outcomes: int = 0
    enumerated_outcomes: int = 0

    @property
    def uncovered(self) -> Set[Tuple[int, int]]:
        if self.static_wildcard:
            return set()
        return self.dynamic_lines - self.static_lines

    @property
    def agrees(self) -> bool:
        return not self.uncovered and self.axiomatic_agree

    def describe(self) -> str:
        mark = "ok " if self.agrees else "FAIL"
        return (f"[{mark}] {self.test:>20} under {self.model:>5}: "
                f"static predicts {len(self.static_lines)} flaggable "
                f"line(s), dynamic flagged {len(self.dynamic_lines)}, "
                f"axiomatic {self.axiomatic_outcomes}/"
                f"{self.enumerated_outcomes} outcome(s)"
                + ("" if not self.uncovered
                   else f", UNCOVERED: {sorted(self.uncovered)}")
                + ("" if self.axiomatic_agree
                   else ", AXIOMATIC-ENUMERATOR MISMATCH"))


@dataclass
class CrossReport:
    cases: List[CrossCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.agrees for c in self.cases)

    def failures(self) -> List[CrossCase]:
        return [c for c in self.cases if not c.agrees]

    def render(self) -> str:
        lines = ["static vs dynamic vs axiomatic agreement "
                 "(static-flaggable must cover dynamically-flagged; "
                 "axiomatic and enumerated outcome sets must be equal):"]
        lines += ["  " + c.describe() for c in self.cases]
        verdict = ("agreement holds on every case" if self.ok
                   else f"{len(self.failures())} case(s) DISAGREE")
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _dynamic_flags(test: LitmusTest, model: ConsistencyModel,
                   delays: Sequence[Tuple[int, ...]],
                   line_size: int) -> Tuple[Set[Tuple[int, int]], List[str]]:
    """Run the detailed machine with the SC-violation monitor on and
    collect every flagged (cpu, line)."""
    from ...cpu.config import ProcessorConfig
    from ...system.machine import run_workload

    flagged: Set[Tuple[int, int]] = set()
    detail: List[str] = []
    init = {a: 0 for a in test.addresses().values()}
    # Warm every litmus variable SHARED in every cache: loads then hit
    # (perform early) while stores still spend the miss latency gaining
    # ownership, which is the window Section 6's monitor watches.
    warm = [(cpu, addr, False)
            for cpu in range(len(test.threads))
            for addr in test.addresses().values()]
    for skew in delays:
        programs, _ = test.to_programs(delays=skew)
        result = run_workload(
            programs, model=model, prefetch=False, speculation=False,
            miss_latency=40, initial_memory=init, warm_lines=warm,
            processor=ProcessorConfig(enable_sc_detection=True),
            max_cycles=1_000_000)
        for cpu, proc in enumerate(result.machine.processors):
            det = proc.lsu.sc_detector
            if det is None:
                continue
            for v in det.violations:
                flagged.add((cpu, v.addr // line_size))
                detail.append(f"cpu{cpu} skew={skew}: {v.describe()}")
    return flagged, detail


def cross_validate(
    tests: Sequence[LitmusTest],
    models: Optional[Sequence[ConsistencyModel]] = None,
    delays: Sequence[Tuple[int, ...]] = DEFAULT_DELAYS,
    line_size: int = 4,
) -> CrossReport:
    """Compare static prediction and dynamic detection over a suite."""
    from ..axiomatic import compare_with_enumerator

    report = CrossReport()
    for test in tests:
        programs, _ = test.to_programs()
        for model in (models if models is not None else ALL_MODELS):
            static = analyze_programs(programs, model, line_size=line_size)
            case = CrossCase(test=test.name, model=model.name,
                             static_report=static)
            for cpu, addr in static.flaggable_sites():
                if addr is None:
                    case.static_wildcard = True
                else:
                    case.static_lines.add((cpu, addr // line_size))
            case.dynamic_lines, case.dynamic_detail = _dynamic_flags(
                test, model, delays, line_size)
            comparison = compare_with_enumerator(test, model)
            case.axiomatic_agree = comparison.agree
            case.axiomatic_outcomes = len(comparison.axiomatic)
            case.enumerated_outcomes = len(comparison.enumerated)
            report.cases.append(case)
    return report

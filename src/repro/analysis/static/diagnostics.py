"""Structured diagnostics for the static analyzer.

Every finding is a :class:`Diagnostic` — machine-readable (kind,
severity, sites, suggestion) so tests, the CLI, and CI can all consume
the same records; :class:`AnalysisReport` aggregates them together with
the analyzer's conclusions about the program as a whole.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Site:
    """A program location a diagnostic points at."""

    cpu: int
    pc: int
    tag: str
    addr: Optional[int] = None

    def describe(self) -> str:
        where = f"cpu{self.cpu}:pc{self.pc}"
        what = self.tag or (hex(self.addr) if self.addr is not None else "?")
        return f"{where} ({what})"


@dataclass(frozen=True)
class FenceSuggestion:
    """Insert a full fence (``rmw`` acquire+release) between two
    program points to restore the program-order edge the model drops."""

    cpu: int
    after_pc: int
    before_pc: int
    after_tag: str = ""
    before_tag: str = ""
    #: alternative fix when labeling suffices (e.g. "st.rel" / "ld.acq")
    label_hint: str = ""

    def describe(self) -> str:
        text = (f"cpu{self.cpu}: insert fence between pc{self.after_pc} "
                f"({self.after_tag}) and pc{self.before_pc} ({self.before_tag})")
        if self.label_hint:
            text += f" — or {self.label_hint}"
        return text


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a race, a missing fence, or a suspicious idiom."""

    kind: str                    # "data-race" | "fence-fixable" | "ineffective-sync" | ...
    severity: Severity
    message: str
    sites: Tuple[Site, ...] = ()
    suggestion: str = ""
    fences: Tuple[FenceSuggestion, ...] = ()
    model: str = ""

    def describe(self) -> str:
        head = f"[{self.severity.value}] {self.kind}: {self.message}"
        lines = [head]
        for s in self.sites:
            lines.append(f"    at {s.describe()}")
        if self.suggestion:
            lines.append(f"    fix: {self.suggestion}")
        for f in self.fences:
            lines.append(f"    fix: {f.describe()}")
        return "\n".join(lines)


@dataclass
class AnalysisReport:
    """Everything the race/ordering analyzer concluded about one
    multiprocessor program under one consistency model."""

    model: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: per-CPU: does the model (transitively) enforce full program order
    #: between that thread's shared accesses?
    po_fully_enforced: List[bool] = field(default_factory=list)
    #: is every execution guaranteed sequentially consistent?  True when
    #: the model is itself SC, when every conflicting pair is ordered by
    #: synchronization, or when the residual races only involve threads
    #: whose program order the model fully enforces (order route).
    sc_guaranteed: bool = True
    notes: List[str] = field(default_factory=list)
    #: the declarative checker's independent view (set when the program
    #: bridges to a litmus test; the refusal reason otherwise)
    axiomatic_verdict: str = ""
    #: True/False when the axiomatic checker could compare the model's
    #: admitted final states against SC's; None when unavailable
    axiomatic_sc_equivalent: Optional[bool] = None

    # ------------------------------------------------------------------
    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def by_kind(self, *kinds: str) -> List[Diagnostic]:
        wanted = set(kinds)
        return [d for d in self.diagnostics if d.kind in wanted]

    def races(self) -> List[Diagnostic]:
        """The SC-threatening findings (racy or fence-fixable pairs)."""
        return self.by_kind("data-race", "fence-fixable")

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors()

    def racy_sites(self) -> Set[Tuple[int, Optional[int]]]:
        """``(cpu, addr)`` for every access involved in a race finding
        (used by the cross-validation hook)."""
        out: Set[Tuple[int, Optional[int]]] = set()
        for d in self.races():
            for s in d.sites:
                out.add((s.cpu, s.addr))
        return out

    def flaggable_sites(self) -> Set[Tuple[int, Optional[int]]]:
        """``(cpu, addr)`` for every access the conservative dynamic
        detector could legitimately flag: race findings plus competing
        synchronization (which is allowed to race, yet still perturbs
        the detector's SC windows)."""
        out = self.racy_sites()
        for d in self.by_kind("competing-sync"):
            for s in d.sites:
                out.add((s.cpu, s.addr))
        return out

    def fence_suggestions(self) -> List[FenceSuggestion]:
        seen: Set[FenceSuggestion] = set()
        ordered: List[FenceSuggestion] = []
        for d in self.diagnostics:
            for f in d.fences:
                if f not in seen:
                    seen.add(f)
                    ordered.append(f)
        return ordered

    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = [f"static analysis under {self.model}:"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        if not self.diagnostics:
            lines.append("  no findings")
        for d in self.diagnostics:
            lines.extend("  " + ln for ln in d.describe().splitlines())
        verdict = ("every execution is sequentially consistent"
                   if self.sc_guaranteed
                   else "executions may violate sequential consistency")
        lines.append(f"  verdict: {verdict}")
        if self.axiomatic_verdict:
            lines.append(f"  axiomatic: {self.axiomatic_verdict}")
        return "\n".join(lines)


def summarize_reports(reports: Sequence[AnalysisReport]) -> str:
    """One-line-per-model digest for CLI output."""
    lines = []
    for r in reports:
        races = len(r.races())
        warns = len(r.warnings())
        sc = "SC-safe" if r.sc_guaranteed else "NOT SC-safe"
        lines.append(f"{r.model:>5}: {races} race finding(s), "
                     f"{warns} warning(s) — {sc}")
    return "\n".join(lines)

"""Static model of one processor's program: its shared accesses.

The analyzer never executes a program; it recovers, by a single linear
pass with constant propagation, the sequence of shared-memory accesses
each processor will perform:

* **addresses** — resolved when the base register holds a
  statically-known constant (``movi``/ALU chains over constants, or the
  hardwired ``r0``); an access whose base is loop-carried or
  memory-derived gets ``addr=None`` and is treated conservatively as
  conflicting with every location;
* **value use** — whether a load/RMW result is ever read again, and in
  particular whether it reaches a conditional branch (``guards_branch``).
  A synchronization read whose value is never examined cannot order
  anything: an "optimistic" lock (the paper's single-access lock macro)
  acquires without checking and therefore establishes no mutual
  exclusion, which is exactly what makes Example 1 racy;
* **locksets** — the set of lock addresses protecting each access: a
  *guarded* acquire RMW to ``L`` opens a critical section that the next
  release store to ``L`` closes.

Control flow is deliberately approximated: instructions are scanned in
program order, branches are not followed.  For the litmus-style
programs this analyzer targets (straight-line bodies plus spin loops)
the approximation is exact; anything cleverer should fall back to the
dynamic detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from ...consistency.access_class import AccessClass, classify
from ...isa.instructions import (
    Alu,
    Branch,
    Instruction,
    Load,
    Rmw,
    Store,
    destination_register,
    source_registers,
)
from ...isa.program import Program


@dataclass
class StaticAccess:
    """One shared-memory access, as the analyzer sees it."""

    cpu: int
    order: int                    # index among this CPU's shared accesses
    pc: int
    instr: Instruction
    klass: AccessClass
    addr: Optional[int]
    line: Optional[int]
    tag: str
    value_used: bool = False      # load/RMW result read by anything later
    guards_branch: bool = False   # load/RMW result reaches a branch condition
    locks: FrozenSet[int] = frozenset()
    #: the value a store/RMW writes, when constant propagation resolves
    #: it (``ts`` always writes 1; ``add`` depends on the old memory
    #: value, so it is never static)
    store_value: Optional[int] = None

    @property
    def is_store(self) -> bool:
        return self.klass.is_store

    @property
    def is_load(self) -> bool:
        return self.klass.is_load

    def site_tag(self) -> str:
        return self.tag or self.instr.describe()

    def may_alias(self, other: "StaticAccess") -> bool:
        """Line-granular aliasing; unknown addresses alias everything
        (the same conservatism the hardware detector's line-granularity
        gives the dynamic half)."""
        if self.line is None or other.line is None:
            return True
        return self.line == other.line


@dataclass
class ThreadModel:
    """The extracted access sequence for one processor."""

    cpu: int
    accesses: List[StaticAccess] = field(default_factory=list)

    @classmethod
    def from_program(cls, program: Program, cpu: int, line_size: int = 4) -> "ThreadModel":
        extractor = _Extractor(program, cpu, line_size)
        return cls(cpu=cpu, accesses=extractor.run())

    # ------------------------------------------------------------------
    def stores_to(self, addr: int) -> List[StaticAccess]:
        return [a for a in self.accesses if a.is_store and a.addr == addr]

    def describe(self) -> str:
        lines = [f"cpu{self.cpu}:"]
        for a in self.accesses:
            addr = hex(a.addr) if a.addr is not None else "?"
            flags = []
            if a.klass.acquire:
                flags.append("acq")
            if a.klass.release:
                flags.append("rel")
            if a.guards_branch:
                flags.append("guard")
            if a.locks:
                flags.append("locks=" + ",".join(hex(l) for l in sorted(a.locks)))
            lines.append(f"  [{a.order}] pc{a.pc} {a.site_tag()} @ {addr} "
                         f"{' '.join(flags)}".rstrip())
        return "\n".join(lines)


class _Extractor:
    def __init__(self, program: Program, cpu: int, line_size: int) -> None:
        self.program = program
        self.cpu = cpu
        self.line_size = line_size

    # -- constant propagation ------------------------------------------
    def _eval_alu(self, instr: Alu, env: Dict[str, Optional[int]]) -> Optional[int]:
        a = 0 if instr.src1 == "r0" else env.get(instr.src1, None)
        if instr.imm is not None:
            b: Optional[int] = instr.imm
        elif instr.src2 is not None:
            b = 0 if instr.src2 == "r0" else env.get(instr.src2, None)
        else:
            b = None
        if instr.op == "mov":
            return b
        if a is None or b is None:
            return None
        return instr.compute(a, b)

    # -- value-use / guard analysis ------------------------------------
    def _use_pass(self, pc: int, dst: Optional[str]) -> "tuple[bool, bool]":
        """Does the value produced at ``pc`` flow anywhere (and to a
        branch condition)?  Linear taint scan from ``pc + 1``."""
        if dst is None or dst == "r0":
            return False, False
        taint = {dst}
        used = guards = False
        for instr in self.program.instructions[pc + 1:]:
            srcs = set(source_registers(instr)) - {"r0"}
            reads_taint = bool(srcs & taint)
            if reads_taint:
                used = True
                if isinstance(instr, Branch):
                    guards = True
            wdst = destination_register(instr)
            if isinstance(instr, Alu) and reads_taint and wdst and wdst != "r0":
                taint.add(wdst)       # taint flows through computation
            elif wdst in taint and not reads_taint:
                taint.discard(wdst)   # overwritten before further use
            if not taint:
                break
        return used, guards

    # -- main -----------------------------------------------------------
    def run(self) -> List[StaticAccess]:
        env: Dict[str, Optional[int]] = {}
        accesses: List[StaticAccess] = []
        open_locks: Dict[int, bool] = {}
        for pc, instr in enumerate(self.program):
            if isinstance(instr, Alu):
                env[instr.dst] = self._eval_alu(instr, env)
                continue
            if not isinstance(instr, (Load, Store, Rmw)):
                continue
            base = 0 if instr.base == "r0" else env.get(instr.base, None)
            addr = None if base is None else base + instr.offset
            line = None if addr is None else addr // self.line_size
            klass = classify(instr)
            store_value: Optional[int] = None
            if isinstance(instr, Store):
                store_value = 0 if instr.src == "r0" else env.get(instr.src)
            elif isinstance(instr, Rmw):
                if instr.op == "ts":
                    store_value = 1
                elif instr.op == "swap":
                    store_value = (0 if instr.src == "r0"
                                   else env.get(instr.src))
            used, guards = self._use_pass(pc, destination_register(instr))
            if destination_register(instr) is not None and destination_register(instr) != "r0":
                env[destination_register(instr)] = None

            # lock regions: a guarded acquire RMW opens, a release store
            # to the same address closes
            locks_here = frozenset(open_locks)
            if isinstance(instr, Rmw) and instr.acquire and guards and addr is not None:
                open_locks[addr] = True
            if isinstance(instr, Store) and instr.release and addr is not None:
                open_locks.pop(addr, None)

            accesses.append(StaticAccess(
                cpu=self.cpu,
                order=len(accesses),
                pc=pc,
                instr=instr,
                klass=klass,
                addr=addr,
                line=line,
                tag=instr.tag or "",
                value_used=used,
                guards_branch=guards,
                locks=locks_here,
                store_value=store_value,
            ))
        return accesses

"""Bridge ISA programs to litmus tests for the axiomatic oracle.

The axiomatic checker (:mod:`repro.analysis.axiomatic`) speaks litmus:
symbolic locations, explicit R/W/U/F ops.  The static race analyzer
speaks ISA :class:`~repro.isa.program.Program` objects.  This module
converts the latter into the former — *exactly* or not at all — so
``analyze_programs`` and ``python -m repro.run --analyze`` can print
the declarative verdict (which final states the model's axioms admit,
and whether they all coincide with SC) next to the race classification.

The conversion is deliberately strict.  A litmus test is a straight
line of statically-resolved accesses, so the bridge refuses programs
with branches or jumps (a spin loop has no finite access sequence),
unresolvable addresses, stores whose value constant propagation cannot
pin down, fetch-and-add RMWs (their written value depends on the old
memory value), or more than the enumerators' 12-access envelope.  A
refusal is reported, never papered over: an approximate conversion
would turn the oracle's verdict into a guess.

One idiom is recognized structurally: an acquire+release RMW on a
location no other access touches is the compiled form of a full fence
(:meth:`LitmusTest.to_programs`), and maps back to ``F``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ...consistency.litmus import LitmusOp, LitmusTest
from ...consistency.models import SC, ConsistencyModel
from ...isa.instructions import Branch, Jump, Load, Rmw, Store
from ...isa.program import Program
from ...sim.errors import ConfigurationError
from .program_model import StaticAccess, ThreadModel

#: symbolic names for the well-known litmus addresses; anything else
#: gets a synthesized ``m<hex>`` name
_ADDR_NAMES: Dict[int, str] = {v: k for k, v in LitmusTest.ADDR_MAP.items()}

#: the litmus enumerators' access-count envelope
MAX_BRIDGED_ACCESSES = 12


@dataclass(frozen=True)
class BridgeResult:
    """Outcome of a program-to-litmus conversion attempt."""

    test: Optional[LitmusTest]
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.test is not None


def _addr_name(addr: int) -> str:
    return _ADDR_NAMES.get(addr, f"m{addr:x}")


def _is_private(a: StaticAccess, threads: Sequence[ThreadModel]) -> bool:
    """Is ``a`` the only access to its address in the whole program?"""
    return sum(1 for t in threads for b in t.accesses
               if b.addr == a.addr) == 1


def litmus_from_programs(programs: Sequence[Program],
                         name: str = "bridged",
                         line_size: int = 4) -> BridgeResult:
    """Convert one program per processor into a litmus test, exactly.

    Returns a :class:`BridgeResult`; ``result.reason`` explains a
    refusal in terms the analyzer's report can quote.
    """
    for cpu, program in enumerate(programs):
        for pc, instr in enumerate(program):
            if isinstance(instr, (Branch, Jump)):
                return BridgeResult(None, reason=(
                    f"cpu{cpu} pc{pc} has control flow "
                    f"({type(instr).__name__.lower()}); only straight-line "
                    f"programs convert exactly"))
    threads = [ThreadModel.from_program(p, cpu, line_size)
               for cpu, p in enumerate(programs)]
    total = sum(len(t.accesses) for t in threads)
    if total > MAX_BRIDGED_ACCESSES:
        return BridgeResult(None, reason=(
            f"{total} shared accesses exceed the {MAX_BRIDGED_ACCESSES}-"
            f"access enumeration envelope"))

    litmus_threads: List[List[LitmusOp]] = []
    for t in threads:
        ops: List[LitmusOp] = []
        for a in t.accesses:
            if a.addr is None:
                return BridgeResult(None, reason=(
                    f"cpu{t.cpu} pc{a.pc} ({a.site_tag()}): address is "
                    f"not statically resolvable"))
            loc = _addr_name(a.addr)
            reg = f"t{t.cpu}r{a.order}"
            if isinstance(a.instr, Rmw):
                if (a.klass.acquire and a.klass.release
                        and _is_private(a, threads)):
                    ops.append(LitmusOp(op="F"))
                    continue
                if a.store_value is None:
                    return BridgeResult(None, reason=(
                        f"cpu{t.cpu} pc{a.pc} ({a.site_tag()}): RMW "
                        f"written value is not statically known "
                        f"({a.instr.op!r})"))
                ops.append(LitmusOp(op="U", addr=loc, value=a.store_value,
                                    reg=reg, acquire=a.klass.acquire,
                                    release=a.klass.release))
            elif isinstance(a.instr, Store):
                if a.store_value is None:
                    return BridgeResult(None, reason=(
                        f"cpu{t.cpu} pc{a.pc} ({a.site_tag()}): stored "
                        f"value is not statically known"))
                ops.append(LitmusOp(op="W", addr=loc, value=a.store_value,
                                    release=a.klass.release))
            elif isinstance(a.instr, Load):
                ops.append(LitmusOp(op="R", addr=loc, reg=reg,
                                    acquire=a.klass.acquire))
        litmus_threads.append(ops)
    try:
        test = LitmusTest(name=name, threads=litmus_threads)
    except ConfigurationError as exc:  # pragma: no cover - defensive
        return BridgeResult(None, reason=str(exc))
    return BridgeResult(test)


@dataclass(frozen=True)
class AxiomaticVerdict:
    """The declarative checker's view of one multiprocessor program."""

    model: str
    available: bool
    reason: str = ""
    #: outcome counts under the model and under SC (when available)
    num_outcomes: int = 0
    num_sc_outcomes: int = 0
    sc_equivalent: Optional[bool] = None

    def describe(self) -> str:
        if not self.available:
            return f"axiomatic verdict unavailable ({self.reason})"
        tail = ("every admitted execution is sequentially consistent"
                if self.sc_equivalent
                else "the axioms admit outcomes SC forbids")
        return (f"axioms admit {self.num_outcomes} final state(s) under "
                f"{self.model} vs {self.num_sc_outcomes} under SC — {tail}")


def axiomatic_verdict(programs: Sequence[Program],
                      model: ConsistencyModel,
                      line_size: int = 4) -> AxiomaticVerdict:
    """Bridge the programs and ask the axiomatic checker for a verdict.

    Never raises on unconvertible programs — the refusal reason lands
    in the verdict, so reports can always quote something definite.
    """
    bridged = litmus_from_programs(programs, line_size=line_size)
    if bridged.test is None:
        return AxiomaticVerdict(model=model.name, available=False,
                                reason=bridged.reason)
    from ..axiomatic import axiomatic_outcomes

    outcomes = axiomatic_outcomes(bridged.test, model)
    sc_outcomes = axiomatic_outcomes(bridged.test, SC)
    return AxiomaticVerdict(
        model=model.name,
        available=True,
        num_outcomes=len(outcomes),
        num_sc_outcomes=len(sc_outcomes),
        sc_equivalent=outcomes == sc_outcomes,
    )

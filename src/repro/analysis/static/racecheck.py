"""The static race & ordering analyzer.

Given one :class:`~repro.isa.program.Program` per processor and a
consistency model, the analyzer:

1. extracts each thread's shared accesses (:mod:`program_model`);
2. builds the *statically enforced happens-before*: program-order edges
   the model's delay arcs (transitively) enforce, plus
   synchronizes-with edges — a store on one processor to the address a
   *guarded* load on another processor spins on or tests;
3. finds every conflicting pair — same line (or unresolvable address),
   different processors, at least one store — and classifies it:

   * **ordered-by-sync** — a happens-before chain (or a common lock's
     mutual exclusion) orders the pair under this model: race-free, per
     the DRF theorem the execution stays sequentially consistent;
   * **fence-fixable** — the synchronization structure exists at the
     program-order level but the model drops a local link of the chain
     (e.g. an unlabeled message-passing flag under WC/RC): the
     suggested fence/labels restore race-freedom;
   * **racy** — no synchronization orders the pair at all.  The
     suggested fences restore program order around the racy accesses,
     which (under the paper's write-atomicity assumption) restores
     SC-equivalence even though the race itself remains.

Under SC the classification is vacuous — sequentially consistent
hardware is sequentially consistent for *all* programs — so the
analyzer reports no race findings and notes the unconditional
guarantee.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...consistency.access_class import PLAIN_LOAD, PLAIN_STORE
from ...consistency.models import ConsistencyModel
from ...isa.instructions import Rmw
from ...isa.program import Program
from .axiomatic_bridge import axiomatic_verdict
from .diagnostics import AnalysisReport, Diagnostic, FenceSuggestion, Severity, Site
from .program_model import StaticAccess, ThreadModel

Node = Tuple[int, int]  # (cpu, order)


class PairClass(enum.Enum):
    SC_ORDERED = "sc-ordered"          # model itself enforces SC
    SYNC_PAIR = "sync-pair"            # the pair IS the synchronization
    ORDERED_BY_SYNC = "ordered-by-sync"
    FENCE_FIXABLE = "fence-fixable"
    RACY = "racy"


@dataclass(frozen=True)
class ClassifiedPair:
    a: StaticAccess
    b: StaticAccess
    classification: PairClass

    def describe(self) -> str:
        return (f"{self.classification.value}: "
                f"cpu{self.a.cpu} {self.a.site_tag()} <-> "
                f"cpu{self.b.cpu} {self.b.site_tag()}")


def _model_is_total(model: ConsistencyModel) -> bool:
    """Does the model enforce program order between all plain accesses
    (i.e. is it operationally SC)?"""
    plains = (PLAIN_LOAD, PLAIN_STORE)
    return all(model.delay_arc(a, b) for a in plains for b in plains)


class _HbGraph:
    """Happens-before over static accesses: per-thread ordered edges
    plus cross-thread synchronizes-with edges."""

    def __init__(self) -> None:
        self.succ: Dict[Node, Set[Node]] = {}

    def add_edge(self, u: Node, v: Node) -> None:
        self.succ.setdefault(u, set()).add(v)

    def reaches(self, u: Node, v: Node) -> bool:
        if u == v:
            return False
        seen = {u}
        frontier = [u]
        while frontier:
            n = frontier.pop()
            for m in self.succ.get(n, ()):
                if m == v:
                    return True
                if m not in seen:
                    seen.add(m)
                    frontier.append(m)
        return False

    def ordered(self, u: Node, v: Node) -> bool:
        return self.reaches(u, v) or self.reaches(v, u)


def _po_edge(model: ConsistencyModel, a: StaticAccess, b: StaticAccess) -> bool:
    """Is the program-order edge a -> b (same thread, a earlier)
    enforced?  Delay arcs, plus local same-address data dependence."""
    if a.addr is not None and a.addr == b.addr:
        return True
    return model.delay_arc(a.klass, b.klass)


def _shared_masks(threads: Sequence[ThreadModel]) -> List[List[bool]]:
    """Per-thread mask: does the access touch a line some *other*
    processor also touches?  Private lines (audit slots, per-thread
    fence words) cannot be observed remotely, so they do not constrain
    the order route — though they still relay ordering as
    intermediates (see :func:`_po_chain`)."""
    lines_by_cpu: Dict[int, Set[int]] = {}
    unknown_cpus: Set[int] = set()
    for t in threads:
        for a in t.accesses:
            if a.addr is None:
                unknown_cpus.add(t.cpu)
            elif a.line is not None:
                lines_by_cpu.setdefault(t.cpu, set()).add(a.line)
    masks: List[List[bool]] = []
    for t in threads:
        mask = []
        for a in t.accesses:
            if a.addr is None:
                mask.append(True)
                continue
            shared = any(c != t.cpu and a.line in ls
                         for c, ls in lines_by_cpu.items())
            mask.append(shared or any(c != t.cpu for c in unknown_cpus))
        masks.append(mask)
    return masks


def _po_chain(model: ConsistencyModel, accesses: Sequence[StaticAccess],
              i: int, j: int) -> bool:
    """Is program order enforced from ``accesses[i]`` to ``accesses[j]``,
    directly or transitively through intermediates (e.g. a fence)?"""
    reachable = {i}
    for k in range(i + 1, j + 1):
        if any(m in reachable and _po_edge(model, accesses[m], accesses[k])
               for m in range(i, k)):
            reachable.add(k)
    return j in reachable


def _build_hb(threads: Sequence[ThreadModel], model: Optional[ConsistencyModel]) -> _HbGraph:
    """``model=None`` builds the SC-level graph (full program order)."""
    g = _HbGraph()
    for t in threads:
        for i, a in enumerate(t.accesses):
            for b in t.accesses[i + 1:]:
                if model is None or _po_edge(model, a, b):
                    g.add_edge((t.cpu, a.order), (t.cpu, b.order))
    for edge in _sync_edges(threads):
        g.add_edge(edge[0], edge[1])
    return g


def _sync_edges(threads: Sequence[ThreadModel]) -> List[Tuple[Node, Node]]:
    """Synchronizes-with: a store to ``f`` on P can be observed by a
    *guarded* load of ``f`` on Q (a spin or a tested acquire).  A load
    whose value is never examined observes nothing."""
    edges: List[Tuple[Node, Node]] = []
    for src in threads:
        for s in src.accesses:
            if not s.is_store or s.addr is None:
                continue
            for dst in threads:
                if dst.cpu == src.cpu:
                    continue
                for l in dst.accesses:
                    if (l.is_load and l.guards_branch and l.addr == s.addr):
                        edges.append(((src.cpu, s.order), (dst.cpu, l.order)))
    return edges


def _find_path(g: _HbGraph, u: Node, v: Node) -> Optional[List[Node]]:
    """A happens-before path u -> ... -> v, if one exists (BFS)."""
    if u == v:
        return None
    prev: Dict[Node, Node] = {}
    frontier = [u]
    seen = {u}
    while frontier:
        nxt: List[Node] = []
        for n in frontier:
            for m in sorted(g.succ.get(n, ())):
                if m in seen:
                    continue
                seen.add(m)
                prev[m] = n
                if m == v:
                    path = [v]
                    while path[-1] != u:
                        path.append(prev[path[-1]])
                    return list(reversed(path))
                nxt.append(m)
        frontier = nxt
    return None


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------

def analyze_programs(
    programs: Sequence[Program],
    model: ConsistencyModel,
    line_size: int = 4,
) -> AnalysisReport:
    """Race/ordering analysis of one program per processor under
    ``model``.  Returns a structured :class:`AnalysisReport`."""
    threads = [ThreadModel.from_program(p, cpu, line_size)
               for cpu, p in enumerate(programs)]
    report = AnalysisReport(model=model.name)
    total = _model_is_total(model)

    # the declarative checker's independent view of the same program
    # (when it bridges exactly; the refusal reason otherwise)
    verdict = axiomatic_verdict(programs, model, line_size=line_size)
    report.axiomatic_verdict = verdict.describe()
    report.axiomatic_sc_equivalent = verdict.sc_equivalent

    # order route: per-CPU, does the model enforce program order among
    # the accesses other processors can observe?
    report.po_fully_enforced = []
    for t, mask in zip(threads, _shared_masks(threads)):
        idxs = [i for i, s in enumerate(mask) if s]
        report.po_fully_enforced.append(all(
            _po_chain(model, t.accesses, i, j)
            for i, j in zip(idxs, idxs[1:])))

    _warn_ineffective_syncs(threads, model, report)
    _warn_unknown_addresses(threads, model, report)

    if total:
        report.notes.append(
            "model enforces full program order: sequentially consistent "
            "for all programs (no race classification needed)")
        report.sc_guaranteed = True
        _cite_axiomatic(report)
        return report

    hb = _build_hb(threads, model)
    sc_hb = _build_hb(threads, None)
    sync_pairs = {(e[0], e[1]) for e in _sync_edges(threads)}

    pairs = _conflicting_pairs(threads)
    classified: List[ClassifiedPair] = []
    sc_ok = True
    for a, b in pairs:
        na, nb = (a.cpu, a.order), (b.cpu, b.order)
        if (na, nb) in sync_pairs or (nb, na) in sync_pairs:
            classified.append(ClassifiedPair(a, b, PairClass.SYNC_PAIR))
            continue
        if a.klass.is_sync and b.klass.is_sync:
            # Synchronization is *allowed* to race — that is its job —
            # but an unordered sync pair can still be observed out of
            # SC order unless the model keeps each thread's program
            # order around it (RCsc does; RCpc does not — footnote 1).
            classified.append(ClassifiedPair(a, b, PairClass.SYNC_PAIR))
            if not hb.ordered(na, nb):
                order_route = (report.po_fully_enforced[a.cpu]
                               and report.po_fully_enforced[b.cpu])
                if not order_route:
                    sc_ok = False
                report.add(Diagnostic(
                    kind="competing-sync",
                    severity=Severity.INFO,
                    message=(f"synchronization accesses compete and are "
                             f"not ordered by other synchronization; the "
                             f"dynamic detector may flag them"),
                    sites=(_site(a), _site(b)),
                    fences=tuple(_local_fences(a, threads, model)
                                 + _local_fences(b, threads, model)),
                    model=model.name,
                ))
            continue
        if a.locks & b.locks:
            classified.append(ClassifiedPair(a, b, PairClass.ORDERED_BY_SYNC))
            continue
        if hb.ordered(na, nb):
            classified.append(ClassifiedPair(a, b, PairClass.ORDERED_BY_SYNC))
            continue
        # not ordered under the model: fixable, or plain racy?
        sc_path = _find_path(sc_hb, na, nb) or _find_path(sc_hb, nb, na)
        order_route = (report.po_fully_enforced[a.cpu]
                       and report.po_fully_enforced[b.cpu])
        if not order_route:
            sc_ok = False
        if sc_path is not None:
            classified.append(ClassifiedPair(a, b, PairClass.FENCE_FIXABLE))
            report.add(_fixable_diagnostic(a, b, sc_path, threads, model))
        else:
            classified.append(ClassifiedPair(a, b, PairClass.RACY))
            report.add(_racy_diagnostic(a, b, threads, model, order_route))

    report.sc_guaranteed = sc_ok
    report.pairs = classified  # type: ignore[attr-defined]
    _cite_axiomatic(report)
    return report


def _cite_axiomatic(report: AnalysisReport) -> None:
    """Append the declarative checker's verdict to every race finding,
    so each diagnostic cites the independent oracle's view."""
    if report.axiomatic_sc_equivalent is None:
        return
    if report.axiomatic_sc_equivalent:
        cite = ("the axiomatic checker finds every admitted final state "
                "sequentially consistent")
    else:
        cite = ("the axiomatic checker confirms the model admits final "
                "states SC forbids")
    for i, d in enumerate(report.diagnostics):
        if d.kind in ("data-race", "fence-fixable"):
            report.diagnostics[i] = replace(
                d, message=f"{d.message} ({cite})")


def _conflicting_pairs(threads: Sequence[ThreadModel]) -> List[Tuple[StaticAccess, StaticAccess]]:
    out = []
    for i, t1 in enumerate(threads):
        for t2 in threads[i + 1:]:
            for a in t1.accesses:
                for b in t2.accesses:
                    if (a.is_store or b.is_store) and a.may_alias(b):
                        out.append((a, b))
    return out


def _site(a: StaticAccess) -> Site:
    return Site(cpu=a.cpu, pc=a.pc, tag=a.site_tag(), addr=a.addr)


def _warn_ineffective_syncs(threads: Sequence[ThreadModel],
                            model: ConsistencyModel,
                            report: AnalysisReport) -> None:
    for t in threads:
        for a in t.accesses:
            if a.klass.acquire and a.klass.release:
                continue  # a full fence binds no useful value by design
            if a.klass.acquire and not a.value_used:
                what = ("lock acquire" if isinstance(a.instr, Rmw)
                        else "acquire load")
                report.add(Diagnostic(
                    kind="ineffective-sync",
                    severity=Severity.WARNING,
                    message=(f"{what} result is never examined; it cannot "
                             f"establish mutual exclusion or observe a "
                             f"release (the paper's 'optimistic' lock)"),
                    sites=(_site(a),),
                    suggestion=("test the returned value and retry "
                                "(spin) before entering the critical section"),
                    model=model.name,
                ))


def _warn_unknown_addresses(threads: Sequence[ThreadModel],
                            model: ConsistencyModel,
                            report: AnalysisReport) -> None:
    for t in threads:
        for a in t.accesses:
            if a.addr is None:
                report.add(Diagnostic(
                    kind="unknown-address",
                    severity=Severity.WARNING,
                    message=("address is not statically resolvable; the "
                             "access is treated as conflicting with every "
                             "location"),
                    sites=(_site(a),),
                    model=model.name,
                ))


def _local_fences(a: StaticAccess, threads: Sequence[ThreadModel],
                  model: ConsistencyModel) -> List[FenceSuggestion]:
    """Order-route fences: restore the missing program-order links
    between ``a`` and its neighbouring *shared* accesses."""
    out: List[FenceSuggestion] = []
    thread = threads[a.cpu]
    acc = thread.accesses
    idxs = [i for i, s in enumerate(_shared_masks(threads)[a.cpu]) if s]
    if a.order not in idxs:
        return out
    pos = idxs.index(a.order)
    if pos > 0:
        p = idxs[pos - 1]
        if not _po_chain(model, acc, p, a.order):
            out.append(FenceSuggestion(
                cpu=thread.cpu, after_pc=acc[p].pc, before_pc=a.pc,
                after_tag=acc[p].site_tag(), before_tag=a.site_tag()))
    if pos + 1 < len(idxs):
        nx = idxs[pos + 1]
        if not _po_chain(model, acc, a.order, nx):
            out.append(FenceSuggestion(
                cpu=thread.cpu, after_pc=a.pc, before_pc=acc[nx].pc,
                after_tag=a.site_tag(), before_tag=acc[nx].site_tag()))
    return out


def _racy_diagnostic(a: StaticAccess, b: StaticAccess,
                     threads: Sequence[ThreadModel],
                     model: ConsistencyModel,
                     order_route: bool) -> Diagnostic:
    fences = tuple(_local_fences(a, threads, model)
                   + _local_fences(b, threads, model))
    note = ("; the model happens to enforce full program order around "
            "both sides, so executions remain sequentially consistent, "
            "but the race itself is real" if order_route else "")
    return Diagnostic(
        kind="data-race",
        severity=Severity.ERROR,
        message=(f"conflicting accesses are not ordered by any "
                 f"synchronization under {model.name}{note}"),
        sites=(_site(a), _site(b)),
        suggestion=("synchronize the pair (common lock, or a released "
                    "flag spun on by the consumer); the fences below "
                    "restore SC-equivalence without removing the race"),
        fences=fences,
        model=model.name,
    )


def _fixable_diagnostic(a: StaticAccess, b: StaticAccess,
                        path: List[Node],
                        threads: Sequence[ThreadModel],
                        model: ConsistencyModel) -> Diagnostic:
    """The SC-level chain exists; report the local links the model
    drops, with a label hint where acquire/release would do."""
    fences: List[FenceSuggestion] = []
    for (c1, o1), (c2, o2) in zip(path, path[1:]):
        if c1 != c2:
            continue  # a synchronizes-with hop: nothing to fix
        u, v = threads[c1].accesses[o1], threads[c1].accesses[o2]
        if _po_edge(model, u, v):
            continue
        hint = ""
        if v.is_store and not v.klass.release:
            hint = f"label {v.site_tag()!r} as a release (st.rel)"
        elif u.is_load and not u.klass.acquire:
            hint = f"label {u.site_tag()!r} as an acquire (ld.acq)"
        fences.append(FenceSuggestion(
            cpu=c1, after_pc=u.pc, before_pc=v.pc,
            after_tag=u.site_tag(), before_tag=v.site_tag(),
            label_hint=hint))
    return Diagnostic(
        kind="fence-fixable",
        severity=Severity.ERROR,
        message=(f"the synchronization chain ordering these accesses "
                 f"exists in program order but {model.name} does not "
                 f"enforce every link"),
        sites=(_site(a), _site(b)),
        suggestion="apply the fence/label fixes below to restore race-freedom",
        fences=tuple(fences),
        model=model.name,
    )


# ----------------------------------------------------------------------
# Applying suggestions (used by tests and the CLI self-check)
# ----------------------------------------------------------------------

def apply_fence_suggestions(
    programs: Sequence[Program],
    suggestions: Sequence[FenceSuggestion],
    fence_addr_base: int = 0xF000,
    line_size: int = 4,
) -> List[Program]:
    """Insert a full fence (acquire+release RMW to a private line) at
    every suggested point; returns patched copies of the programs."""
    patched: List[Program] = []
    for cpu, program in enumerate(programs):
        insert_pcs = sorted({s.before_pc for s in suggestions if s.cpu == cpu})
        if not insert_pcs:
            patched.append(program)
            continue
        fence_addr = fence_addr_base + cpu * line_size
        instrs = list(program.instructions)
        labels = dict(program.labels)
        for pc in reversed(insert_pcs):
            instrs.insert(pc, Rmw(dst="r30", base="r0", offset=fence_addr,
                                  op="ts", acquire=True, release=True,
                                  tag="fence"))
            labels = {name: (lp + 1 if lp >= pc else lp)
                      for name, lp in labels.items()}
        patched.append(Program(instrs, labels))
    return patched

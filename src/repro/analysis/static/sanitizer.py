"""Trace-invariant sanitizer.

A pass over a recorded :class:`~repro.sim.trace.TraceRecorder` event
stream asserting invariants the simulator must uphold regardless of
consistency model, program, or technique:

* **retire-order** — each CPU retires reorder-buffer entries in strictly
  increasing sequence order (program order; squashed seqs are never
  reused, so the stream is globally monotone per CPU);
* **unbound-retire** — a load or RMW never retires without a bound
  value;
* **sb-fifo** — the store buffer issues stores to the cache in FIFO
  (program) order on every model;
* **sb-serial** — under models that enforce the W→W delay arc (SC, PC)
  stores also *complete* in order with at most one outstanding;
* **spec-load-correction** — a live speculative-load-buffer entry whose
  line is hit by an invalidation or replacement must be reissued or
  squashed before it retires (the head entry is exempt — footnote 4:
  the model would have allowed the access to perform at this time);
* **single-owner** — no two caches simultaneously hold the same line in
  the MODIFIED state (fills, invalidations, evictions, and downgrades
  must interleave consistently).

Violations carry the offending event so a failure message points at the
exact cycle in the trace.  Use :func:`sanitize_trace` directly, the
``--sanitize`` flag on ``run.py``, or the ``sanitized_trace`` pytest
fixture from ``tests/conftest.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ...consistency.access_class import PLAIN_STORE
from ...consistency.models import ConsistencyModel
from ...sim.trace import TraceEvent, TraceRecorder


@dataclass(frozen=True)
class InvariantViolation:
    invariant: str
    cycle: int
    message: str
    event: Optional[TraceEvent] = None

    def describe(self) -> str:
        text = f"[{self.invariant}] cycle {self.cycle}: {self.message}"
        if self.event is not None:
            text += f"\n    event: {self.event.describe().strip()}"
        return text


@dataclass
class SanitizerReport:
    model: str
    violations: List[InvariantViolation] = field(default_factory=list)
    events_checked: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_invariant(self, name: str) -> List[InvariantViolation]:
        return [v for v in self.violations if v.invariant == name]

    def render(self) -> str:
        head = (f"trace sanitizer ({self.model or 'model-agnostic'}): "
                f"{self.events_checked} event(s) checked")
        if self.ok:
            return head + ", all invariants hold"
        lines = [head + f", {len(self.violations)} violation(s):"]
        lines += ["  " + ln for v in self.violations
                  for ln in v.describe().splitlines()]
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError(self.render())


class _CpuState:
    """Per-CPU bookkeeping while scanning the stream."""

    def __init__(self) -> None:
        self.last_retired: Optional[int] = None
        self.last_store_issue: Optional[int] = None
        self.last_store_complete: Optional[int] = None
        self.stores_outstanding: Dict[int, int] = {}  # seq -> issue cycle
        self.slb_live: Dict[int, Optional[int]] = {}  # seq -> line
        self.slb_dirty: Dict[int, int] = {}           # seq -> inval cycle


def _src_cpu(source: str) -> Optional[int]:
    """``cpu3`` / ``cpu3/lsu`` / ``cache3`` -> 3."""
    head = source.split("/", 1)[0]
    for prefix in ("cpu", "cache"):
        if head.startswith(prefix) and head[len(prefix):].isdigit():
            return int(head[len(prefix):])
    return None


def sanitize_trace(
    trace: Union[TraceRecorder, Sequence[TraceEvent]],
    model: Optional[ConsistencyModel] = None,
) -> SanitizerReport:
    """Check a recorded event stream against the simulator invariants.

    ``model`` enables the model-dependent store-buffer checks; without
    it only the model-agnostic invariants run.
    """
    events = trace.events if isinstance(trace, TraceRecorder) else list(trace)
    report = SanitizerReport(model=model.name if model else "")
    serial_stores = (model is not None
                     and model.delay_arc(PLAIN_STORE, PLAIN_STORE))
    if model is not None and not serial_stores:
        report.notes.append(
            f"{model.name} pipelines stores: in-order-completion "
            f"checks skipped")

    cpus: Dict[int, _CpuState] = {}
    owners: Dict[int, int] = {}  # line -> cache node holding MODIFIED

    def cpu(n: int) -> _CpuState:
        return cpus.setdefault(n, _CpuState())

    def fail(invariant: str, ev: TraceEvent, message: str) -> None:
        report.violations.append(InvariantViolation(
            invariant=invariant, cycle=ev.cycle, message=message, event=ev))

    for ev in events:
        report.events_checked += 1
        n = _src_cpu(ev.source)
        d = ev.detail

        if ev.kind == "retire" and n is not None:
            st = cpu(n)
            seq = d.get("seq")
            if seq is not None:
                if st.last_retired is not None and seq <= st.last_retired:
                    fail("retire-order", ev,
                         f"cpu{n} retired seq {seq} after seq "
                         f"{st.last_retired}: retirement left program order")
                st.last_retired = seq
            if d.get("op") in ("load", "rmw") and not d.get("bound", True):
                fail("unbound-retire", ev,
                     f"cpu{n} retired {d.get('op')} seq {seq} "
                     f"without a bound value")

        elif ev.kind == "store_issue" and n is not None:
            st = cpu(n)
            seq = d.get("seq")
            if seq is not None:
                if (st.last_store_issue is not None
                        and seq <= st.last_store_issue):
                    fail("sb-fifo", ev,
                         f"cpu{n} issued store seq {seq} after seq "
                         f"{st.last_store_issue}: store buffer is not FIFO")
                st.last_store_issue = seq
                if serial_stores and st.stores_outstanding:
                    pending = sorted(st.stores_outstanding)
                    fail("sb-serial", ev,
                         f"cpu{n} issued store seq {seq} while store(s) "
                         f"{pending} were outstanding (model "
                         f"{report.model} requires one at a time)")
                st.stores_outstanding[seq] = ev.cycle

        elif ev.kind == "store_complete" and n is not None:
            st = cpu(n)
            seq = d.get("seq")
            if seq is not None:
                st.stores_outstanding.pop(seq, None)
                if serial_stores:
                    if (st.last_store_complete is not None
                            and seq <= st.last_store_complete):
                        fail("sb-serial", ev,
                             f"cpu{n} completed store seq {seq} after seq "
                             f"{st.last_store_complete} (model "
                             f"{report.model} requires in-order completion)")
                    st.last_store_complete = seq

        elif ev.kind == "slb_insert" and n is not None:
            cpu(n).slb_live[d["seq"]] = d.get("line")

        elif ev.kind == "slb_retire" and n is not None:
            st = cpu(n)
            seq = d.get("seq")
            if seq in st.slb_dirty and st.slb_dirty[seq] < ev.cycle:
                fail("spec-load-correction", ev,
                     f"cpu{n} retired speculative load seq {seq} although "
                     f"its line was hit by a coherence event at cycle "
                     f"{st.slb_dirty[seq]} with no reissue/squash in between")
            st.slb_live.pop(seq, None)
            st.slb_dirty.pop(seq, None)

        elif ev.kind == "slb_reissue" and n is not None:
            cpu(n).slb_dirty.pop(d.get("seq"), None)

        elif ev.kind == "slb_squash" and n is not None:
            st = cpu(n)
            start = d.get("seq")
            if start is not None:
                for s in [s for s in st.slb_live if s >= start]:
                    st.slb_live.pop(s, None)
                    st.slb_dirty.pop(s, None)

        elif ev.kind == "slb_squash_after" and n is not None:
            st = cpu(n)
            start = d.get("seq")
            if start is not None:
                st.slb_dirty.pop(start, None)
                for s in [s for s in st.slb_live if s > start]:
                    st.slb_live.pop(s, None)
                    st.slb_dirty.pop(s, None)

        elif ev.kind == "squash" and n is not None:
            st = cpu(n)
            start = d.get("from_seq")
            if start is not None:
                for s in [s for s in st.slb_live if s >= start]:
                    st.slb_live.pop(s, None)
                    st.slb_dirty.pop(s, None)

        elif ev.kind in ("inval", "evict") and ev.source.startswith("cache"):
            line = d.get("line")
            if n is not None and line is not None:
                st = cpu(n)
                # footnote 4: the buffer's head entry (oldest live seq)
                # may legally ignore the event and retire
                head = min(st.slb_live) if st.slb_live else None
                for s, l in st.slb_live.items():
                    if l == line and s != head:
                        st.slb_dirty.setdefault(s, ev.cycle)
                if owners.get(line) == n:
                    del owners[line]

        elif ev.kind == "downgrade" and ev.source.startswith("cache"):
            line = d.get("line")
            if n is not None and owners.get(line) == n:
                del owners[line]

        elif ev.kind == "fill" and ev.source.startswith("cache"):
            line = d.get("line")
            state = d.get("state")
            if n is None or line is None:
                continue
            holder = owners.get(line)
            if holder is not None and holder != n:
                fail("single-owner", ev,
                     f"cache{n} filled line {line:#x} ({state}) while "
                     f"cache{holder} still owned it MODIFIED: two owners")
            if state == "M":  # LineState.MODIFIED.value
                owners[line] = n
            elif holder == n:
                del owners[line]

    return report

"""Static analysis of litmus programs (the DRF theorem, applied).

The paper's Section 6 extends the speculative-load buffer into a
*dynamic* race detector; its theoretical basis (Gharachorloo & Gibbons,
SPAA 1991) is that a release-consistent machine is sequentially
consistent for data-race-free programs.  This package supplies the
*static* half of that story:

* :mod:`racecheck` — analyze :class:`~repro.isa.program.Program`
  objects before simulation: find conflicting access pairs across
  processors and classify each, under a consistency model's delay
  rules, as *ordered-by-sync*, *fence-fixable*, or *racy*, with
  fence/labeling suggestions that restore SC-equivalence;
* :mod:`sanitizer` — check a recorded
  :class:`~repro.sim.trace.TraceRecorder` stream against simulator
  invariants (in-order retirement, bound loads, store-buffer FIFO,
  speculative-load correction, single ownership);
* :mod:`crosscheck` — run the static analyzer, the dynamic
  :class:`~repro.core.sc_detection.ScViolationDetector`, and the
  axiomatic checker (:mod:`repro.analysis.axiomatic`) over the same
  litmus suite and report agreement (static-racy must cover every
  dynamically-flagged access; axiomatic and enumerated outcome sets
  must be identical);
* :mod:`axiomatic_bridge` — convert straight-line ISA programs into
  litmus tests, exactly or not at all, so the race analyzer and
  ``python -m repro.run --analyze`` can cite the declarative verdict.
"""

from .axiomatic_bridge import (
    AxiomaticVerdict,
    BridgeResult,
    axiomatic_verdict,
    litmus_from_programs,
)
from .diagnostics import AnalysisReport, Diagnostic, FenceSuggestion, Severity
from .program_model import StaticAccess, ThreadModel
from .racecheck import ClassifiedPair, PairClass, analyze_programs, apply_fence_suggestions
from .sanitizer import InvariantViolation, SanitizerReport, sanitize_trace
from .crosscheck import CrossCase, CrossReport, cross_validate

__all__ = [
    "AnalysisReport",
    "AxiomaticVerdict",
    "BridgeResult",
    "Diagnostic",
    "FenceSuggestion",
    "Severity",
    "StaticAccess",
    "ThreadModel",
    "ClassifiedPair",
    "PairClass",
    "analyze_programs",
    "apply_fence_suggestions",
    "axiomatic_verdict",
    "litmus_from_programs",
    "InvariantViolation",
    "SanitizerReport",
    "sanitize_trace",
    "CrossCase",
    "CrossReport",
    "cross_validate",
]

"""Experiment runners — one per paper artifact (DESIGN.md's E1..E10).

Each function builds the workload, runs the right simulator(s), and
returns a :class:`~repro.analysis.tables.Table` whose rows mirror what
the paper reports (or argues qualitatively).  Benchmarks, examples, and
EXPERIMENTS.md all render these same tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.schemes import compare_schemes
from ..consistency.litmus import (
    coherence_per_location,
    load_buffering,
    message_passing,
    message_passing_sync,
    store_buffering,
)
from ..consistency.models import ALL_MODELS, PC, RC, SC, WC, ConsistencyModel, get_model
from ..core.timing import AccessSpec, AnalyticalTimingModel, TimingConfig
from ..memory.types import CacheConfig
from ..sim.sweep import sweep_map
from ..system.machine import run_workload
from ..workloads.figure5 import Figure5Result, run_figure5
from ..workloads.paper_examples import (
    PAPER_CYCLE_COUNTS,
    example1_program,
    example1_segment,
    example2_program,
    example2_segment,
)
from ..workloads.synthetic import (
    MultiprocessorWorkload,
    critical_section_segment,
    critical_section_workload,
    pointer_chase_segment,
    producer_consumer_workload,
    random_segment,
)
from .tables import Table

TECHNIQUES: Dict[str, Tuple[bool, bool]] = {
    "baseline": (False, False),
    "prefetch": (True, False),
    "speculation": (False, True),
    "prefetch+speculation": (True, True),
}


# ----------------------------------------------------------------------
# E1: Figure 1 — ordering restrictions, via litmus outcomes
# ----------------------------------------------------------------------

def delay_arc_matrix(model: ConsistencyModel) -> Table:
    """Figure 1, directly: which program-ordered pairs carry delay arcs.

    Rows are the earlier access, columns the later one; ``wait`` means
    the later access may not perform until the earlier one has.
    """
    from ..consistency.access_class import (
        ACQUIRE,
        PLAIN_LOAD,
        PLAIN_STORE,
        RELEASE,
    )

    classes = [("load", PLAIN_LOAD), ("store", PLAIN_STORE),
               ("acquire", ACQUIRE), ("release", RELEASE)]
    table = Table(
        f"Figure 1 delay arcs under {model.name} "
        f"(row must perform before column?)",
        ["earlier \\ later"] + [name for name, _ in classes],
    )
    for name_a, a in classes:
        row: List[object] = [name_a]
        for _name_b, b in classes:
            row.append("wait" if model.delay_arc(a, b) else "-")
        table.add_row(*row)
    return table


def litmus_outcome_table() -> Table:
    """Which relaxed outcomes each model admits (executable Figure 1)."""
    probes = [
        ("SB: r0=r1=0", store_buffering(), dict(r0=0, r1=0)),
        ("MP: flag seen, data stale", message_passing(), dict(r0=1, r1=0)),
        ("MP+sync: stale data", message_passing_sync(), dict(r0=1, r1=0)),
        ("LB: r0=r1=1", load_buffering(), dict(r0=1, r1=1)),
        ("coherence: 2 then 1", coherence_per_location(), dict(r0=2, r1=1)),
    ]
    table = Table(
        "E1 (Figure 1): relaxed outcomes admitted by each consistency model",
        ["outcome"] + [m.name for m in ALL_MODELS],
    )
    for label, test, partial in probes:
        row: List[object] = [label]
        for model in ALL_MODELS:
            row.append("allowed" if test.allows(model, **partial) else "forbidden")
        table.add_row(*row)
    table.add_note("SC forbids every relaxation; RC admits all data-access "
                   "relaxations while keeping properly-labelled sync correct")
    return table


# ----------------------------------------------------------------------
# E2/E3: the example cycle counts (analytical + detailed)
# ----------------------------------------------------------------------

def _example_cell(item: Tuple[str, str, bool, bool, int]) -> int:
    """Sweep worker: one detailed-simulator cell of the example table."""
    example, model_name, pf, spec, miss_latency = item
    program_fn = example1_program if example == "example1" else example2_program
    wl = program_fn()
    result = run_workload(
        [wl.program], model=get_model(model_name), prefetch=pf,
        speculation=spec, miss_latency=miss_latency,
        initial_memory=wl.initial_memory, warm_lines=wl.warm_lines,
    )
    return result.cycles


def example_cycle_table(
    example: str,
    detailed: bool = False,
    miss_latency: int = 100,
    models: Sequence[ConsistencyModel] = (SC, PC, WC, RC),
    jobs: int = 1,
) -> Table:
    """Cycle counts for Example 1 or 2 under every model x technique."""
    if example == "example1":
        segment = example1_segment()
    elif example == "example2":
        segment = example2_segment()
    else:
        raise ValueError(f"unknown example {example!r}")

    sim_kind = "detailed" if detailed else "analytical"
    table = Table(
        f"E2/E3 ({example}, {sim_kind} simulator): cycles per model and technique",
        ["model"] + list(TECHNIQUES) + ["paper (base/pf/pf+spec)"],
    )
    engine = AnalyticalTimingModel(TimingConfig(miss_latency=miss_latency))
    cells: Dict[Tuple[str, str], int] = {}
    if detailed:
        items = [(example, model.name, pf, spec, miss_latency)
                 for model in models
                 for tech, (pf, spec) in TECHNIQUES.items()]
        keys = [(model.name, tech)
                for model in models for tech in TECHNIQUES]
        cells = dict(zip(keys, sweep_map(_example_cell, items, jobs=jobs)))
    for model in models:
        row: List[object] = [model.name]
        for tech, (pf, spec) in TECHNIQUES.items():
            if detailed:
                row.append(cells[(model.name, tech)])
            else:
                row.append(engine.schedule(segment, model,
                                           prefetch=pf, speculation=spec).total_cycles)
        paper = [PAPER_CYCLE_COUNTS.get((example, model.name, t))
                 for t in ("baseline", "prefetch", "prefetch+speculation")]
        row.append("/".join("-" if p is None else str(p) for p in paper))
        table.add_row(*row)
    if detailed:
        table.add_note("detailed-simulator numbers include pipeline fill and "
                       "decode overhead; the paper's arithmetic abstracts those away")
    return table


# ----------------------------------------------------------------------
# E4: Figure 5
# ----------------------------------------------------------------------

def figure5_report(inval_cycle: int = 5) -> Tuple[Figure5Result, Table]:
    result = run_figure5(inval_cycle=inval_cycle)
    table = Table(
        "E4 (Figure 5): speculative-load rollback under SC",
        ["#", "event"],
    )
    for i, event in enumerate(result.events, 1):
        table.add_row(i, event)
    table.add_note(f"total {result.cycles} cycles; invalidation launched at "
                   f"cycle {inval_cycle}")
    return result, table


# ----------------------------------------------------------------------
# E5: equalization of models (the Section 5 claim)
# ----------------------------------------------------------------------

def equalization_table(
    segments: Optional[Dict[str, List[AccessSpec]]] = None,
    miss_latency: int = 100,
) -> Table:
    """SC-vs-RC gap, baseline vs with both techniques, per workload."""
    if segments is None:
        segments = {
            "example1": example1_segment(),
            "example2": example2_segment(),
            "critical-section": critical_section_segment(reads=3, writes=3,
                                                         dependent_reads=1),
            "pointer-chase": pointer_chase_segment(length=5),
            "random (sync/4)": random_segment(length=16, sync_period=4, rng=7),
            "random (no sync)": random_segment(length=16, rng=11),
        }
    engine = AnalyticalTimingModel(TimingConfig(miss_latency=miss_latency))
    table = Table(
        "E5 (Section 5): the techniques equalize consistency models",
        ["workload", "SC base", "RC base", "gap", "SC both", "RC both", "gap'"],
    )
    for name, segment in segments.items():
        sc_base = engine.schedule(segment, SC).total_cycles
        rc_base = engine.schedule(segment, RC).total_cycles
        sc_both = engine.schedule(segment, SC, prefetch=True,
                                  speculation=True).total_cycles
        rc_both = engine.schedule(segment, RC, prefetch=True,
                                  speculation=True).total_cycles
        table.add_row(name, sc_base, rc_base,
                      round(sc_base / rc_base, 2),
                      sc_both, rc_both,
                      round(sc_both / rc_both, 2))
    table.add_note("gap = SC cycles / RC cycles; with both techniques the gap "
                   "approaches 1.0 on every workload")
    return table


def _equalization_cell(item: Tuple[str, bool, bool, int, bool]) -> int:
    """Sweep worker: one detailed critical-section run, correctness-checked."""
    model_name, pf, spec, iterations, private = item
    # several independent counters inside the section give the relaxed
    # models something to pipeline (like the paper's Example 1, which
    # writes two independent locations)
    wl = critical_section_workload(num_cpus=2, iterations=iterations,
                                   shared_counters=3, private=private)
    result = run_workload(wl.programs, model=get_model(model_name),
                          prefetch=pf, speculation=spec,
                          initial_memory=wl.initial_memory,
                          max_cycles=2_000_000)
    for addr, expected in wl.expectations:
        actual = result.machine.read_word(addr)
        if actual != expected:
            raise AssertionError(
                f"{model_name}/pf={pf}/spec={spec}: counter {addr:#x} = "
                f"{actual}, expected {expected} (mutual exclusion violated?)"
            )
    return result.cycles


def detailed_equalization_table(iterations: int = 2,
                                private: bool = True,
                                jobs: int = 1) -> Table:
    """E5 on the detailed simulator.

    Defaults to per-CPU (uncontended) locks — the regime Section 5
    argues is the common case ("the time at which one process releases
    a synchronization is long before the time another process tries to
    acquire"), where the techniques equalize the models fully.  Pass
    ``private=False`` for the contended variant, where frequent
    invalidations of prefetched/speculated lines limit the benefit —
    the paper's own stated caveat.
    """
    kind = "private locks" if private else "one contended lock"
    table = Table(
        f"E5 (detailed simulator): critical sections, 2 CPUs, {kind}",
        ["model", "baseline", "prefetch+speculation", "speedup"],
    )
    models = (SC, PC, WC, RC)
    combos = ((False, False), (True, True))
    items = [(model.name, pf, spec, iterations, private)
             for model in models for pf, spec in combos]
    cycles = sweep_map(_equalization_cell, items, jobs=jobs)
    for i, model in enumerate(models):
        base, both = cycles[2 * i], cycles[2 * i + 1]
        table.add_row(model.name, base, both, round(base / both, 2))
    return table


# ----------------------------------------------------------------------
# E6: miss-latency sensitivity
# ----------------------------------------------------------------------

def _latency_point(item: Tuple[int, List[AccessSpec]]) -> Tuple[int, int, int, int]:
    """Sweep worker: (SC base, RC base, SC both, RC both) at one latency."""
    lat, segment = item
    engine = AnalyticalTimingModel(TimingConfig(miss_latency=lat))
    return (
        engine.schedule(segment, SC).total_cycles,
        engine.schedule(segment, RC).total_cycles,
        engine.schedule(segment, SC, prefetch=True,
                        speculation=True).total_cycles,
        engine.schedule(segment, RC, prefetch=True,
                        speculation=True).total_cycles,
    )


def latency_sweep_table(
    latencies: Sequence[int] = (20, 50, 100, 200, 400),
    segment: Optional[List[AccessSpec]] = None,
    segment_name: str = "example2",
    jobs: int = 1,
) -> Table:
    if segment is None:
        segment = example2_segment()
    table = Table(
        f"E6: miss-latency sweep on {segment_name}",
        ["miss latency", "SC base", "RC base", "SC both", "RC both",
         "SC speedup"],
    )
    points = sweep_map(_latency_point, [(lat, segment) for lat in latencies],
                       jobs=jobs)
    for lat, (sc_base, rc_base, sc_both, rc_both) in zip(latencies, points):
        table.add_row(lat, sc_base, rc_base, sc_both, rc_both,
                      round(sc_base / sc_both, 2))
    table.add_note("the techniques' benefit grows with miss latency: they "
                   "hide exactly the latency the consistency model exposes")
    return table


# ----------------------------------------------------------------------
# E7: speculation rollback cost
# ----------------------------------------------------------------------

def rollback_cost_table(
    inval_cycles: Sequence[int] = (),
    miss_latency: int = 100,
) -> Table:
    """Cost of mis-speculation: Figure 5 scenario with and without the
    invalidation, plus the baseline without speculation."""
    from ..workloads.paper_examples import figure5_program

    wl = figure5_program()

    def run(pf: bool, spec: bool) -> int:
        res = run_workload([wl.program], model=SC, prefetch=pf, speculation=spec,
                           miss_latency=miss_latency,
                           initial_memory={**wl.initial_memory, 96: 500, 97: 700},
                           warm_lines=wl.warm_lines)
        return res.cycles

    base = run(False, False)
    both_clean = run(True, True)
    table = Table(
        "E7: speculation rollback cost (Figure 5 code segment, SC)",
        ["scenario", "cycles", "squashes", "vs baseline"],
    )
    table.add_row("conventional (no techniques)", base, 0, 1.0)
    table.add_row("both techniques, no interference", both_clean, 0,
                  round(base / both_clean, 2))
    for inval_cycle in (inval_cycles or (5, 20, 40)):
        result = run_figure5(inval_cycle=inval_cycle, miss_latency=miss_latency)
        squashes = result.machine.sim.stats.counter("cpu0/slb/squashes").value
        table.add_row(f"both techniques, inval launched @{inval_cycle}",
                      result.cycles, squashes,
                      round(base / result.cycles, 2))
    table.add_note("even a mis-speculation that forces a full rollback stays "
                   "well ahead of the conventional implementation")
    return table


# ----------------------------------------------------------------------
# E8: related work
# ----------------------------------------------------------------------

def related_work_table(miss_latency: int = 100) -> Table:
    cfg = TimingConfig(miss_latency=miss_latency)
    table = Table(
        "E8 (Section 6): competing schemes on the paper's examples (SC)",
        ["scheme", "example1", "example2", "pointer-chase", "cached chase", "note"],
    )
    segments = {
        "example1": example1_segment(),
        "example2": example2_segment(),
        "pointer-chase": pointer_chase_segment(length=5),
        # caches matter most on a dependent chain of hits: the
        # cache-less NST pays the full memory latency on every link
        "cached chase": pointer_chase_segment(length=5, hit_fraction=1.0),
    }
    by_scheme: Dict[str, Dict[str, int]] = {}
    notes: Dict[str, str] = {}
    for name, segment in segments.items():
        for res in compare_schemes(segment, cfg):
            by_scheme.setdefault(res.scheme, {})[name] = res.total_cycles
            if res.note:
                notes[res.scheme] = res.note
    for scheme, results in by_scheme.items():
        table.add_row(scheme, *(results.get(name) for name in segments),
                      notes.get(scheme, ""))
    return table


# ----------------------------------------------------------------------
# E9: RMW handling (Appendix A)
# ----------------------------------------------------------------------

def _rmw_cell(item: Tuple[str, bool, bool, int]) -> Tuple[int, bool]:
    """Sweep worker: one contended-lock run; returns (cycles, counters ok)."""
    model_name, pf, spec, iterations = item
    wl = critical_section_workload(num_cpus=2, iterations=iterations)
    result = run_workload(wl.programs, model=get_model(model_name),
                          prefetch=pf, speculation=spec,
                          initial_memory=wl.initial_memory,
                          max_cycles=2_000_000)
    ok = all(result.machine.read_word(a) == e for a, e in wl.expectations)
    return result.cycles, ok


def rmw_handoff_table(iterations: int = 2, jobs: int = 1) -> Table:
    """Contended lock hand-off: conventional vs speculative RMW."""
    table = Table(
        "E9 (Appendix A): contended test&set lock, 2 CPUs",
        ["model", "technique", "cycles", "counter ok"],
    )
    combos = [(model, tech, pf, spec)
              for model in (SC, RC)
              for tech, (pf, spec) in (("baseline", (False, False)),
                                       ("prefetch+speculation", (True, True)))]
    results = sweep_map(_rmw_cell,
                        [(model.name, pf, spec, iterations)
                         for model, _, pf, spec in combos],
                        jobs=jobs)
    for (model, tech, _, _), (cycles, ok) in zip(combos, results):
        table.add_row(model.name, tech, cycles, "yes" if ok else "NO")
    return table


# ----------------------------------------------------------------------
# E10: prefetch cache-traffic cost (Section 3.2)
# ----------------------------------------------------------------------

def _traffic_cell(item: Tuple[bool, bool, int]) -> Tuple[int, int, int, int]:
    """Sweep worker: (cycles, port accesses, prefetches, net messages)."""
    pf, spec, miss_latency = item
    wl = example1_program()
    result = run_workload([wl.program], model=SC, prefetch=pf,
                          speculation=spec, miss_latency=miss_latency,
                          initial_memory=wl.initial_memory,
                          warm_lines=wl.warm_lines)
    return (
        result.cycles,
        result.counter("cache0/port_accesses"),
        result.counter("cache0/prefetches_issued"),
        result.counter("net/messages"),
    )


def traffic_table(miss_latency: int = 100, jobs: int = 1) -> Table:
    """The prefetch double-access and its traffic consequences."""
    table = Table(
        "E10 (Section 3.2): cache/port traffic with and without prefetch "
        "(example1, SC)",
        ["configuration", "cycles", "cache port accesses",
         "prefetches issued", "net messages"],
    )
    cells = sweep_map(_traffic_cell,
                      [(pf, spec, miss_latency)
                       for pf, spec in TECHNIQUES.values()],
                      jobs=jobs)
    for tech, cell in zip(TECHNIQUES, cells):
        table.add_row(tech, *cell)
    table.add_note("prefetched references access the cache twice, but only "
                   "in cycles where demand accesses were stalled anyway")
    return table


# ----------------------------------------------------------------------
# E11: stall breakdown (Figures 3-7 presentation, via repro.obs)
# ----------------------------------------------------------------------

def stall_breakdown_table(
    example: str = "example2",
    models: Sequence[ConsistencyModel] = (SC, PC, WC, RC),
    miss_latency: int = 100,
    jobs: int = 1,
    normalize: bool = True,
) -> Table:
    """Normalized execution-time breakdown per model x technique.

    Thin wrapper over :func:`repro.obs.report.example_breakdown_matrix`
    so the experiment suite and EXPERIMENTS.md pick the table up; the
    import is deferred because ``repro.obs.report`` itself imports this
    package's table machinery.
    """
    from ..obs.report import example_breakdown_matrix

    return example_breakdown_matrix(
        example, models=models, miss_latency=miss_latency, jobs=jobs,
        normalize=normalize)

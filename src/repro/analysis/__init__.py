"""Analysis: text tables/charts and the per-experiment runners."""

from .ablations import (
    false_sharing_table,
    hw_vs_sw_prefetch_table,
    lookahead_window_table,
    prefetch_bandwidth_table,
    protocol_table,
    rob_size_table,
    slb_size_table,
)
from .gantt import compare_schedules, render_schedule
from .summary import CpuSummary, MachineSummary, summarize, summary_table
from .scaling import barrier_scaling_table, cpu_scaling_table
from .experiments import (
    TECHNIQUES,
    delay_arc_matrix,
    detailed_equalization_table,
    equalization_table,
    example_cycle_table,
    figure5_report,
    latency_sweep_table,
    litmus_outcome_table,
    related_work_table,
    rmw_handoff_table,
    rollback_cost_table,
    stall_breakdown_table,
    traffic_table,
)
from .tables import Table, bar_chart, series_chart, speedup_table

__all__ = [
    "TECHNIQUES",
    "CpuSummary",
    "MachineSummary",
    "Table",
    "bar_chart",
    "barrier_scaling_table",
    "compare_schedules",
    "cpu_scaling_table",
    "delay_arc_matrix",
    "render_schedule",
    "detailed_equalization_table",
    "equalization_table",
    "example_cycle_table",
    "false_sharing_table",
    "figure5_report",
    "hw_vs_sw_prefetch_table",
    "latency_sweep_table",
    "litmus_outcome_table",
    "lookahead_window_table",
    "prefetch_bandwidth_table",
    "protocol_table",
    "related_work_table",
    "rob_size_table",
    "slb_size_table",
    "summarize",
    "summary_table",
    "rmw_handoff_table",
    "rollback_cost_table",
    "series_chart",
    "speedup_table",
    "stall_breakdown_table",
    "traffic_table",
]

"""Axiomatic (declarative) memory-model checker — the static oracle.

The paper's four models are defined operationally twice over: by the
detailed simulator and by the interleaving-based litmus enumerator.
This package gives each model a third, *independent* definition in the
herd7 style — candidate executions as relational structures (po, rf,
co, derived fr) accepted iff the model's acyclicity axiom holds — and
exposes :func:`axiomatic_outcomes`, which returns the same
``FrozenSet[Outcome]`` shape as :meth:`LitmusTest.outcomes` so the two
can be compared set-for-set by the differential harness
(``python -m repro.verify --oracle all``).

Run ``python -m repro.analysis.axiomatic`` for the named-suite
crosscheck, per-model axiom tables, and worked witness derivations.
"""

from .axioms import ATOMICITY_AXIOM, NAMED_AXIOMS, AxiomSet, axioms_for, render_axiom_table
from .checker import (
    OracleComparison,
    accepting_witness,
    axiomatic_outcomes,
    candidate_executions,
    clear_caches,
    compare_with_enumerator,
)
from .relations import (
    CandidateExecution,
    Event,
    Relation,
    acyclic,
    build_events,
    po_edges,
    ppo_masks,
)

__all__ = [
    "ATOMICITY_AXIOM",
    "AxiomSet",
    "CandidateExecution",
    "Event",
    "NAMED_AXIOMS",
    "OracleComparison",
    "Relation",
    "accepting_witness",
    "acyclic",
    "axiomatic_outcomes",
    "axioms_for",
    "build_events",
    "candidate_executions",
    "clear_caches",
    "compare_with_enumerator",
    "po_edges",
    "ppo_masks",
    "render_axiom_table",
]

"""Candidate-execution enumeration and the axiomatic outcome oracle.

``axiomatic_outcomes(test, model)`` returns exactly the shape the
interleaving enumerator (:meth:`LitmusTest.outcomes`) returns — a
``FrozenSet[Outcome]`` — but derives it declaratively: enumerate the
(rf, co) candidate executions of the test, accept each one iff the
model's acyclicity axiom holds (see :mod:`.axioms`), and collect the
final register states of the accepted executions.

The two oracles are provably equivalent (the classical linearization
theorem, per model: a total order of all accesses extending ppo in
which every load reads the latest earlier store exists iff
``ppo ∪ rf ∪ co ∪ fr`` is acyclic), so any disagreement between them
is a bug in one of the two implementations — which is precisely what
makes this an independent leg for the differential harness.

Enumeration is pruned so the named litmus suite (including 4-thread
IRIW) checks in milliseconds:

* coherence orders are generated as interleavings of each thread's
  per-location store sequence — orders contradicting same-address
  program order are never materialized;
* a load's rf candidates are pre-filtered by per-location feasibility:
  a store po-sandwiched load can only read the latest same-thread
  store to the location or a coherence-successor of it, and never a
  coherence-successor of a same-thread store that po-follows it (each
  excluded choice closes a 2-cycle with a same-address po edge);
* an RMW's rf source is forced — its immediate coherence predecessor
  (the atomicity axiom), so RMWs contribute no choice fan-out;
* duplicate witnesses (same communication edges and final state) are
  collapsed before the per-model acyclicity pass, and a candidate
  whose outcome is already accepted for the model is skipped.

Like :meth:`LitmusTest.outcomes` — whose state-memoized search keeps
the interleaving side affordable — the axiomatic side memoizes across
calls: candidate executions per test and outcome sets per
(test, model), keyed *structurally* (tests are mutable, so identity
keys would be unsound) in bounded insertion-ordered caches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ...consistency.litmus import LitmusTest, Outcome
from ...consistency.models import ConsistencyModel
from ...sim.errors import ConfigurationError
from .relations import (
    CandidateExecution,
    Event,
    acyclic,
    build_events,
    interleavings,
    ppo_masks,
    union_masks,
)

__all__ = [
    "axiomatic_outcomes",
    "candidate_executions",
    "compare_with_enumerator",
    "clear_caches",
    "OracleComparison",
]

#: guard against adversarial hand-built tests (12 single-op threads);
#: fuzz-generated tests stay orders of magnitude below this
CANDIDATE_LIMIT = 1_000_000

#: bounded structural caches (insertion-ordered FIFO eviction)
_CACHE_MAX = 512
_candidate_cache: Dict[object, Tuple[CandidateExecution, ...]] = {}
_outcome_cache: Dict[object, FrozenSet[Outcome]] = {}


def clear_caches() -> None:
    """Drop both memoization caches (tests and benchmarks)."""
    _candidate_cache.clear()
    _outcome_cache.clear()


def _remember(cache: Dict[object, object], key: object, value) -> None:
    if len(cache) >= _CACHE_MAX:
        cache.pop(next(iter(cache)))
    cache[key] = value


def _test_key(test: LitmusTest) -> object:
    """A structural key: equal tests share cache entries, mutated
    tests miss (LitmusOp is frozen, so ops hash by value)."""
    return (tuple(tuple(thread) for thread in test.threads),
            tuple(sorted(test.initial.items())))


# ----------------------------------------------------------------------
# Candidate enumeration (model-independent)
# ----------------------------------------------------------------------

def candidate_executions(test: LitmusTest) -> Tuple[CandidateExecution, ...]:
    """All coherent (rf, co) witnesses of ``test``, deduplicated.

    Model-independent: the communication relations never mention ppo,
    so the (possibly expensive) enumeration is shared by all models —
    each model then runs only its own acyclicity pass.
    """
    key = _test_key(test)
    cached = _candidate_cache.get(key)
    if cached is not None:
        return cached

    events = build_events(test)
    n = len(events)
    initial = dict(test.initial)

    # per-location, per-thread store sequences (event ids in po order)
    stores: Dict[str, Dict[int, List[int]]] = {}
    for e in events:
        if e.is_write and e.location is not None:
            stores.setdefault(e.location, {}).setdefault(e.tid, []).append(e.eid)
    locations = sorted(stores)
    reads = [e for e in events if e.is_read]

    per_loc_orders: List[List[Tuple[int, ...]]] = [
        list(interleavings(list(stores[loc].values()))) for loc in locations]

    seen: set = set()
    out: List[CandidateExecution] = []
    examined = 0
    for combo in itertools.product(*per_loc_orders):
        loc_order: Dict[str, Tuple[int, ...]] = dict(zip(locations, combo))
        pos: Dict[int, int] = {eid: i
                               for order in combo
                               for i, eid in enumerate(order)}
        choices = _rf_choices(events, reads, loc_order, pos)
        if choices is None:
            continue
        for assignment in itertools.product(*[c for _, c in choices]):
            examined += 1
            if examined > CANDIDATE_LIMIT:
                raise ConfigurationError(
                    f"{test.name}: more than {CANDIDATE_LIMIT} candidate "
                    f"executions; this test is outside the axiomatic "
                    f"checker's litmus-sized envelope")
            candidate = _materialize(events, n, initial, loc_order, pos,
                                     choices, assignment)
            dedup = (candidate.outcome, candidate.com)
            if dedup in seen:
                continue
            seen.add(dedup)
            out.append(candidate)
    result = tuple(out)
    _remember(_candidate_cache, key, result)
    return result


def _rf_choices(
    events: Sequence[Event],
    reads: Sequence[Event],
    loc_order: Dict[str, Tuple[int, ...]],
    pos: Dict[int, int],
) -> Optional[List[Tuple[Event, List[Optional[int]]]]]:
    """Feasible rf sources per read (``None`` = initial value), pruned
    by per-location coherence against same-thread stores.  Returns
    ``None`` when some read has no feasible source under this co."""
    choices: List[Tuple[Event, List[Optional[int]]]] = []
    for r in reads:
        loc = r.location
        assert loc is not None
        order = loc_order.get(loc, ())
        # lo: the co position of the latest same-thread po-earlier
        # store (sources must be at or after it; init is out);
        # hi: the position of the earliest same-thread po-later store
        # (sources must be strictly before it)
        lo, hi = -1, len(order)
        for w in events:
            if (w.eid == r.eid or w.tid != r.tid or not w.is_write
                    or w.location != loc):
                continue
            if w.idx < r.idx:
                lo = max(lo, pos[w.eid])
            else:
                hi = min(hi, pos[w.eid])
        if r.op.op == "U":
            p = pos[r.eid]
            src = order[p - 1] if p > 0 else None
            src_pos = -1 if src is None else pos[src]
            if src_pos < lo or src_pos >= hi:
                return None
            opts: List[Optional[int]] = [src]
        else:
            opts = [None] if lo < 0 else []
            opts.extend(order[i] for i in range(max(lo, 0), hi))
            if not opts:
                return None
        choices.append((r, opts))
    return choices


def _materialize(
    events: Sequence[Event],
    n: int,
    initial: Dict[str, int],
    loc_order: Dict[str, Tuple[int, ...]],
    pos: Dict[int, int],
    choices: Sequence[Tuple[Event, Sequence[Optional[int]]]],
    assignment: Sequence[Optional[int]],
) -> CandidateExecution:
    """Build the communication bitmasks and outcome for one witness.

    Edges are the transitive generators only — consecutive co pairs,
    rf, and each plain load's from-read to the *next* store after its
    source — which have the same reachability (hence the same cycles)
    as the full relations.
    """
    masks = [0] * n
    for order in loc_order.values():
        for a, b in zip(order, order[1:]):
            masks[a] |= 1 << b
    regs: Dict[str, int] = {}
    rf_pairs: List[Tuple[int, int]] = []
    for (r, _), src in zip(choices, assignment):
        loc = r.location
        assert loc is not None
        if src is None:
            regs[r.op.reg] = initial.get(loc, 0)
        else:
            regs[r.op.reg] = events[src].op.value
            masks[src] |= 1 << r.eid
            rf_pairs.append((r.eid, src))
        if r.op.op == "R":
            order = loc_order.get(loc, ())
            nxt_pos = (pos[src] if src is not None else -1) + 1
            if nxt_pos < len(order):
                masks[r.eid] |= 1 << order[nxt_pos]
    return CandidateExecution(
        outcome=tuple(sorted(regs.items())),
        com=tuple(masks),
        rf=tuple(sorted(rf_pairs)),
        co=tuple(sorted(loc_order.items())),
    )


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------

def axiomatic_outcomes(test: LitmusTest,
                       model: ConsistencyModel) -> FrozenSet[Outcome]:
    """The outcome set the model's axioms admit for ``test``.

    Same shape as :meth:`LitmusTest.outcomes`; memoized per
    (test structure, model name).
    """
    key = (_test_key(test), model.name)
    cached = _outcome_cache.get(key)
    if cached is not None:
        return cached
    candidates = candidate_executions(test)
    ppo = ppo_masks(build_events(test), model)
    accepted: set = set()
    for candidate in candidates:
        if candidate.outcome in accepted:
            continue
        if acyclic(union_masks(ppo, candidate.com)):
            accepted.add(candidate.outcome)
    result = frozenset(accepted)
    _remember(_outcome_cache, key, result)
    return result


def accepting_witness(test: LitmusTest, model: ConsistencyModel,
                      outcome: Outcome) -> Optional[CandidateExecution]:
    """An accepted candidate with the given outcome, if any (the
    explanation the CLI prints for worked derivations)."""
    ppo = ppo_masks(build_events(test), model)
    for candidate in candidate_executions(test):
        if candidate.outcome != outcome:
            continue
        if acyclic(union_masks(ppo, candidate.com)):
            return candidate
    return None


@dataclass(frozen=True)
class OracleComparison:
    """Axiomatic vs interleaving enumerator on one (test, model)."""

    test_name: str
    model: str
    axiomatic: FrozenSet[Outcome]
    enumerated: FrozenSet[Outcome]

    @property
    def agree(self) -> bool:
        return self.axiomatic == self.enumerated

    @property
    def missing(self) -> FrozenSet[Outcome]:
        """Outcomes the interleaver permits but the axioms reject."""
        return self.enumerated - self.axiomatic

    @property
    def extra(self) -> FrozenSet[Outcome]:
        """Outcomes the axioms admit but the interleaver never reaches."""
        return self.axiomatic - self.enumerated

    def describe(self) -> str:
        mark = "ok  " if self.agree else "FAIL"
        text = (f"[{mark}] {self.test_name:>20} under {self.model:>5}: "
                f"{len(self.axiomatic)} axiomatic / "
                f"{len(self.enumerated)} enumerated outcome(s)")
        if not self.agree:
            text += (f" — {len(self.missing)} missing, "
                     f"{len(self.extra)} extra")
        return text


def compare_with_enumerator(test: LitmusTest,
                            model: ConsistencyModel) -> OracleComparison:
    """Cross-check the two independent oracles on one test."""
    return OracleComparison(
        test_name=test.name,
        model=model.name,
        axiomatic=axiomatic_outcomes(test, model),
        enumerated=test.outcomes(model),
    )

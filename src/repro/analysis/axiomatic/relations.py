"""Relational structures for the axiomatic (herd-style) checker.

A *candidate execution* of a litmus test is a set of events plus a
handful of binary relations over them:

* **po** — program order: same thread, earlier index first;
* **ppo** — *preserved* program order: the po edges a model enforces.
  Exactly the relation the interleaving enumerator builds from
  ``ConsistencyModel.delay_arc``: an edge when the two accesses share
  an address (local data dependences are always observed) or when the
  model draws a delay arc between their :class:`AccessClass`es;
* **rf** — reads-from: which store (or the initial value) each load
  observes;
* **co** — coherence order: a total order on the stores to each
  location, consistent with each thread's program order to that
  location;
* **fr** — from-reads, *derived* as ``rf⁻¹ ; co``: a load is ordered
  before every store that coherence-follows the store it read from.

Everything here is sized for litmus tests (``LitmusTest`` caps a test
at 12 accesses), so relations are adjacency bitmasks over event ids
and acyclicity is a 12-node DFS.

Atomic read-modify-writes are modelled as a *single* event that both
reads and writes.  Its read half is forced to observe its immediate
coherence predecessor, which is precisely the classical ``fr ; co``
atomicity exclusion: no foreign store may intervene between the value
an RMW reads and the value it writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...consistency.litmus import LitmusOp, LitmusTest, Outcome
from ...consistency.models import ConsistencyModel

__all__ = [
    "Event",
    "CandidateExecution",
    "acyclic",
    "build_events",
    "po_edges",
    "ppo_masks",
]


@dataclass(frozen=True)
class Event:
    """One access (or fence) of a litmus test, as a relation node."""

    eid: int            # global event id == bit position in masks
    tid: int            # thread index
    idx: int            # index within the thread
    op: LitmusOp

    @property
    def location(self) -> Optional[str]:
        return None if self.op.op == "F" else self.op.addr

    @property
    def is_read(self) -> bool:
        return self.op.op in ("R", "U")

    @property
    def is_write(self) -> bool:
        return self.op.op in ("W", "U")

    @property
    def is_fence(self) -> bool:
        return self.op.op == "F"

    def describe(self) -> str:
        return f"e{self.eid}=T{self.tid}.{self.idx}:{self.op.describe()}"


@dataclass(frozen=True)
class CandidateExecution:
    """One (rf, co) witness: communication edges plus the final state.

    ``com`` is the union rf ∪ co ∪ fr as successor bitmasks — by
    construction it is acyclic on its own (all three relations agree
    with the per-location coherence order), so a model accepts the
    execution iff ``ppo ∪ com`` stays acyclic.
    """

    outcome: Outcome
    com: Tuple[int, ...]
    #: rf as a map read-eid -> write-eid (absent key = initial value)
    rf: Tuple[Tuple[int, int], ...]
    #: co as per-location event-id orders, for explanations
    co: Tuple[Tuple[str, Tuple[int, ...]], ...]

    def describe(self, events: Sequence[Event]) -> str:
        rf_text = ", ".join(
            f"e{w}->e{r}" for r, w in self.rf) or "all-from-init"
        co_text = "; ".join(
            f"{loc}: " + " -> ".join(f"e{e}" for e in order)
            for loc, order in self.co if len(order) > 1)
        out = ", ".join(f"{reg}={val}" for reg, val in self.outcome)
        return f"({out})  rf: {rf_text}" + (f"  co: {co_text}" if co_text else "")


def build_events(test: LitmusTest) -> List[Event]:
    """Flatten a litmus test into numbered events (po-major order)."""
    events: List[Event] = []
    for tid, thread in enumerate(test.threads):
        for idx, op in enumerate(thread):
            events.append(Event(eid=len(events), tid=tid, idx=idx, op=op))
    return events


def po_edges(events: Sequence[Event]) -> List[Tuple[int, int]]:
    """Full program order as an edge list (same thread, index order)."""
    return [(a.eid, b.eid)
            for a in events for b in events
            if a.tid == b.tid and a.idx < b.idx]


def ppo_masks(events: Sequence[Event], model: ConsistencyModel) -> List[int]:
    """Preserved program order under ``model`` as successor bitmasks.

    Mirrors the interleaving enumerator's predecessor relation exactly:
    an edge a -> b (same thread, a first) when the accesses share an
    address or when ``model.delay_arc(class(a), class(b))`` holds.
    """
    classes = [e.op.access_class() for e in events]
    masks = [0] * len(events)
    for a in events:
        for b in events:
            if a.tid != b.tid or a.idx >= b.idx:
                continue
            if a.op.addr == b.op.addr or model.delay_arc(classes[a.eid],
                                                         classes[b.eid]):
                masks[a.eid] |= 1 << b.eid
    return masks


def acyclic(succ: Sequence[int]) -> bool:
    """Is the relation (successor bitmasks) free of directed cycles?"""
    n = len(succ)
    color = [0] * n  # 0 = unvisited, 1 = on stack, 2 = done
    for root in range(n):
        if color[root]:
            continue
        color[root] = 1
        stack: List[List[int]] = [[root, succ[root]]]
        while stack:
            node, remaining = stack[-1]
            if remaining:
                nxt = (remaining & -remaining).bit_length() - 1
                stack[-1][1] = remaining & (remaining - 1)
                if color[nxt] == 1:
                    return False
                if color[nxt] == 0:
                    color[nxt] = 1
                    stack.append([nxt, succ[nxt]])
            else:
                color[node] = 2
                stack.pop()
    return True


def union_masks(a: Sequence[int], b: Sequence[int]) -> List[int]:
    return [x | y for x, y in zip(a, b)]


def interleavings(seqs: Sequence[Sequence[int]]):
    """All merges of the given sequences that preserve each sequence's
    internal order (the per-location coherence-order candidates)."""
    live = [list(s) for s in seqs if s]
    total = sum(len(s) for s in live)
    positions = [0] * len(live)
    prefix: List[int] = []

    def rec():
        if len(prefix) == total:
            yield tuple(prefix)
            return
        for i, s in enumerate(live):
            if positions[i] >= len(s):
                continue
            prefix.append(s[positions[i]])
            positions[i] += 1
            yield from rec()
            positions[i] -= 1
            prefix.pop()

    yield from rec()


class Relation:
    """A named edge set over events — the explanation-friendly view
    used by the CLI and docs (the checker itself works on bitmasks)."""

    def __init__(self, name: str,
                 edges: Sequence[Tuple[int, int]] = ()) -> None:
        self.name = name
        self.edges = sorted(set(edges))

    @classmethod
    def from_masks(cls, name: str, masks: Sequence[int]) -> "Relation":
        edges = []
        for src, mask in enumerate(masks):
            while mask:
                dst = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                edges.append((src, dst))
        return cls(name, edges)

    def describe(self) -> str:
        pairs = ", ".join(f"e{a}->e{b}" for a, b in self.edges) or "(empty)"
        return f"{self.name}: {pairs}"


def event_table(events: Sequence[Event]) -> str:
    return "\n".join("  " + e.describe() for e in events)


def location_writes(events: Sequence[Event]) -> Dict[str, List[Event]]:
    """Writes grouped by location, in event order."""
    out: Dict[str, List[Event]] = {}
    for e in events:
        if e.is_write and e.location is not None:
            out.setdefault(e.location, []).append(e)
    return out

"""``python -m repro.analysis.axiomatic`` — declarative-oracle CLI.

Typical runs::

    # named suite, all four paper models, axiomatic vs enumerator
    python -m repro.analysis.axiomatic --all-models

    # one test under one model, with the axioms and a witness per
    # admitted outcome
    python -m repro.analysis.axiomatic SB --model RC --verbose

    # add a seeded fuzz slice on top of the named suite
    python -m repro.analysis.axiomatic --fuzz 100 --seed 1

Exit status is 0 when every axiomatic outcome set exactly equals the
interleaving enumerator's, 1 on any disagreement.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from ...consistency.litmus import STANDARD_TESTS, LitmusTest
from ...consistency.models import ALL_MODELS, ConsistencyModel, get_model
from .axioms import render_axiom_table
from .checker import accepting_witness, compare_with_enumerator
from .relations import build_events, event_table


def _resolve_tests(names: Sequence[str]) -> List[LitmusTest]:
    if not names:
        return [factory() for factory in STANDARD_TESTS.values()]
    tests = []
    for name in names:
        if name not in STANDARD_TESTS:
            raise SystemExit(
                f"unknown litmus test {name!r}; available: "
                f"{', '.join(sorted(STANDARD_TESTS))}")
        tests.append(STANDARD_TESTS[name]())
    return tests


def _verbose_report(test: LitmusTest, model: ConsistencyModel) -> str:
    """Events plus one accepted witness per admitted outcome."""
    events = build_events(test)
    lines = [f"{test.name} under {model.name}:", event_table(events)]
    comparison = compare_with_enumerator(test, model)
    for outcome in sorted(comparison.axiomatic):
        witness = accepting_witness(test, model, outcome)
        if witness is not None:
            lines.append("  admitted " + witness.describe(events))
    for outcome in sorted(comparison.enumerated - comparison.axiomatic):
        out = ", ".join(f"{r}={v}" for r, v in outcome)
        lines.append(f"  MISSING ({out}) — enumerator permits, axioms reject")
    for outcome in sorted(comparison.axiomatic - comparison.enumerated):
        out = ", ".join(f"{r}={v}" for r, v in outcome)
        lines.append(f"  EXTRA ({out}) — axioms admit, enumerator never reaches")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.axiomatic",
        description="Axiomatic (herd-style) checker: declarative outcome "
                    "sets cross-validated against the interleaving "
                    "enumerator.")
    parser.add_argument("tests", nargs="*",
                        help="named litmus tests (default: the whole "
                             "standard suite)")
    parser.add_argument("--model", action="append", default=[],
                        metavar="NAME",
                        help="consistency model (repeatable; default: the "
                             "paper's SC PC WC RC)")
    parser.add_argument("--all-models", action="store_true",
                        help="check under SC, PC, WC, and RC")
    parser.add_argument("--fuzz", type=int, default=0, metavar="N",
                        help="also crosscheck N seeded random litmus tests")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed for --fuzz (default 0)")
    parser.add_argument("--axioms", action="store_true",
                        help="print each model's axiom set and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="print events and an accepted witness per "
                             "admitted outcome")
    args = parser.parse_args(argv)

    models = ([get_model(n) for n in args.model]
              if args.model and not args.all_models else list(ALL_MODELS))
    if args.axioms:
        print(render_axiom_table(models))
        return 0

    tests = _resolve_tests(args.tests)
    if args.fuzz:
        from ...sim.sweep import derive_seed
        from ...verify.generator import generate_litmus
        tests += [generate_litmus(derive_seed(args.seed, i, "fuzz"))
                  for i in range(args.fuzz)]

    print(render_axiom_table(models))
    print()
    print("axiomatic vs interleaving enumerator "
          "(outcome sets must be identical):")
    failures = 0
    for test in tests:
        for model in models:
            comparison = compare_with_enumerator(test, model)
            print("  " + comparison.describe())
            if not comparison.agree:
                failures += 1
            if args.verbose:
                print(_verbose_report(test, model))
    if failures:
        print(f"axiomatic: FAILED ({failures} disagreeing "
              f"(test, model) pair(s))")
        return 1
    print(f"axiomatic: OK ({len(tests)} test(s) x {len(models)} model(s), "
          f"all outcome sets identical)")
    return 0

"""Per-model axioms: the declarative face of the model zoo.

Each consistency model is characterized by one acyclicity axiom over a
candidate execution's relations.  Writing ``com = rf ∪ co ∪ fr``:

    accept(execution)  iff  acyclic( ppo(model) ∪ com )

where ``ppo(model)`` — the *preserved program order* — is derived
mechanically from the model's operational delay-arc relation over
:class:`~repro.consistency.access_class.AccessClass` pairs, always
augmented with same-address program order (local data dependences).
For SC, ppo is all of po and the axiom is the classical

    acyclic(po ∪ rf ∪ co ∪ fr)

characterization of sequential consistency; the weaker models keep the
same communication relations and simply preserve fewer po edges.  RMW
atomicity is structural: an atomic read-modify-write is one event whose
read half observes its immediate coherence predecessor, which is the
``fr ; co`` exclusion (no foreign store between the value read and the
value written).

Because ``ppo`` is *derived* from ``delay_arc``, any model registered
with :mod:`repro.consistency.models` — including RCsc, DRF0, and
future TSO/PSO-style delay-arc variants — is checkable here with no
axiomatic-side changes; the table below only adds the human-readable
statement of each paper model's axiom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...consistency.models import ConsistencyModel

ATOMICITY_AXIOM = ("rmw-atomicity: an RMW reads its immediate co-predecessor "
                   "(empty fr;co into the RMW's write)")


@dataclass(frozen=True)
class AxiomSet:
    """The declarative specification of one consistency model."""

    model: str
    #: which program-order edges the model preserves
    ppo_rule: str
    #: the acceptance condition over the candidate execution
    axiom: str
    notes: str = ""

    def render(self) -> str:
        lines = [f"{self.model}:",
                 f"  ppo   = {self.ppo_rule}",
                 f"  axiom = {self.axiom}",
                 f"          {ATOMICITY_AXIOM}"]
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


#: the paper's models, with their axioms spelled out (Figure 1's rows
#: turned into acyclicity conditions)
NAMED_AXIOMS: Dict[str, AxiomSet] = {
    "SC": AxiomSet(
        model="SC",
        ppo_rule="po (every program-order pair is preserved)",
        axiom="acyclic(po ∪ rf ∪ co ∪ fr)",
        notes="Lamport SC: one total order of all accesses",
    ),
    "PC": AxiomSet(
        model="PC",
        ppo_rule="po \\ (pure-store -> pure-load), plus same-address po",
        axiom="acyclic(ppo ∪ rf ∪ co ∪ fr)",
        notes="loads may bypass earlier stores; RMWs preserve both halves",
    ),
    "WC": AxiomSet(
        model="WC",
        ppo_rule="{(a,b) in po : a or b is a synchronization access}, "
                 "plus same-address po",
        axiom="acyclic(ppo ∪ rf ∪ co ∪ fr)",
        notes="every sync access is a two-way fence (WCsc)",
    ),
    "RC": AxiomSet(
        model="RC",
        ppo_rule="{(a,b) in po : a is an acquire or b is a release}, "
                 "plus same-address po",
        axiom="acyclic(ppo ∪ rf ∪ co ∪ fr)",
        notes="RCpc: release -> acquire stays unordered (footnote 1)",
    ),
    "RCsc": AxiomSet(
        model="RCsc",
        ppo_rule="RC's ppo plus sync -> sync pairs, plus same-address po",
        axiom="acyclic(ppo ∪ rf ∪ co ∪ fr)",
        notes="syncs are sequentially consistent among themselves",
    ),
    "DRF0": AxiomSet(
        model="DRF0",
        ppo_rule="{(a,b) in po : a or b is a synchronization access}, "
                 "plus same-address po",
        axiom="acyclic(ppo ∪ rf ∪ co ∪ fr)",
        notes="operationally coincides with WC (paper, Section 2)",
    ),
}


def axioms_for(model: ConsistencyModel) -> AxiomSet:
    """The axiom set for ``model``; unregistered models fall back to
    the generic delay-arc derivation (still sound and complete against
    the interleaving semantics — only the prose is generic)."""
    try:
        return NAMED_AXIOMS[model.name]
    except KeyError:
        return AxiomSet(
            model=model.name,
            ppo_rule="{(a,b) in po : delay_arc(class(a), class(b))}, "
                     "plus same-address po",
            axiom="acyclic(ppo ∪ rf ∪ co ∪ fr)",
            notes="derived mechanically from the model's delay arcs",
        )


def render_axiom_table(models) -> str:
    """The axiom summary the CLI and docs print."""
    return "\n\n".join(axioms_for(m).render() for m in models)

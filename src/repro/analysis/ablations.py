"""Ablation studies over the design choices DESIGN.md calls out.

Each ablation varies one structural parameter of the implementation
while holding the workload fixed, quantifying how much each mechanism
contributes:

* **lookahead window** (load/store reservation-station size) — bounds
  the hardware prefetcher, exactly the limitation Section 6 contrasts
  with software prefetching;
* **hardware vs software prefetch** — instruction overhead vs window;
* **speculative-load buffer size** — bounds how many loads can be in
  the speculation window at once;
* **reorder buffer size** — bounds total lookahead;
* **prefetch issue bandwidth** — prefetches per cycle;
* **update vs invalidate protocol** — read-exclusive prefetching is
  impossible under update protocols (Section 3.2).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..consistency.models import RC, SC
from ..cpu.config import ProcessorConfig
from ..memory.types import CacheConfig
from ..system.machine import run_workload
from ..workloads.paper_examples import example1_program, example2_program
from ..workloads.synthetic import delayed_store_chain
from .tables import Table


def lookahead_window_table(
    window_sizes: Sequence[int] = (2, 4, 8, 16),
    num_stores: int = 12,
) -> Table:
    """Hardware prefetch benefit vs the lookahead window (Section 6)."""
    program = delayed_store_chain(num_stores=num_stores)
    table = Table(
        f"Ablation: hardware prefetch window ({num_stores} delayed stores, SC)",
        ["LS reservation station size", "cycles", "prefetches issued"],
    )
    for size in window_sizes:
        pconfig = ProcessorConfig(ls_rs_size=size,
                                  store_buffer_size=max(size, 2),
                                  rob_size=64)
        result = run_workload([program], model=SC, prefetch=True,
                              processor=pconfig,
                              initial_memory={0x100: 0},
                              max_cycles=1_000_000)
        table.add_row(size, result.cycles,
                      result.counter("cpu0/prefetcher/issued"))
    table.add_note("a small window starves the prefetcher: accesses beyond "
                   "the reservation station cannot be seen, so their misses "
                   "stay serialized")
    return table


def hw_vs_sw_prefetch_table(num_stores: int = 12,
                            small_window: int = 3) -> Table:
    """Hardware vs software prefetch (Section 6's trade-off)."""
    table = Table(
        f"Ablation: hardware vs software prefetch "
        f"({num_stores} delayed stores, SC)",
        ["configuration", "cycles", "instructions retired"],
    )
    plain = delayed_store_chain(num_stores=num_stores)
    with_sw = delayed_store_chain(num_stores=num_stores, software_prefetch=True)
    small = ProcessorConfig(ls_rs_size=small_window, rob_size=64,
                            store_buffer_size=max(small_window, 2))
    big = ProcessorConfig(ls_rs_size=32, rob_size=64, store_buffer_size=32)

    configs = [
        ("no prefetch", plain, False, big),
        (f"hardware, window={small_window}", plain, True, small),
        ("hardware, window=32", plain, True, big),
        (f"software, window={small_window}", with_sw, False, small),
        ("hardware+software", with_sw, True, small),
    ]
    for name, program, hw, pconfig in configs:
        result = run_workload([program], model=SC, prefetch=hw,
                              processor=pconfig,
                              initial_memory={0x100: 0},
                              max_cycles=1_000_000)
        table.add_row(name, result.cycles,
                      result.counter("cpu0/instructions_retired"))
    table.add_note("software prefetching is window-unlimited but costs "
                   "instruction slots; the two 'should ... complement one "
                   "another' (Section 6)")
    return table


def slb_size_table(sizes: Sequence[int] = (1, 2, 4, 16)) -> Table:
    """Speculation benefit vs speculative-load-buffer capacity."""
    wl = example2_program()
    table = Table(
        "Ablation: speculative-load buffer size (example2, SC)",
        ["SLB entries", "cycles"],
    )
    for size in sizes:
        pconfig = ProcessorConfig(slb_size=size)
        result = run_workload([wl.program], model=SC, prefetch=True,
                              speculation=True, processor=pconfig,
                              initial_memory=wl.initial_memory,
                              warm_lines=wl.warm_lines)
        table.add_row(size, result.cycles)
    table.add_note("a single-entry buffer serializes the speculation window "
                   "back toward the conventional implementation")
    return table


def rob_size_table(sizes: Sequence[int] = (4, 8, 16, 32)) -> Table:
    """Total lookahead (reorder buffer) vs achieved overlap."""
    program = delayed_store_chain(num_stores=8)
    table = Table(
        "Ablation: reorder buffer size (8 delayed stores, SC, both techniques)",
        ["ROB entries", "cycles"],
    )
    for size in sizes:
        pconfig = ProcessorConfig(rob_size=size)
        result = run_workload([program], model=SC, prefetch=True,
                              speculation=True, processor=pconfig,
                              initial_memory={0x100: 0},
                              max_cycles=1_000_000)
        table.add_row(size, result.cycles)
    return table


def prefetch_bandwidth_table(rates: Sequence[int] = (1, 2, 4)) -> Table:
    """Prefetches issued per cycle vs overlap achieved."""
    program = delayed_store_chain(num_stores=12)
    table = Table(
        "Ablation: prefetch issue bandwidth (12 delayed stores, SC)",
        ["prefetches/cycle", "cycles"],
    )
    for rate in rates:
        pconfig = ProcessorConfig(prefetches_per_cycle=rate, ls_rs_size=32,
                                  store_buffer_size=32, rob_size=64)
        result = run_workload([program], model=SC, prefetch=True,
                              processor=pconfig,
                              initial_memory={0x100: 0},
                              max_cycles=1_000_000)
        table.add_row(rate, result.cycles)
    return table


def false_sharing_table(updates: int = 4) -> Table:
    """The price of conservative line-granular detection (footnote 2).

    Two CPUs increment disjoint counters.  Packed into one line, every
    remote write invalidates the other CPU's speculative loads even
    though their *words* were untouched; padding the counters apart
    removes the interference entirely.
    """
    from ..workloads.synthetic import false_sharing_workload

    table = Table(
        "Ablation: false sharing vs speculation (2 CPUs, disjoint counters)",
        ["layout", "cycles", "slb squashes", "correct"],
    )
    for padded in (False, True):
        wl = false_sharing_workload(num_cpus=2, updates=updates, padded=padded)
        result = run_workload(wl.programs, model=SC, prefetch=True,
                              speculation=True,
                              initial_memory=wl.initial_memory,
                              max_cycles=2_000_000)
        squashes = sum(
            result.counter(f"cpu{c}/slb/squashes") for c in range(2))
        ok = all(result.machine.read_word(a) == e
                 for a, e in wl.expectations)
        table.add_row("packed (one line)" if not padded else "padded (own lines)",
                      result.cycles, squashes, "yes" if ok else "NO")
    table.add_note("footnote 2: invalidations due to false sharing squash "
                   "conservatively — correctness is kept, cycles are paid")
    return table


def protocol_table(num_stores: int = 4) -> Table:
    """Invalidate vs update protocol (Section 3.2).

    Under the update protocol a read-exclusive prefetch is impossible;
    write prefetching degrades to read prefetching and delayed stores
    stay exposed.  (The workload uses flag-based synchronization — the
    update-protocol model supports plain loads/stores only.)
    """
    from ..isa.program import ProgramBuilder

    b = ProgramBuilder()
    for i in range(num_stores):
        b.store_imm(i + 1, addr=0x200 + 4 * i, tag=f"w{i}")
    b.release_store_imm(1, addr=0x300, tag="flag")
    program = b.build()

    table = Table(
        f"Ablation: coherence protocol vs prefetch effectiveness "
        f"({num_stores} stores + release flag, SC)",
        ["protocol", "baseline", "prefetch", "speedup"],
    )
    for protocol in ("invalidate", "update"):
        cache = CacheConfig(protocol=protocol)
        cycles = {}
        for tech, pf in (("base", False), ("pf", True)):
            result = run_workload([program], model=SC, prefetch=pf,
                                  cache=cache, max_cycles=1_000_000)
            cycles[tech] = result.cycles
        table.add_row(protocol, cycles["base"], cycles["pf"],
                      round(cycles["base"] / cycles["pf"], 2))
    table.add_note("'to be effective for writes, prefetching requires an "
                   "invalidation-based coherence scheme' (Section 3.2)")
    return table

"""Run summaries: digest a RunResult's statistics into readable reports.

Turns the raw counter soup into the quantities an architect actually
reads — IPC, squash rates, prefetch effectiveness, cache behaviour,
network traffic — per CPU and machine-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..system.machine import RunResult
from .tables import Table


@dataclass
class CpuSummary:
    cpu: int
    instructions_retired: int
    instructions_squashed: int
    squash_events: int
    branch_mispredicts: int
    loads: int
    stores: int
    rmws: int
    store_forwards: int
    rs_stalls: int
    sb_stalls: int
    prefetches_issued: int
    slb_squashes: int
    slb_reissues: int
    avg_load_latency: float
    avg_store_latency: float

    def ipc(self, cycles: int) -> float:
        return self.instructions_retired / cycles if cycles else 0.0

    def squash_overhead(self) -> float:
        total = self.instructions_retired + self.instructions_squashed
        return self.instructions_squashed / total if total else 0.0


@dataclass
class MachineSummary:
    cycles: int
    cpus: List[CpuSummary] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    net_messages: int = 0
    dir_invals: int = 0
    dir_recalls: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_ipc(self) -> float:
        retired = sum(c.instructions_retired for c in self.cpus)
        return retired / self.cycles if self.cycles else 0.0


def summarize(result: RunResult) -> MachineSummary:
    """Build a :class:`MachineSummary` from a finished run."""
    stats = result.stats
    num_cpus = len(result.machine.processors)

    def counter(name: str) -> int:
        return stats.counter(name).value

    summary = MachineSummary(
        cycles=result.cycles,
        net_messages=counter("net/messages"),
        dir_invals=counter("dir/invals_sent"),
        dir_recalls=counter("dir/recalls_sent"),
    )
    for cpu in range(num_cpus):
        p = f"cpu{cpu}"
        load_hist = stats.histogram(f"{p}/lsu/load_latency")
        store_hist = stats.histogram(f"{p}/lsu/store_latency")
        summary.cpus.append(CpuSummary(
            cpu=cpu,
            instructions_retired=counter(f"{p}/instructions_retired"),
            instructions_squashed=counter(f"{p}/instructions_squashed"),
            squash_events=counter(f"{p}/squash_events"),
            branch_mispredicts=counter(f"{p}/branch_mispredicts"),
            loads=counter(f"{p}/lsu/loads"),
            stores=counter(f"{p}/lsu/stores"),
            rmws=counter(f"{p}/lsu/rmws"),
            store_forwards=counter(f"{p}/lsu/store_forwards"),
            rs_stalls=counter(f"{p}/lsu/rs_consistency_stalls"),
            sb_stalls=counter(f"{p}/lsu/sb_consistency_stalls"),
            prefetches_issued=counter(f"{p}/prefetcher/issued"),
            slb_squashes=counter(f"{p}/slb/squashes"),
            slb_reissues=counter(f"{p}/slb/reissues"),
            avg_load_latency=round(load_hist.mean, 2),
            avg_store_latency=round(store_hist.mean, 2),
        ))
        summary.cache_hits += counter(f"cache{cpu}/hits")
        summary.cache_misses += counter(f"cache{cpu}/misses")
    return summary


def summary_table(result: RunResult, title: str = "run summary") -> Table:
    """Render the per-CPU digest as a table."""
    s = summarize(result)
    table = Table(
        f"{title} — {s.cycles} cycles, machine IPC {s.total_ipc:.2f}, "
        f"cache hit rate {s.hit_rate:.0%}, {s.net_messages} messages",
        ["cpu", "retired", "IPC", "squashed", "mispredicts",
         "ld/st/rmw", "forwards", "stalls (rs/sb)", "prefetches",
         "slb squash/reissue", "avg ld lat"],
    )
    for c in s.cpus:
        table.add_row(
            c.cpu,
            c.instructions_retired,
            round(c.ipc(s.cycles), 2),
            c.instructions_squashed,
            c.branch_mispredicts,
            f"{c.loads}/{c.stores}/{c.rmws}",
            c.store_forwards,
            f"{c.rs_stalls}/{c.sb_stalls}",
            c.prefetches_issued,
            f"{c.slb_squashes}/{c.slb_reissues}",
            c.avg_load_latency,
        )
    return table

"""Plain-text tables and charts for experiment reports.

No plotting dependencies: every figure the paper implies is rendered as
an aligned text table or an ASCII bar chart, which also makes the
benchmark output diffable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


@dataclass
class Table:
    """A titled grid with a header row."""

    title: str
    columns: Sequence[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> "Table":
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))
        return self

    def add_note(self, note: str) -> "Table":
        self.notes.append(note)
        return self

    def cell(self, row: int, column: str) -> Cell:
        return self.rows[row][list(self.columns).index(column)]

    def column_values(self, column: str) -> List[Cell]:
        idx = list(self.columns).index(column)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        def fmt(cell: Cell) -> str:
            if cell is None:
                return "-"
            if isinstance(cell, float):
                return f"{cell:.2f}"
            return str(cell)

        grid = [list(self.columns)] + [[fmt(c) for c in row] for row in self.rows]
        widths = [max(len(row[i]) for row in grid) for i in range(len(self.columns))]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(grid[0], widths)))
        lines.append(sep)
        for row in grid[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def bar_chart(
    title: str,
    data: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart, scaled to the max value."""
    if not data:
        return f"{title}\n(no data)"
    label_width = max(len(k) for k in data)
    peak = max(data.values()) or 1.0
    lines = [title, "=" * len(title)]
    for label, value in data.items():
        bar = "#" * max(1 if value > 0 else 0, int(round(value / peak * width)))
        suffix = f" {value:g}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def series_chart(
    title: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    width: int = 12,
) -> str:
    """Render multiple y-series against shared x values as a table.

    (The paper has no plots; sweeps print as aligned series so the
    crossover structure is readable.)
    """
    table = Table(title, [x_label] + list(series.keys()))
    for i, x in enumerate(xs):
        table.add_row(x, *(s[i] for s in series.values()))
    return table.render()


def speedup_table(
    title: str,
    baseline: Mapping[str, float],
    improved: Mapping[str, float],
    baseline_name: str = "baseline",
    improved_name: str = "improved",
) -> Table:
    """A baseline-vs-improved table with a speedup column."""
    table = Table(title, ["configuration", baseline_name, improved_name, "speedup"])
    for key in baseline:
        b, i = baseline[key], improved.get(key)
        speedup = (b / i) if i else None
        table.add_row(key, b, i, speedup)
    return table

"""Scaling studies: how the techniques behave as the machine grows.

The paper targets "large scale shared-memory multiprocessors"; these
experiments check that the techniques' benefit survives (and the
models stay equalized) as processor count grows, on workloads with and
without sharing.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..consistency.models import RC, SC
from ..system.machine import run_workload
from ..workloads.synthetic import barrier_workload, critical_section_workload
from .tables import Table


def cpu_scaling_table(cpu_counts: Sequence[int] = (1, 2, 4),
                      iterations: int = 2) -> Table:
    """Uncontended critical sections per CPU, growing the machine."""
    table = Table(
        "Scaling: private critical sections, SC, growing CPU count",
        ["CPUs", "baseline", "both techniques", "speedup", "correct"],
    )
    for n in cpu_counts:
        cycles: Dict[str, int] = {}
        ok = True
        for tech, (pf, spec) in (("base", (False, False)),
                                 ("both", (True, True))):
            wl = critical_section_workload(num_cpus=n, iterations=iterations,
                                           shared_counters=3, private=True)
            result = run_workload(wl.programs, model=SC, prefetch=pf,
                                  speculation=spec,
                                  initial_memory=wl.initial_memory,
                                  max_cycles=5_000_000)
            cycles[tech] = result.cycles
            ok = ok and all(result.machine.read_word(a) == e
                            for a, e in wl.expectations)
        table.add_row(n, cycles["base"], cycles["both"],
                      round(cycles["base"] / cycles["both"], 2),
                      "yes" if ok else "NO")
    table.add_note("per-CPU work is constant; cycles should stay roughly "
                   "flat and the speedup stable as CPUs are added")
    return table


def barrier_scaling_table(cpu_counts: Sequence[int] = (2, 3, 4),
                          phases: int = 2) -> Table:
    """Barrier-phased SPMD kernel: real global synchronization."""
    table = Table(
        "Scaling: barrier-phased kernel (SC vs RC, both techniques)",
        ["CPUs", "SC base", "SC both", "RC both", "correct"],
    )
    for n in cpu_counts:
        cycles: Dict[str, int] = {}
        ok = True
        for key, model, pf, spec in (
            ("sc_base", SC, False, False),
            ("sc_both", SC, True, True),
            ("rc_both", RC, True, True),
        ):
            wl = barrier_workload(num_cpus=n, phases=phases)
            result = run_workload(wl.programs, model=model, prefetch=pf,
                                  speculation=spec,
                                  initial_memory=wl.initial_memory,
                                  max_cycles=10_000_000)
            cycles[key] = result.cycles
            ok = ok and all(result.machine.read_word(a) == e
                            for a, e in wl.expectations)
        table.add_row(n, cycles["sc_base"], cycles["sc_both"],
                      cycles["rc_both"], "yes" if ok else "NO")
    table.add_note("barriers serialize globally, so cycles grow with CPU "
                   "count; the techniques keep SC within reach of RC")
    return table

"""Scaling studies: how the techniques behave as the machine grows.

The paper targets "large scale shared-memory multiprocessors"; these
experiments check that the techniques' benefit survives (and the
models stay equalized) as processor count grows, on workloads with and
without sharing.  Both tables fan out their configuration cells
through :func:`repro.sim.sweep.sweep_map`, so a multicore host can run
them with ``jobs > 1``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..consistency.models import RC, SC, get_model
from ..sim.sweep import sweep_map
from ..system.machine import run_workload
from ..workloads.synthetic import barrier_workload, critical_section_workload
from .tables import Table


def _scaling_cell(item: Tuple[int, bool, bool, int]) -> Tuple[int, bool]:
    """Sweep worker: one private-critical-section run at ``n`` CPUs."""
    n, pf, spec, iterations = item
    wl = critical_section_workload(num_cpus=n, iterations=iterations,
                                   shared_counters=3, private=True)
    result = run_workload(wl.programs, model=SC, prefetch=pf,
                          speculation=spec,
                          initial_memory=wl.initial_memory,
                          max_cycles=5_000_000)
    ok = all(result.machine.read_word(a) == e for a, e in wl.expectations)
    return result.cycles, ok


def cpu_scaling_table(cpu_counts: Sequence[int] = (1, 2, 4),
                      iterations: int = 2, jobs: int = 1) -> Table:
    """Uncontended critical sections per CPU, growing the machine."""
    table = Table(
        "Scaling: private critical sections, SC, growing CPU count",
        ["CPUs", "baseline", "both techniques", "speedup", "correct"],
    )
    items = [(n, pf, spec, iterations)
             for n in cpu_counts
             for pf, spec in ((False, False), (True, True))]
    cells = sweep_map(_scaling_cell, items, jobs=jobs)
    for i, n in enumerate(cpu_counts):
        (base, base_ok), (both, both_ok) = cells[2 * i], cells[2 * i + 1]
        table.add_row(n, base, both, round(base / both, 2),
                      "yes" if base_ok and both_ok else "NO")
    table.add_note("per-CPU work is constant; cycles should stay roughly "
                   "flat and the speedup stable as CPUs are added")
    return table


def _barrier_cell(item: Tuple[int, str, bool, bool, int]) -> Tuple[int, bool]:
    """Sweep worker: one barrier-phased SPMD run."""
    n, model_name, pf, spec, phases = item
    wl = barrier_workload(num_cpus=n, phases=phases)
    result = run_workload(wl.programs, model=get_model(model_name),
                          prefetch=pf, speculation=spec,
                          initial_memory=wl.initial_memory,
                          max_cycles=10_000_000)
    ok = all(result.machine.read_word(a) == e for a, e in wl.expectations)
    return result.cycles, ok


def barrier_scaling_table(cpu_counts: Sequence[int] = (2, 3, 4),
                          phases: int = 2, jobs: int = 1) -> Table:
    """Barrier-phased SPMD kernel: real global synchronization."""
    table = Table(
        "Scaling: barrier-phased kernel (SC vs RC, both techniques)",
        ["CPUs", "SC base", "SC both", "RC both", "correct"],
    )
    combos = (("SC", False, False), ("SC", True, True), ("RC", True, True))
    items = [(n, model_name, pf, spec, phases)
             for n in cpu_counts
             for model_name, pf, spec in combos]
    cells = sweep_map(_barrier_cell, items, jobs=jobs)
    width = len(combos)
    for i, n in enumerate(cpu_counts):
        row_cells = cells[width * i:width * (i + 1)]
        ok = all(cell_ok for _, cell_ok in row_cells)
        table.add_row(n, *(cycles for cycles, _ in row_cells),
                      "yes" if ok else "NO")
    table.add_note("barriers serialize globally, so cycles grow with CPU "
                   "count; the techniques keep SC within reach of RC")
    return table

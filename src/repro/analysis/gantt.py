"""ASCII timing diagrams for analytical schedules.

Renders a :class:`~repro.core.timing.ScheduleResult` as a Gantt-style
text chart — one row per access, ``#`` for the demand service window,
``p`` for a prefetch in flight — so the pipelining structure the
paper's examples describe is visible at a glance::

    lock L    |####################|
    write A   |....................#|          (prefetch: p..p)

Used by the examples and handy in a REPL when exploring schedules.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.timing import ScheduleResult


def render_schedule(
    result: ScheduleResult,
    width: int = 72,
    show_prefetches: bool = True,
) -> str:
    """Render the schedule as an ASCII Gantt chart.

    Time is scaled to at most ``width`` columns; each access occupies
    one row from its issue to its completion cycle.
    """
    total = max(result.total_cycles, 1)
    scale = min(1.0, width / total)

    def col(cycle: int) -> int:
        return max(0, min(int((cycle - 1) * scale), width - 1))

    label_width = max(len(t.label) for t in result.timings)
    header = (f"{result.model_name}"
              f"{' + prefetch' if result.prefetch else ''}"
              f"{' + speculation' if result.speculation else ''}"
              f" — {result.total_cycles} cycles"
              f" (each column ≈ {1 / scale:.1f} cycles)" if scale < 1.0 else
              f"{result.model_name} — {result.total_cycles} cycles")
    lines: List[str] = [header]
    for t in result.timings:
        row = [" "] * width
        if show_prefetches and t.prefetch_issue is not None:
            for c in range(col(t.prefetch_issue), col(t.prefetch_complete) + 1):
                row[c] = "p"
        start, end = col(t.issue), col(t.complete)
        for c in range(start, end + 1):
            row[c] = "#"
        marker = "*" if t.speculative else " "
        lines.append(f"{t.label:<{label_width}} {marker}|{''.join(row)}|"
                     f" {t.issue}..{t.complete}")
    lines.append(f"{'':<{label_width}}  |{'-' * width}|")
    if any(t.speculative for t in result.timings):
        lines.append("(* = speculative load; p = prefetch in flight)")
    elif show_prefetches and any(t.prefetch_issue is not None
                                 for t in result.timings):
        lines.append("(p = prefetch in flight)")
    return "\n".join(lines)


def compare_schedules(results: List[ScheduleResult], width: int = 72) -> str:
    """Stack several schedules of the same segment for comparison."""
    return "\n\n".join(render_schedule(r, width=width) for r in results)

"""Related-work baseline schemes (paper, Section 6)."""

from .schemes import (
    SchemeResult,
    adve_hill_sc,
    binding_prefetch,
    compare_schemes,
    conventional,
    our_techniques,
    stenstrom_nst,
)

__all__ = [
    "SchemeResult",
    "adve_hill_sc",
    "binding_prefetch",
    "compare_schemes",
    "conventional",
    "our_techniques",
    "stenstrom_nst",
]

"""Related-work baselines (paper, Section 6).

Each scheme is modelled at the same abstraction level as the
analytical timing model so they can be compared head-to-head on the
same segments:

* **conventional** — the delay-based implementation: each access waits
  for every delay-arc predecessor to perform (this is simply the
  analytical model with both techniques off);
* **binding prefetch** (Lee; Gornish/Granston/Veidenbaum) — a prefetch
  whose value is bound at prefetch time.  Issuing it early would
  violate the model, so "a binding prefetch can not be issued any
  earlier than the actual access is allowed to be issued" — it
  degenerates to the conventional schedule for consistency-delayed
  accesses;
* **Adve–Hill SC** — writes stall only until *ownership* is acquired
  rather than until the write completes; reads are unaffected.  The
  paper expects limited gains because ownership latency is only
  slightly below full write latency;
* **Stenström NST** — access order is guaranteed at the memory via
  per-processor sequence numbers, allowing full pipelining of all
  accesses — but caches are not allowed, so every access pays the full
  memory latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..consistency.models import SC, ConsistencyModel
from ..core.timing import (
    AccessSpec,
    AnalyticalTimingModel,
    ScheduleResult,
    TimingConfig,
)
from ..sim.errors import ConfigurationError


@dataclass(frozen=True)
class SchemeResult:
    scheme: str
    model_name: str
    total_cycles: int
    note: str = ""


def conventional(segment: Sequence[AccessSpec], model: ConsistencyModel,
                 config: Optional[TimingConfig] = None) -> SchemeResult:
    """The delay-based implementation every scheme is measured against."""
    res = AnalyticalTimingModel(config).schedule(segment, model)
    return SchemeResult("conventional", model.name, res.total_cycles)


def binding_prefetch(segment: Sequence[AccessSpec], model: ConsistencyModel,
                     config: Optional[TimingConfig] = None) -> SchemeResult:
    """Binding prefetch cannot start before the access itself may issue.

    For accesses delayed by consistency constraints that is exactly the
    conventional issue time, so the schedule equals the conventional
    one — the quantitative form of Section 6's argument.
    """
    res = AnalyticalTimingModel(config).schedule(segment, model)
    return SchemeResult(
        "binding-prefetch", model.name, res.total_cycles,
        note="binding prefetch cannot be issued earlier than the access itself",
    )


def adve_hill_sc(segment: Sequence[AccessSpec],
                 config: Optional[TimingConfig] = None,
                 ownership_fraction: float = 0.8) -> SchemeResult:
    """Adve & Hill's efficient SC implementation.

    A write's *successors* may proceed once ownership is obtained
    (``ownership_fraction`` of the miss latency); the write itself still
    takes the full latency to complete globally.  Reads see no benefit.
    """
    if not 0.0 < ownership_fraction <= 1.0:
        raise ConfigurationError("ownership_fraction must be in (0, 1]")
    cfg = config or TimingConfig()
    ownership = max(1, int(round(cfg.miss_latency * ownership_fraction)))

    # Schedule by hand with SC's total order: each access issues one
    # cycle after its predecessor "unblocks" (ownership for writes,
    # completion for reads), plus port and dependence constraints.
    label_to_idx = {s.label: i for i, s in enumerate(segment)}
    issue: List[int] = []
    complete: List[int] = []
    unblock: List[int] = []  # when the *next* access may issue
    port_free = 1
    for i, spec in enumerate(segment):
        earliest = port_free
        if i > 0:
            earliest = max(earliest, unblock[i - 1] + 1)
        for dep in spec.deps:
            earliest = max(earliest, complete[label_to_idx[dep]] + 1)
        issue.append(earliest)
        port_free = earliest + 1
        lat = cfg.hit_latency if spec.hit else cfg.miss_latency
        complete.append(earliest + lat - 1)
        if spec.klass.is_store and not spec.hit:
            unblock.append(earliest + ownership - 1)
        else:
            unblock.append(complete[-1])
    return SchemeResult(
        "adve-hill-sc", SC.name, max(complete),
        note=f"writes unblock successors after ownership "
             f"({ownership} of {cfg.miss_latency} cycles)",
    )


def stenstrom_nst(segment: Sequence[AccessSpec],
                  config: Optional[TimingConfig] = None) -> SchemeResult:
    """Stenström's next-sequence-number-table ordering at the memory.

    All accesses pipeline freely (order is enforced at the memory), but
    caching is impossible: every access, including the ones the paper's
    examples count as hits, pays the full memory latency.
    """
    cfg = config or TimingConfig()
    label_to_idx = {s.label: i for i, s in enumerate(segment)}
    complete: List[int] = []
    port_free = 1
    for spec in segment:
        earliest = port_free
        for dep in spec.deps:
            earliest = max(earliest, complete[label_to_idx[dep]] + 1)
        port_free = earliest + 1
        complete.append(earliest + cfg.miss_latency - 1)
    return SchemeResult(
        "stenstrom-nst", "SC", max(complete),
        note="fully pipelined, but no caches: every access is a miss",
    )


def our_techniques(segment: Sequence[AccessSpec], model: ConsistencyModel,
                   config: Optional[TimingConfig] = None) -> SchemeResult:
    """The paper's combination: exclusive prefetch + speculative loads."""
    res = AnalyticalTimingModel(config).schedule(
        segment, model, prefetch=True, speculation=True)
    return SchemeResult("prefetch+speculation", model.name, res.total_cycles)


def compare_schemes(segment: Sequence[AccessSpec],
                    config: Optional[TimingConfig] = None) -> List[SchemeResult]:
    """Section 6's comparison on one segment (SC-based schemes)."""
    return [
        conventional(segment, SC, config),
        binding_prefetch(segment, SC, config),
        adve_hill_sc(segment, config),
        stenstrom_nst(segment, config),
        our_techniques(segment, SC, config),
    ]

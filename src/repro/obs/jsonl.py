"""Streaming JSONL trace sink.

The in-memory :class:`~repro.sim.trace.TraceRecorder` bounds itself
with a ring buffer on long runs; when a *complete* event log is wanted
anyway (offline analysis, the Perfetto converter, diffing two runs),
:class:`JsonlTraceRecorder` streams every event to disk as one JSON
object per line while the in-memory window stays bounded.

The format is deliberately flat so ``jq`` and line-oriented tools work
directly::

    {"cycle": 12, "source": "cpu0/lsu", "kind": "load_issue", "detail": {...}}

:func:`write_jsonl` dumps an already-recorded trace in the same
format, and :func:`read_jsonl` loads either back into
:class:`TraceEvent` records.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, List, Optional, Union

from ..sim.trace import TraceEvent, TraceRecorder


def event_to_json(event: TraceEvent) -> str:
    """One event as a compact single-line JSON object."""
    return json.dumps(
        {"cycle": event.cycle, "source": event.source,
         "kind": event.kind, "detail": event.detail},
        separators=(",", ":"), sort_keys=True)


def write_jsonl(events: Iterable[TraceEvent],
                target: Union[str, IO[str]]) -> int:
    """Write ``events`` to ``target`` (path or text stream); returns the
    number of lines written."""
    if isinstance(target, str):
        with open(target, "w") as fh:
            return write_jsonl(events, fh)
    n = 0
    for event in events:
        target.write(event_to_json(event) + "\n")
        n += 1
    return n


def read_jsonl(source: Union[str, IO[str]]) -> List[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` records."""
    if isinstance(source, str):
        with open(source) as fh:
            return read_jsonl(fh)
    events: List[TraceEvent] = []
    for lineno, line in enumerate(source, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON: {exc}") from exc
        for key in ("cycle", "source", "kind"):
            if key not in obj:
                raise ValueError(f"line {lineno}: missing {key!r}")
        events.append(TraceEvent(cycle=obj["cycle"], source=obj["source"],
                                 kind=obj["kind"],
                                 detail=obj.get("detail", {})))
    return events


class JsonlTraceRecorder(TraceRecorder):
    """A :class:`TraceRecorder` that *also* streams every accepted event
    to a JSONL file.

    The in-memory side keeps the normal recorder semantics (kind
    filtering, optional ``max_events`` ring buffer), so post-run code
    that inspects ``events`` still works; the stream receives every
    event that passed the filter, including ones the ring buffer later
    discards.  ``streamed`` counts the lines written.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(self, path: str, kinds: Optional[Iterable[str]] = None,
                 max_events: Optional[int] = None) -> None:
        super().__init__(kinds=kinds, enabled=True, max_events=max_events)
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "w")
        self.streamed = 0

    def record(self, cycle: int, source: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        super().record(cycle, source, kind, **detail)
        if self._fh is not None:
            self._fh.write(event_to_json(
                TraceEvent(cycle, source, kind, dict(detail))) + "\n")
            self.streamed += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

"""Technique-effectiveness metrics (how well Sections 3/4 worked).

The paper argues prefetching and speculative loads recover most of the
stall time the consistency model imposes.  Whether they actually do on
a given run depends on *how often the techniques fire and how often
they pay off* — which this module extracts from the shared
:class:`~repro.sim.stats.StatsRegistry` into two small summary records:

* :class:`PrefetchEffectiveness` — prefetches issued vs discarded, and
  of those issued: how many were *late* (a demand access arrived while
  the prefetch was still in flight and merged onto its MSHR), how many
  were *useful hits* (the demand access hit the completed prefetched
  line), and how many were *useless* (the line was invalidated or
  replaced before any demand access touched it — the binding-prefetch
  failure mode of Section 3.1, which non-binding prefetch turns from a
  correctness problem into a mere waste of bandwidth);
* :class:`SpeculationEffectiveness` — speculative loads inserted into
  the speculative-load buffer vs confirmed (retired) vs corrected,
  with the correction split by remedy (reissue vs full rollback) and
  by the snoop kind that triggered it (invalidation, update,
  replacement) — the paper's Section 4.2 correction taxonomy.

Everything here reads plain counters, so the records work equally on a
live run's registry or on one aggregated across sweep workers with
:meth:`StatsRegistry.merge_from`.

Like :mod:`repro.obs.accounting`, this module imports nothing above
``repro.sim`` so it stays free of import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..sim.stats import StatsRegistry

#: Snoop kinds that can trigger a speculative-load correction
#: (mirrors :class:`repro.memory.types.SnoopKind` values).
SNOOP_KINDS = ("inval", "update", "replacement")


def _ratio(part: int, whole: int) -> float:
    return part / whole if whole else 0.0


@dataclass
class PrefetchEffectiveness:
    """One CPU's prefetch outcome counts (cache + prefetcher counters)."""

    cpu: int
    requested: int          # lookahead candidates handed to the cache
    exclusive: int          # of those, read-exclusive (for stores/RMWs)
    issued: int             # actually sent to memory (missed, MSHR free)
    discarded: int          # dropped: line present, MSHR busy, uncached
    late: int               # demand access merged onto the in-flight miss
    useful_hits: int        # demand access hit the completed line
    useless_invalidated: int  # line lost before any demand access

    @property
    def useful(self) -> int:
        """Prefetches that saved some or all of a demand miss."""
        return self.late + self.useful_hits

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that were used at all."""
        return _ratio(self.useful, self.issued)

    @classmethod
    def from_stats(cls, stats: StatsRegistry, cpu: int) -> "PrefetchEffectiveness":
        def c(name: str) -> int:
            return stats.counter(name).value

        return cls(
            cpu=cpu,
            requested=c(f"cpu{cpu}/prefetcher/issued"),
            exclusive=c(f"cpu{cpu}/prefetcher/exclusive"),
            issued=c(f"cache{cpu}/prefetches_issued"),
            discarded=c(f"cache{cpu}/prefetches_discarded"),
            late=c(f"cache{cpu}/prefetches_late"),
            useful_hits=c(f"cache{cpu}/prefetches_useful_hit"),
            useless_invalidated=c(f"cache{cpu}/prefetches_useless_invalidated"),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "cpu": self.cpu,
            "requested": self.requested,
            "exclusive": self.exclusive,
            "issued": self.issued,
            "discarded": self.discarded,
            "late": self.late,
            "useful_hits": self.useful_hits,
            "useless_invalidated": self.useless_invalidated,
            "accuracy": round(self.accuracy, 4),
        }


@dataclass
class SpeculationEffectiveness:
    """One CPU's speculative-load buffer outcome counts."""

    cpu: int
    inserted: int            # loads that entered the SLB speculatively
    confirmed: int           # retired with the speculative value intact
    reissues: int            # corrected by re-access (value not yet used)
    rollbacks: int           # corrected by squash (value already bound)
    reissue_causes: Dict[str, int]
    rollback_causes: Dict[str, int]
    squash_reasons: Dict[str, int]  # processor-level squashes by reason

    @property
    def corrections(self) -> int:
        return self.reissues + self.rollbacks

    @property
    def confirmation_rate(self) -> float:
        """Fraction of speculations that survived untouched."""
        return _ratio(self.confirmed, self.inserted)

    @classmethod
    def from_stats(cls, stats: StatsRegistry, cpu: int) -> "SpeculationEffectiveness":
        def c(name: str) -> int:
            return stats.counter(name).value

        def causes(bucket: str) -> Dict[str, int]:
            return {kind: c(f"cpu{cpu}/slb/{bucket}_cause/{kind}")
                    for kind in SNOOP_KINDS}

        prefix = f"cpu{cpu}/squash_reason/"
        reasons = {name[len(prefix):]: value
                   for name, value in stats.counters(prefix).items()}
        return cls(
            cpu=cpu,
            inserted=c(f"cpu{cpu}/slb/inserted"),
            confirmed=c(f"cpu{cpu}/slb/retired"),
            reissues=c(f"cpu{cpu}/slb/reissues"),
            rollbacks=c(f"cpu{cpu}/slb/squashes"),
            reissue_causes=causes("reissue"),
            rollback_causes=causes("rollback"),
            squash_reasons=reasons,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "cpu": self.cpu,
            "inserted": self.inserted,
            "confirmed": self.confirmed,
            "reissues": self.reissues,
            "rollbacks": self.rollbacks,
            "confirmation_rate": round(self.confirmation_rate, 4),
            "reissue_causes": dict(self.reissue_causes),
            "rollback_causes": dict(self.rollback_causes),
            "squash_reasons": dict(self.squash_reasons),
        }


def prefetch_effectiveness(stats: StatsRegistry,
                           num_cpus: int) -> List[PrefetchEffectiveness]:
    return [PrefetchEffectiveness.from_stats(stats, cpu)
            for cpu in range(num_cpus)]


def speculation_effectiveness(stats: StatsRegistry,
                              num_cpus: int) -> List[SpeculationEffectiveness]:
    return [SpeculationEffectiveness.from_stats(stats, cpu)
            for cpu in range(num_cpus)]


def render_effectiveness(stats: StatsRegistry, num_cpus: int) -> str:
    """A plain-text effectiveness report (no heavy dependencies)."""
    lines: List[str] = ["technique effectiveness",
                        "-----------------------"]
    for pf in prefetch_effectiveness(stats, num_cpus):
        lines.append(
            f"cpu{pf.cpu} prefetch: requested={pf.requested} "
            f"issued={pf.issued} discarded={pf.discarded} "
            f"late={pf.late} useful_hits={pf.useful_hits} "
            f"useless={pf.useless_invalidated} "
            f"accuracy={pf.accuracy:.0%}")
    for sp in speculation_effectiveness(stats, num_cpus):
        cause_bits = [f"{kind}={n}" for kind, n
                      in {**sp.reissue_causes, **{
                          f"rb:{k}": v for k, v in sp.rollback_causes.items()
                      }}.items() if n]
        causes = f" causes[{' '.join(cause_bits)}]" if cause_bits else ""
        lines.append(
            f"cpu{sp.cpu} speculation: inserted={sp.inserted} "
            f"confirmed={sp.confirmed} reissues={sp.reissues} "
            f"rollbacks={sp.rollbacks} "
            f"confirmed={sp.confirmation_rate:.0%}{causes}")
    return "\n".join(lines)

"""Structured span tracing for the orchestration layer.

The simulator's Perfetto export (:mod:`repro.obs.perfetto`) renders the
*guest* timeline — one simulated cycle per microsecond.  This module
traces the *host orchestration*: sweep run → chunk → leg, verify
campaign → seed chunk, batch runner compile/step/fallback phases.
Spans are recorded as plain dicts, cheap enough to leave on for whole
fuzz campaigns (tens of spans per chunk, not per cycle), and exported
as Chrome ``trace_event`` JSON that passes
:func:`repro.obs.perfetto.validate_trace_events`.

Cross-process story: timestamps are **wall-clock microseconds**
(``time.time_ns() // 1000``), not a per-process monotonic origin, and
every span carries the real ``os.getpid()``.  A ProcessPool worker
records spans into its own chunk-local tracer, ships them back with
:meth:`SpanTracer.to_state` in the chunk result payload, and the sweep
parent absorbs them — so a ``--jobs 4`` campaign renders as **one**
merged trace with five aligned process tracks (the parent plus four
workers), each labelled via ``process_name`` metadata.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

#: bump when the shipped span layout changes incompatibly
SPANS_SCHEMA = "repro-spans/1"


def now_us() -> int:
    """Wall-clock microseconds — comparable across processes."""
    return time.time_ns() // 1000


class SpanTracer:
    """Append-only list of completed spans for one process (or one
    worker chunk, when used chunk-locally for shipping)."""

    def __init__(self, process: Optional[str] = None) -> None:
        self.spans: List[Dict[str, object]] = []
        #: human name for this process's track (``process_name`` metadata)
        self.process = process or f"pid {os.getpid()}"
        self._pid = os.getpid()
        #: other processes' track names, keyed by pid (absorbed state)
        self._process_names: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self.spans)

    # -- recording ------------------------------------------------------

    def record(self, name: str, start_us: int, end_us: int,
               args: Optional[Mapping[str, object]] = None) -> None:
        span: Dict[str, object] = {
            "name": name,
            "ts": start_us,
            "dur": max(0, end_us - start_us),
            "pid": self._pid,
        }
        if args:
            span["args"] = dict(args)
        self.spans.append(span)

    @contextmanager
    def span(self, name: str,
             args: Optional[Mapping[str, object]] = None
             ) -> Iterator[Dict[str, object]]:
        """Time a block.  The yielded dict lands in the span's ``args``;
        instrumentation sites may add fields to it mid-flight (e.g. a
        chunk span recording how many legs it ran)."""
        mutable: Dict[str, object] = dict(args) if args else {}
        start = now_us()
        try:
            yield mutable
        finally:
            self.record(name, start, now_us(), mutable or None)

    # -- merging / shipping --------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Picklable serialization for cross-process shipping."""
        names = dict(self._process_names)
        names[self._pid] = self.process
        return {
            "schema": SPANS_SCHEMA,
            "spans": list(self.spans),
            "process_names": names,
        }

    def absorb_state(self, state: Mapping[str, object]) -> None:
        """Fold a shipped worker tracer into this one.  Wall-clock
        timestamps make this a plain concatenation — no rebasing."""
        self.spans.extend(state.get("spans", ()))  # type: ignore[arg-type]
        for pid, name in dict(state.get("process_names", {})).items():  # type: ignore[call-overload]
            self._process_names[int(pid)] = str(name)

    def merge_from(self, other: "SpanTracer") -> None:
        self.absorb_state(other.to_state())

    # -- export ---------------------------------------------------------

    def to_trace_events(self) -> List[Dict[str, object]]:
        """Chrome ``trace_event`` objects: one ``ph: "X"`` duration
        event per span plus ``ph: "M"`` process/thread metadata per pid,
        conforming to :func:`repro.obs.perfetto.validate_trace_events`.

        Timestamps are rebased so the earliest span starts at 0 (the
        Perfetto UI dislikes epoch-scale offsets); relative alignment
        across processes is preserved because all clocks are wall time.
        """
        if not self.spans:
            return []
        origin = min(int(s["ts"]) for s in self.spans)
        names = dict(self._process_names)
        names.setdefault(self._pid, self.process)
        events: List[Dict[str, object]] = []
        for pid in sorted(names):
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": names[pid]}})
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": 0, "args": {"name": "orchestration"}})
        for span in self.spans:
            event: Dict[str, object] = {
                "ph": "X",
                "name": span["name"],
                "ts": int(span["ts"]) - origin,
                "dur": int(span["dur"]),
                "pid": span["pid"],
                "tid": 0,
                "cat": "orchestration",
            }
            if "args" in span:
                event["args"] = span["args"]
            events.append(event)
        return events

    def write_perfetto(self, path: str, label: str = "campaign") -> None:
        """Write a Perfetto-loadable trace file (validated shape)."""
        import json
        payload = {
            "traceEvents": self.to_trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "repro.obs.telemetry",
                "schema": SPANS_SCHEMA,
                "label": label,
            },
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")


# ----------------------------------------------------------------------
# The process-wide active tracer and its cheap proxies
# ----------------------------------------------------------------------

_ACTIVE = SpanTracer()


def tracer() -> SpanTracer:
    """The currently active process-wide tracer."""
    return _ACTIVE


def swap_tracer(t: SpanTracer) -> SpanTracer:
    """Install ``t`` as the active tracer; returns the previous one."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = t
    return prev


@contextmanager
def span(name: str,
         args: Optional[Mapping[str, object]] = None
         ) -> Iterator[Dict[str, object]]:
    """Time a block on the active tracer — no-op (yielding a throwaway
    dict) when telemetry is disabled."""
    from . import metrics  # sibling; cheap after first import
    if not metrics.enabled():
        yield dict(args) if args else {}
        return
    with _ACTIVE.span(name, args) as mutable:
        yield mutable

"""Process-wide campaign metrics: counters, gauges, histograms.

Where :class:`~repro.sim.stats.StatsRegistry` counts what the *guest*
machine did inside one simulation, this registry counts what the
*orchestration layer* did across a whole campaign: fuzz legs checked,
compile-memo hits, scalar fallbacks per reason, sweep chunk latencies.
It is designed around three constraints:

* **near-zero cost when disabled** — every instrumentation site goes
  through the module-level :func:`inc`/:func:`set_gauge`/:func:`observe`
  proxies, which are a single flag check when telemetry is off, so the
  fuzz harness can stay instrumented even on the bench hot path;
* **mergeable across ProcessPool workers** — a worker serializes its
  chunk-local registry with :meth:`MetricsRegistry.to_state` and the
  sweep parent folds it in with :meth:`MetricsRegistry.merge_from`
  (counters and histogram buckets add, gauges take the max), exactly
  like the guest-stats ``StatsRegistry.merge_from`` aggregation the
  breakdown matrix already uses.  Merging is associative and
  commutative, so the merged totals are independent of chunk completion
  order — ``tests/test_telemetry.py`` pins that;
* **two export formats** — a Prometheus text exposition
  (:meth:`MetricsRegistry.to_prometheus`, label escaping and cumulative
  histogram buckets per the exposition format) and a JSON snapshot
  (:meth:`MetricsRegistry.snapshot`) for ``--stats-json`` style dumps.

Metric names use ``/`` separators by repo convention
(``verify/legs``, ``batch/fallback``); the Prometheus exposition
sanitizes them (``repro_verify_legs_total``).  Labels are optional
``str -> str`` mappings with a canonical sorted order.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: bump when the snapshot layout changes incompatibly
METRICS_SCHEMA = "repro-metrics/1"

#: default histogram bucket upper bounds, in seconds (orchestration
#: latencies: worker queue waits, chunk walls, compile phases)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: canonical label representation: sorted (key, value) string pairs
LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double quote, and line feed."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _render_labels(labels: LabelPairs) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + inner + "}"


def render_key(name: str, labels: LabelPairs = ()) -> str:
    """Canonical flat key for snapshots: ``name{k="v",...}``."""
    return name + _render_labels(labels)


_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, namespace: str = "repro") -> str:
    """A metric name valid for the Prometheus exposition format."""
    base = f"{namespace}_{name}" if namespace else name
    base = _NAME_SANITIZE.sub("_", base)
    if base and base[0].isdigit():
        base = "_" + base
    return base


def _fmt_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_le(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _fmt_value(float(bound))


class _Histogram:
    """Fixed-bucket histogram (Prometheus shape: le upper bounds)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        # one slot per finite bound plus the implicit +Inf bucket;
        # stored per-bucket (non-cumulative), rendered cumulative
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        slot = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                slot = i
                break
        self.counts[slot] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def merge(self, other: "_Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count


class MetricsRegistry:
    """Labelled counters, gauges, and fixed-bucket histograms.

    Not thread-safe; the orchestration layer that uses it is
    single-threaded per process (workers each get their own registry
    and ship state back for merging).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[LabelPairs, float]] = {}
        self._gauges: Dict[str, Dict[LabelPairs, float]] = {}
        self._histograms: Dict[str, Dict[LabelPairs, _Histogram]] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, amount: float = 1,
            labels: Optional[Mapping[str, str]] = None) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        family = self._counters.setdefault(name, {})
        key = _label_key(labels)
        family[key] = family.get(key, 0) + amount

    def set_gauge(self, name: str, value: float,
                  labels: Optional[Mapping[str, str]] = None) -> None:
        self._gauges.setdefault(name, {})[_label_key(labels)] = value

    def observe(self, name: str, value: float,
                labels: Optional[Mapping[str, str]] = None,
                buckets: Optional[Sequence[float]] = None) -> None:
        bounds = self._buckets.get(name)
        if bounds is None:
            bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
            self._buckets[name] = bounds
        elif buckets is not None and tuple(sorted(buckets)) != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{bounds}, got {tuple(sorted(buckets))}")
        family = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        hist = family.get(key)
        if hist is None:
            hist = family[key] = _Histogram(bounds)
        hist.observe(value)

    # -- reading --------------------------------------------------------

    def counter_value(self, name: str,
                      labels: Optional[Mapping[str, str]] = None) -> float:
        return self._counters.get(name, {}).get(_label_key(labels), 0)

    def gauge_value(self, name: str,
                    labels: Optional[Mapping[str, str]] = None
                    ) -> Optional[float]:
        return self._gauges.get(name, {}).get(_label_key(labels))

    def counter_family(self, name: str) -> Dict[str, float]:
        """All samples of one counter, keyed by rendered labels."""
        return {render_key(name, key): value
                for key, value in sorted(self._counters.get(name, {}).items())}

    def __len__(self) -> int:
        return (sum(len(f) for f in self._counters.values())
                + sum(len(f) for f in self._gauges.values())
                + sum(len(f) for f in self._histograms.values()))

    # -- export ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly snapshot (histogram buckets cumulative)."""
        counters = {render_key(name, key): value
                    for name, family in sorted(self._counters.items())
                    for key, value in sorted(family.items())}
        gauges = {render_key(name, key): value
                  for name, family in sorted(self._gauges.items())
                  for key, value in sorted(family.items())}
        histograms: Dict[str, object] = {}
        for name, family in sorted(self._histograms.items()):
            for key, hist in sorted(family.items()):
                cumulative = hist.cumulative()
                buckets = {_fmt_le(bound): cumulative[i]
                           for i, bound in enumerate(hist.bounds)}
                buckets["+Inf"] = cumulative[-1]
                histograms[render_key(name, key)] = {
                    "count": hist.count,
                    "sum": round(hist.sum, 9),
                    "buckets": buckets,
                }
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_prometheus(self, namespace: str = "repro") -> str:
        """Render the registry in the Prometheus text exposition format.

        Counters get the conventional ``_total`` suffix; histogram
        buckets are cumulative with the mandatory ``+Inf`` bucket; label
        values are escaped; output order is deterministic (sorted by
        metric, then label set), so two registries holding the same
        samples expose byte-identical text regardless of insertion or
        merge order.
        """
        lines: List[str] = []
        for name, family in sorted(self._counters.items()):
            metric = prometheus_name(name, namespace) + "_total"
            lines.append(f"# TYPE {metric} counter")
            for key, value in sorted(family.items()):
                lines.append(f"{metric}{_render_labels(key)} "
                             f"{_fmt_value(value)}")
        for name, family in sorted(self._gauges.items()):
            metric = prometheus_name(name, namespace)
            lines.append(f"# TYPE {metric} gauge")
            for key, value in sorted(family.items()):
                lines.append(f"{metric}{_render_labels(key)} "
                             f"{_fmt_value(value)}")
        for name, family in sorted(self._histograms.items()):
            metric = prometheus_name(name, namespace)
            lines.append(f"# TYPE {metric} histogram")
            for key, hist in sorted(family.items()):
                cumulative = hist.cumulative()
                bounds = list(hist.bounds) + [float("inf")]
                for i, bound in enumerate(bounds):
                    le = (("le", _fmt_le(bound)),)
                    lines.append(
                        f"{metric}_bucket{_render_labels(key + le)} "
                        f"{cumulative[i]}")
                lines.append(f"{metric}_sum{_render_labels(key)} "
                             f"{_fmt_value(hist.sum)}")
                lines.append(f"{metric}_count{_render_labels(key)} "
                             f"{hist.count}")
        return "\n".join(lines) + "\n" if lines else ""

    # -- merging / shipping --------------------------------------------

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters and histogram buckets add,
        gauges take the max (worker gauges report peaks, so max is the
        associative/commutative choice)."""
        for name, family in other._counters.items():
            dest = self._counters.setdefault(name, {})
            for key, value in family.items():
                dest[key] = dest.get(key, 0) + value
        for name, family in other._gauges.items():
            dest = self._gauges.setdefault(name, {})
            for key, value in family.items():
                prev = dest.get(key)
                dest[key] = value if prev is None else max(prev, value)
        for name, family in other._histograms.items():
            bounds = other._buckets[name]
            mine = self._buckets.setdefault(name, bounds)
            if mine != bounds:
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ")
            dest = self._histograms.setdefault(name, {})
            for key, hist in family.items():
                target = dest.get(key)
                if target is None:
                    target = dest[key] = _Histogram(bounds)
                target.merge(hist)

    def to_state(self) -> Dict[str, object]:
        """A picklable/JSON-able serialization for cross-process
        shipping (see :meth:`from_state`)."""
        return {
            "counters": [[name, [list(p) for p in key], value]
                         for name, family in self._counters.items()
                         for key, value in family.items()],
            "gauges": [[name, [list(p) for p in key], value]
                       for name, family in self._gauges.items()
                       for key, value in family.items()],
            "histograms": [[name, [list(p) for p in key],
                            list(hist.bounds), list(hist.counts),
                            hist.sum, hist.count]
                           for name, family in self._histograms.items()
                           for key, hist in family.items()],
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "MetricsRegistry":
        reg = cls()
        for name, key, value in state.get("counters", ()):  # type: ignore[union-attr]
            reg._counters.setdefault(name, {})[
                tuple(tuple(p) for p in key)] = value
        for name, key, value in state.get("gauges", ()):  # type: ignore[union-attr]
            reg._gauges.setdefault(name, {})[
                tuple(tuple(p) for p in key)] = value
        for name, key, bounds, counts, total, count in state.get(
                "histograms", ()):  # type: ignore[union-attr]
            bounds_t = tuple(bounds)
            reg._buckets.setdefault(name, bounds_t)
            hist = _Histogram(bounds_t)
            hist.counts = list(counts)
            hist.sum = total
            hist.count = count
            reg._histograms.setdefault(name, {})[
                tuple(tuple(p) for p in key)] = hist
        return reg

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def write_prometheus(self, path: str, namespace: str = "repro") -> None:
        with open(path, "w") as fh:
            fh.write(self.to_prometheus(namespace))


# ----------------------------------------------------------------------
# The process-wide active registry and its cheap proxies
# ----------------------------------------------------------------------

_ENABLED = False
_ACTIVE = MetricsRegistry()


def enable(on: bool = True) -> None:
    """Globally switch campaign telemetry on (or off)."""
    global _ENABLED
    _ENABLED = on


def enabled() -> bool:
    return _ENABLED


def registry() -> MetricsRegistry:
    """The currently active process-wide registry."""
    return _ACTIVE


def swap_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Install ``reg`` as the active registry; returns the previous one
    (used by :func:`repro.obs.telemetry.collect` scopes)."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = reg
    return prev


def inc(name: str, amount: float = 1,
        labels: Optional[Mapping[str, str]] = None) -> None:
    """Increment a counter on the active registry (no-op when
    telemetry is disabled — one flag check)."""
    if _ENABLED:
        _ACTIVE.inc(name, amount, labels)


def set_gauge(name: str, value: float,
              labels: Optional[Mapping[str, str]] = None) -> None:
    if _ENABLED:
        _ACTIVE.set_gauge(name, value, labels)


def observe(name: str, value: float,
            labels: Optional[Mapping[str, str]] = None,
            buckets: Optional[Sequence[float]] = None) -> None:
    if _ENABLED:
        _ACTIVE.observe(name, value, labels, buckets)

"""Campaign telemetry: metrics registry, span tracing, worker shipping.

``repro.obs.telemetry`` is the fleet-level observability substrate —
where the rest of ``repro.obs`` watches a single simulation, this
package watches *campaigns*: fuzz sweeps, benchmark suites, breakdown
matrices.  Three cooperating pieces:

* :mod:`.metrics` — a process-wide registry of counters/gauges/
  histograms with Prometheus text exposition and JSON snapshots,
  mergeable across ProcessPool workers (counters add, gauges max);
* :mod:`.spans` — wall-clock span tracing of the orchestration layer,
  exported as one merged Perfetto trace across all worker processes;
* :func:`collect` / :func:`absorb` — the shipping protocol: a worker
  wraps each chunk in ``collect()`` (fresh registry + tracer pushed as
  active, so consecutive chunks in the same long-lived worker process
  never double-count), serializes the scope's state into a *shipment*
  dict, and the parent folds it in with ``absorb()``.

Import discipline: this package must stay importable from anywhere in
the tree (the sweep engine reaches for it lazily), so it imports only
the standard library.

Everything is a no-op until :func:`enable` is called — instrumentation
sites stay in place on hot paths at the cost of one flag check.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional

from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    enable,
    enabled,
    inc,
    observe,
    registry,
    set_gauge,
    swap_registry,
)
from .spans import SPANS_SCHEMA, SpanTracer, span, swap_tracer, tracer

__all__ = [
    "METRICS_SCHEMA",
    "SPANS_SCHEMA",
    "MetricsRegistry",
    "SpanTracer",
    "absorb",
    "collect",
    "enable",
    "enabled",
    "inc",
    "observe",
    "registry",
    "set_gauge",
    "span",
    "swap_registry",
    "swap_tracer",
    "tracer",
]


class CollectScope:
    """Handle yielded by :func:`collect`: the scope's fresh registry and
    tracer, plus :meth:`shipment` once the scope has closed."""

    def __init__(self, metrics_registry: MetricsRegistry,
                 span_tracer: SpanTracer) -> None:
        self.metrics = metrics_registry
        self.spans = span_tracer

    def shipment(self) -> Dict[str, object]:
        """Serialize everything recorded inside the scope for shipping
        back to the parent process (see :func:`absorb`)."""
        return {
            "metrics": self.metrics.to_state(),
            "spans": self.spans.to_state(),
        }


@contextmanager
def collect(process: Optional[str] = None,
            enable_telemetry: bool = True) -> Iterator[CollectScope]:
    """Run a block against a *fresh* registry and tracer.

    This is the worker-side half of the shipping protocol: ProcessPool
    workers are long-lived and process many chunks, so shipping the
    process-wide registry after each chunk would double-count earlier
    chunks.  ``collect()`` pushes fresh instances as the active ones,
    restores the previous ones on exit, and hands back a
    :class:`CollectScope` whose :meth:`~CollectScope.shipment` carries
    exactly what happened inside the block.

    The parent side uses it too — ``run_fuzz`` wraps each campaign so a
    second campaign in the same process starts from zero.
    """
    from .metrics import _ENABLED  # current flag, to restore on exit
    scope = CollectScope(MetricsRegistry(), SpanTracer(process=process))
    prev_registry = swap_registry(scope.metrics)
    prev_tracer = swap_tracer(scope.spans)
    prev_enabled = _ENABLED
    if enable_telemetry:
        enable(True)
    try:
        yield scope
    finally:
        swap_registry(prev_registry)
        swap_tracer(prev_tracer)
        enable(prev_enabled)


def absorb(shipment: Optional[Mapping[str, object]],
           metrics_registry: Optional[MetricsRegistry] = None,
           span_tracer: Optional[SpanTracer] = None) -> None:
    """Parent-side half of the shipping protocol: fold a worker's
    shipment into the given (default: active) registry and tracer."""
    if not shipment:
        return
    reg = metrics_registry if metrics_registry is not None else registry()
    trc = span_tracer if span_tracer is not None else tracer()
    metrics_state = shipment.get("metrics")
    if metrics_state:
        reg.merge_from(MetricsRegistry.from_state(metrics_state))  # type: ignore[arg-type]
    spans_state = shipment.get("spans")
    if spans_state:
        trc.absorb_state(spans_state)  # type: ignore[arg-type]

"""Streaming archtrace differ (``repro.obs.diff``).

Given two serialized archtraces of the *same job* (two backends, two
code revisions, a faulted and a clean run), find the first divergent
event, classify the divergence, and render an aligned context window
plus a cycle-blame delta.

Divergence classes (checked in precedence order):

``architectural``
    The per-CPU *cycle-stripped* instruction-event streams disagree:
    some CPU retired/performed a different sequence of
    ``(seq, kind, payload)`` events — different values, different
    squashes, extra or missing operations.  This is the serious class:
    the two runs executed different architectures.  The report pins the
    first per-CPU mismatch (the localizer's answer).

``final-state``
    The instruction-event streams agree but the footers' final memory
    words differ — the runs agree on every traced event yet end in
    different states (possible when the divergence is outside the
    traced window, e.g. a truncated stream).

``timing-only``
    Raw event lines differ (cycle counts, coherence traffic order,
    total cycles) but every CPU's cycle-stripped instruction stream
    and the final memory agree.  Harmless for correctness; the blame
    delta shows *where* the cycles went.

``identical``
    Byte-identical event bodies and footers.

The differ is streaming: both files are walked once, keeping only
bounded context windows and per-CPU pending queues (which stay shallow
while the streams agree and are frozen per-CPU at the first mismatch).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from .archtrace import ArchEvent, ArchTraceReader

#: instruction-stream kinds — the architectural projection; coherence
#: events (fill/evict/inval/downgrade) are timing-domain and only
#: participate in the raw (timing) comparison
ARCH_KINDS = ("retire", "load", "store", "rmw", "squash")

CLASSIFICATIONS = ("identical", "timing-only", "architectural",
                   "final-state")


def _fmt(ev: Optional[ArchEvent]) -> Optional[str]:
    return None if ev is None else ev.describe()


@dataclass
class DivergenceReport:
    """The differ's verdict on one pair of archtraces."""

    classification: str
    label_a: str = "a"
    label_b: str = "b"
    header_a: Dict[str, Any] = field(default_factory=dict)
    header_b: Dict[str, Any] = field(default_factory=dict)
    #: first raw (timing-sensitive) mismatch: index + rendered events
    first_raw_index: Optional[int] = None
    first_raw_a: Optional[str] = None
    first_raw_b: Optional[str] = None
    #: first per-CPU architectural mismatch (the localizer's answer)
    arch_cpu: Optional[int] = None
    arch_event_a: Optional[str] = None
    arch_event_b: Optional[str] = None
    #: aligned context: events straddling the first raw mismatch
    context_a: List[str] = field(default_factory=list)
    context_b: List[str] = field(default_factory=list)
    #: footer deltas
    cycles_a: Optional[int] = None
    cycles_b: Optional[int] = None
    memory_delta: Dict[str, Tuple[Optional[int], Optional[int]]] = \
        field(default_factory=dict)
    #: per-CPU blame delta: cause -> cycles_b - cycles_a
    blame_delta: List[Dict[str, int]] = field(default_factory=list)
    #: events dropped by either collector's cap (incomplete streams)
    dropped_a: int = 0
    dropped_b: int = 0
    events_a: int = 0
    events_b: int = 0

    @property
    def divergent(self) -> bool:
        return self.classification != "identical"

    @property
    def incomplete(self) -> bool:
        return self.dropped_a > 0 or self.dropped_b > 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "classification": self.classification,
            "label_a": self.label_a,
            "label_b": self.label_b,
            "header_a": self.header_a,
            "header_b": self.header_b,
            "first_raw_index": self.first_raw_index,
            "first_raw_a": self.first_raw_a,
            "first_raw_b": self.first_raw_b,
            "arch_cpu": self.arch_cpu,
            "arch_event_a": self.arch_event_a,
            "arch_event_b": self.arch_event_b,
            "context_a": self.context_a,
            "context_b": self.context_b,
            "cycles_a": self.cycles_a,
            "cycles_b": self.cycles_b,
            "memory_delta": {k: list(v)
                             for k, v in self.memory_delta.items()},
            "blame_delta": self.blame_delta,
            "dropped_a": self.dropped_a,
            "dropped_b": self.dropped_b,
            "events_a": self.events_a,
            "events_b": self.events_b,
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "DivergenceReport":
        kwargs = dict(obj)
        kwargs["memory_delta"] = {
            k: tuple(v) for k, v in obj.get("memory_delta", {}).items()}
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        lines = [f"divergence: {self.classification} "
                 f"({self.label_a} vs {self.label_b})"]
        ba = self.header_a.get("backend", "?")
        bb = self.header_b.get("backend", "?")
        lines.append(f"  backends: {ba} vs {bb}"
                     + (f"  [{self.header_a['fallback_reason']}]"
                        if self.header_a.get("fallback_reason") else "")
                     + (f" vs [{self.header_b['fallback_reason']}]"
                        if self.header_b.get("fallback_reason") else ""))
        if self.incomplete:
            lines.append(f"  WARNING: incomplete streams "
                         f"(dropped {self.dropped_a} vs {self.dropped_b} "
                         f"events past the collector cap)")
        if self.classification == "identical":
            lines.append(f"  {self.events_a} events, bit-identical bodies")
            return "\n".join(lines)
        if self.arch_event_a is not None or self.arch_event_b is not None:
            lines.append(f"  first divergent architectural event "
                         f"(cpu{self.arch_cpu}):")
            lines.append(f"    {self.label_a}: "
                         f"{self.arch_event_a or '<no event>'}")
            lines.append(f"    {self.label_b}: "
                         f"{self.arch_event_b or '<no event>'}")
        if self.first_raw_index is not None:
            lines.append(f"  first raw mismatch at event "
                         f"#{self.first_raw_index}:")
            lines.append(f"    {self.label_a}: "
                         f"{self.first_raw_a or '<end of stream>'}")
            lines.append(f"    {self.label_b}: "
                         f"{self.first_raw_b or '<end of stream>'}")
            if self.context_a or self.context_b:
                lines.append(f"  context ({self.label_a}):")
                lines.extend(f"    {line}" for line in self.context_a)
                lines.append(f"  context ({self.label_b}):")
                lines.extend(f"    {line}" for line in self.context_b)
        if self.memory_delta:
            lines.append("  final-memory delta (addr: "
                         f"{self.label_a} vs {self.label_b}):")
            for addr, (va, vb) in sorted(self.memory_delta.items(),
                                         key=lambda kv: int(kv[0])):
                lines.append(f"    [{addr}]: {va} vs {vb}")
        if (self.cycles_a is not None and self.cycles_b is not None
                and self.cycles_a != self.cycles_b):
            lines.append(f"  cycles: {self.cycles_a} vs {self.cycles_b} "
                         f"(delta {self.cycles_b - self.cycles_a:+d})")
        blame = [(cpu, deltas) for cpu, deltas in enumerate(self.blame_delta)
                 if any(deltas.values())]
        if blame:
            lines.append(f"  blame delta ({self.label_b} - {self.label_a}):")
            for cpu, deltas in blame:
                shown = ", ".join(f"{cause} {delta:+d}"
                                  for cause, delta in sorted(deltas.items())
                                  if delta)
                lines.append(f"    cpu{cpu}: {shown}")
        return "\n".join(lines)


class _ArchMatcher:
    """Per-CPU cycle-stripped instruction-stream matcher."""

    def __init__(self) -> None:
        self.pend_a: Dict[int, deque] = {}
        self.pend_b: Dict[int, deque] = {}
        # cpu -> (ArchEvent|None, ArchEvent|None) at first mismatch
        self.mismatch: Dict[int, Tuple[Optional[ArchEvent],
                                       Optional[ArchEvent]]] = {}

    def push(self, side: str, ev: ArchEvent) -> None:
        if ev.kind not in ARCH_KINDS or ev.cpu in self.mismatch:
            return
        mine = self.pend_a if side == "a" else self.pend_b
        mine.setdefault(ev.cpu, deque()).append(ev)
        self._drain(ev.cpu)

    def _drain(self, cpu: int) -> None:
        qa = self.pend_a.get(cpu)
        qb = self.pend_b.get(cpu)
        while qa and qb:
            ea, eb = qa.popleft(), qb.popleft()
            if ea.arch_key() != eb.arch_key():
                self.mismatch[cpu] = (ea, eb)
                qa.clear()
                qb.clear()
                return

    def finish(self) -> None:
        """Leftover unmatched events at end-of-streams are mismatches
        against nothing (one run has events the other lacks)."""
        for cpu in set(self.pend_a) | set(self.pend_b):
            if cpu in self.mismatch:
                continue
            qa = self.pend_a.get(cpu) or deque()
            qb = self.pend_b.get(cpu) or deque()
            if qa or qb:
                self.mismatch[cpu] = (qa[0] if qa else None,
                                      qb[0] if qb else None)

    def first(self) -> Optional[Tuple[int, Optional[ArchEvent],
                                      Optional[ArchEvent]]]:
        """The earliest per-CPU mismatch by event cycle (the present
        side's cycle when one side is missing the event entirely)."""
        if not self.mismatch:
            return None

        def order(item: Tuple[int, Tuple[Optional[ArchEvent],
                                         Optional[ArchEvent]]]):
            cpu, (ea, eb) = item
            cycles = [ev.cycle for ev in (ea, eb) if ev is not None]
            return (min(cycles), cpu)

        cpu, (ea, eb) = min(self.mismatch.items(), key=order)
        return cpu, ea, eb


def _iter_pairs(ra: Iterator[ArchEvent], rb: Iterator[ArchEvent]
                ) -> Iterator[Tuple[Optional[ArchEvent],
                                    Optional[ArchEvent]]]:
    while True:
        ea = next(ra, None)
        eb = next(rb, None)
        if ea is None and eb is None:
            return
        yield ea, eb


def diff_archtraces(path_a: str, path_b: str,
                    label_a: str = "a", label_b: str = "b",
                    context: int = 5) -> DivergenceReport:
    """Walk both archtraces once and classify their divergence."""
    ra = ArchTraceReader(path_a)
    rb = ArchTraceReader(path_b)
    matcher = _ArchMatcher()
    ctx_a: deque = deque(maxlen=context)
    ctx_b: deque = deque(maxlen=context)
    post_a: List[str] = []
    post_b: List[str] = []
    first_raw: Optional[Tuple[int, Optional[ArchEvent],
                              Optional[ArchEvent]]] = None
    index = 0
    for ea, eb in _iter_pairs(iter(ra), iter(rb)):
        if first_raw is None:
            if ea is None or eb is None or ea != eb:
                first_raw = (index, ea, eb)
            else:
                ctx_a.append(ea.describe())
                ctx_b.append(eb.describe())
        else:
            if ea is not None and len(post_a) < context:
                post_a.append(ea.describe())
            if eb is not None and len(post_b) < context:
                post_b.append(eb.describe())
        if ea is not None:
            matcher.push("a", ea)
        if eb is not None:
            matcher.push("b", eb)
        index += 1
    matcher.finish()

    footer_a, footer_b = ra.footer, rb.footer
    mem_a = footer_a.get("final_memory", {}) or {}
    mem_b = footer_b.get("final_memory", {}) or {}
    memory_delta: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
    for addr in sorted(set(mem_a) | set(mem_b), key=int):
        va, vb = mem_a.get(addr), mem_b.get(addr)
        if va != vb:
            memory_delta[addr] = (va, vb)

    arch = matcher.first()
    if arch is not None:
        classification = "architectural"
    elif memory_delta:
        classification = "final-state"
    elif (first_raw is not None
          or footer_a.get("cycles") != footer_b.get("cycles")):
        classification = "timing-only"
    else:
        classification = "identical"

    blame_delta: List[Dict[str, int]] = []
    bds_a = footer_a.get("breakdowns", []) or []
    bds_b = footer_b.get("breakdowns", []) or []
    for cpu in range(max(len(bds_a), len(bds_b))):
        da = bds_a[cpu] if cpu < len(bds_a) else {}
        db = bds_b[cpu] if cpu < len(bds_b) else {}
        blame_delta.append({cause: db.get(cause, 0) - da.get(cause, 0)
                            for cause in sorted(set(da) | set(db))})

    report = DivergenceReport(
        classification=classification,
        label_a=label_a, label_b=label_b,
        header_a=ra.header, header_b=rb.header,
        cycles_a=footer_a.get("cycles"), cycles_b=footer_b.get("cycles"),
        memory_delta=memory_delta,
        blame_delta=blame_delta,
        dropped_a=int(footer_a.get("dropped", 0) or 0),
        dropped_b=int(footer_b.get("dropped", 0) or 0),
        events_a=ra.events_read, events_b=rb.events_read,
    )
    if first_raw is not None:
        idx, ea, eb = first_raw
        report.first_raw_index = idx
        report.first_raw_a = _fmt(ea)
        report.first_raw_b = _fmt(eb)
        report.context_a = list(ctx_a) + (["--- divergence ---"]
                                          if _fmt(ea) else []) + post_a
        report.context_b = list(ctx_b) + (["--- divergence ---"]
                                          if _fmt(eb) else []) + post_b
    if arch is not None:
        cpu, ea, eb = arch
        report.arch_cpu = cpu
        report.arch_event_a = _fmt(ea)
        report.arch_event_b = _fmt(eb)
    return report


def diff_main(path_a: str, path_b: str, context: int = 5,
              as_json: bool = False) -> int:
    """CLI body for ``python -m repro.obs diff``: 0 identical,
    1 divergent."""
    report = diff_archtraces(path_a, path_b,
                             label_a=path_a, label_b=path_b,
                             context=context)
    if as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 1 if report.divergent else 0

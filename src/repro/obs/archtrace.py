"""Canonical architectural event stream (``repro.obs.archtrace``).

The raw trace (:mod:`repro.sim.trace`) records what the *machine* did —
issues, SLB bookkeeping, directory transactions — in whatever order the
components happened to call ``record``.  That stream is perfect for
timelines and terrible for differencing: two bit-identical executions
on different backends interleave their per-component records
differently, and microarchitectural detail (MSHR tags, transaction
ids) differs even when the architecture agrees.

An **archtrace** is the backend-agnostic projection of a run onto the
events the consistency model can see:

=============  ========================================================
kind           payload (beyond ``cycle``/``cpu``/``seq``)
=============  ========================================================
``retire``     ``pc``, ``op`` (alu/load/store/rmw/nop/halt), ``bound``
               (retired with a bound value), ``sync`` (``acquire`` /
               ``release`` / ``full`` for fence-class RMWs) — a
               ``retire`` with ``sync`` *is* the drain point of the
               ordering operation it names
``load``       ``addr``, ``value`` — a load (or forward) globally
               performed
``store``      ``addr``, ``value`` — a store globally performed
``rmw``        ``addr``, ``value`` (the value *read*) — an atomic
               read-modify-write globally performed
``squash``     ``from_seq``, ``count``, ``refetch_pc``, ``reason`` —
               a rollback discarded speculative work
``fill``       ``line``, ``state`` (``S``/``M``) — coherence fill
``evict``      ``line``, ``state`` held at eviction
``inval``      ``line`` — the line was invalidated by a snoop
``downgrade``  ``line`` — MODIFIED -> SHARED on a recall
=============  ========================================================

Every event carries the deterministic ordering key ``(cycle, cpu,
seq)``; coherence events (which have no instruction) use ``seq = -1``
and are ordered by line address.  Events are kept **canonically
sorted** by the total key ``(cycle, cpu, seq, kind, aux)``, which makes
a serialized archtrace byte-comparable: two executions are
architecturally identical iff their archtrace event lines are
identical.  The batched engine's per-cycle phase order differs from
the scalar kernel's per-CPU tick order, but within one cycle both
produce the same *multiset* of architectural events — the canonical
sort erases the residual emission-order difference.

Serialized form (JSONL): a header line (schema version, backend, lane
tag, job label), one line per event, and a footer line carrying the
run's cycle count, final memory words, per-CPU cycle-blame breakdowns
and the collector's drop counter — everything the differ needs to
classify a divergence from the two files alone.

:class:`ArchTraceCollector` implements the ``TraceRecorder`` recording
surface (``enabled`` + ``record``), so it can be passed directly as the
``trace=`` argument of ``run_workload`` — recording does **not**
disable the kernel's idle-cycle fast-forward (only per-cycle hooks do)
— and the batched engine feeds the same collector class its raw-style
events, so both backends share one derivation path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (Any, Dict, IO, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

#: bump when the event schema or serialized layout changes
ARCHTRACE_VERSION = 1

#: architectural event kinds in canonical intra-key order
KIND_ORDER: Tuple[str, ...] = (
    "retire", "load", "store", "rmw", "squash",
    "fill", "evict", "downgrade", "inval",
)
_KIND_RANK: Dict[str, int] = {k: i for i, k in enumerate(KIND_ORDER)}

#: sync codes shared with the batch compiler's per-pc sync table
SYNC_NAMES: Tuple[Optional[str], ...] = (None, "acquire", "release", "full")


def _canon(obj: Mapping[str, Any]) -> str:
    """One canonical JSON line (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ArchEvent:
    """One canonical architectural event."""

    cycle: int
    cpu: int
    #: instruction sequence number; -1 for coherence events
    seq: int
    kind: str
    #: kind-specific payload, canonically sorted key/value pairs
    detail: Tuple[Tuple[str, Any], ...] = ()

    @property
    def detail_dict(self) -> Dict[str, Any]:
        return dict(self.detail)

    def sort_key(self) -> Tuple[int, int, int, int, int]:
        aux = dict(self.detail).get("line", 0)
        return (self.cycle, self.cpu, self.seq,
                _KIND_RANK.get(self.kind, len(KIND_ORDER)), int(aux))

    def arch_key(self) -> Tuple[int, str, Tuple[Tuple[str, Any], ...]]:
        """The event with timing stripped: what must match for two runs
        to be *architecturally* equivalent."""
        return (self.seq, self.kind, self.detail)

    def to_json(self) -> str:
        obj: Dict[str, Any] = {"cycle": self.cycle, "cpu": self.cpu,
                               "kind": self.kind}
        if self.seq >= 0:
            obj["seq"] = self.seq
        obj.update(self.detail)
        return _canon(obj)

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, Any]) -> "ArchEvent":
        detail = tuple(sorted(
            (k, v) for k, v in obj.items()
            if k not in ("cycle", "cpu", "seq", "kind")))
        return cls(cycle=int(obj["cycle"]), cpu=int(obj["cpu"]),
                   seq=int(obj.get("seq", -1)), kind=str(obj["kind"]),
                   detail=detail)

    def describe(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in self.detail)
        seq = f" seq={self.seq}" if self.seq >= 0 else ""
        return f"[{self.cycle:>6}] cpu{self.cpu} {self.kind}{seq} {payload}"


def _mk(cycle: int, cpu: int, seq: int, kind: str,
        **detail: Any) -> ArchEvent:
    return ArchEvent(cycle=cycle, cpu=cpu, seq=seq, kind=kind,
                     detail=tuple(sorted(detail.items())))


class ArchTraceCollector:
    """Derive the canonical stream from raw ``record()`` calls.

    Implements the :class:`~repro.sim.trace.TraceRecorder` recording
    surface, so it drops in as the ``trace=`` of ``run_workload`` (the
    scalar kernel) *and* as the per-lane sink of the batched engine.
    Raw kinds outside the architectural projection (issues, SLB
    bookkeeping, directory transactions, prefetches) are ignored;
    microarchitectural detail fields (``tag``) are stripped.

    ``max_events`` caps memory: unlike the raw ring buffer (which keeps
    the *tail* for timelines), the collector keeps the *head* — the
    differ localizes the first divergence, so early events matter most.
    ``dropped`` counts what the cap discarded and lands in the footer,
    where the differ warns about incomplete streams.
    """

    enabled = True

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.max_events = max_events
        self.dropped = 0
        self._events: List[ArchEvent] = []
        self._sorted = True
        # footer data, bound by finalize()
        self.cycles: Optional[int] = None
        self.final_memory: Dict[int, int] = {}
        self.breakdowns: List[Dict[str, int]] = []

    # -- TraceRecorder surface -----------------------------------------
    def record(self, cycle: int, source: str, kind: str,
               **detail: Any) -> None:
        event = derive_arch_event(cycle, source, kind, detail)
        if event is None:
            return
        if self.max_events is not None and len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)
        self._sorted = False

    # -- results --------------------------------------------------------
    @property
    def events(self) -> List[ArchEvent]:
        if not self._sorted:
            self._events.sort(key=ArchEvent.sort_key)
            self._sorted = True
        return self._events

    def finalize(self, cycles: int,
                 final_memory: Optional[Mapping[int, int]] = None,
                 breakdowns: Optional[Sequence[Any]] = None) -> None:
        """Bind the footer data once the run is over.

        ``breakdowns`` accepts :class:`~repro.obs.accounting.CycleBreakdown`
        objects or plain ``{cause: count}`` dicts.
        """
        self.cycles = cycles
        if final_memory is not None:
            self.final_memory = {int(a): int(v)
                                 for a, v in final_memory.items()}
        if breakdowns is not None:
            self.breakdowns = [
                bd if isinstance(bd, dict) else bd.as_dict()
                for bd in breakdowns
            ]

    def header(self, backend: str = "scalar",
               label: str = "", lane: Optional[int] = None,
               fallback_reason: Optional[str] = None) -> Dict[str, Any]:
        obj: Dict[str, Any] = {"archtrace": ARCHTRACE_VERSION,
                               "backend": backend}
        if label:
            obj["label"] = label
        if lane is not None:
            obj["lane"] = lane
        if fallback_reason is not None:
            obj["fallback_reason"] = fallback_reason
        return obj

    def footer(self) -> Dict[str, Any]:
        return {
            "end": True,
            "cycles": self.cycles,
            "final_memory": {str(a): v
                             for a, v in sorted(self.final_memory.items())},
            "breakdowns": self.breakdowns,
            "dropped": self.dropped,
        }

    def event_lines(self) -> List[str]:
        """The canonical event lines — the byte-comparable body."""
        return [ev.to_json() for ev in self.events]

    def write_jsonl(self, target: Union[str, IO[str]],
                    backend: str = "scalar", label: str = "",
                    lane: Optional[int] = None,
                    fallback_reason: Optional[str] = None) -> int:
        """Serialize header + events + footer; returns the event count."""
        own = isinstance(target, str)
        fh: IO[str] = open(target, "w") if own else target  # type: ignore[arg-type]
        try:
            fh.write(_canon(self.header(backend=backend, label=label,
                                        lane=lane,
                                        fallback_reason=fallback_reason))
                     + "\n")
            events = self.events
            for ev in events:
                fh.write(ev.to_json() + "\n")
            fh.write(_canon(self.footer()) + "\n")
        finally:
            if own:
                fh.close()
        return len(self._events)


# ----------------------------------------------------------------------
# Raw-event derivation (shared by both backends)
# ----------------------------------------------------------------------

def _source_cpu(source: str) -> Optional[int]:
    """cpu index for ``cpu<k>``/``cpu<k>/lsu``/``cache<k>``, else None."""
    if source.startswith("cpu"):
        head, _, _ = source.partition("/")
        try:
            return int(head[3:])
        except ValueError:
            return None
    if source.startswith("cache"):
        try:
            return int(source[5:])
        except ValueError:
            return None
    return None


def derive_arch_event(cycle: int, source: str, kind: str,
                      detail: Mapping[str, Any]) -> Optional[ArchEvent]:
    """Map one raw ``TraceEvent`` onto the canonical schema (or None)."""
    cpu = _source_cpu(source)
    if cpu is None:
        return None  # directory / interconnect: microarchitectural
    if kind == "retire":
        sync = detail.get("sync")
        extra = {"sync": sync} if sync else {}
        return _mk(cycle, cpu, int(detail["seq"]), "retire",
                   pc=int(detail["pc"]), op=str(detail["op"]),
                   bound=bool(detail["bound"]), **extra)
    if kind == "load_complete":
        return _mk(cycle, cpu, int(detail["seq"]), "load",
                   addr=int(detail["addr"]), value=int(detail["value"]))
    if kind == "store_complete":
        akind = "rmw" if detail.get("rmw") else "store"
        return _mk(cycle, cpu, int(detail["seq"]), akind,
                   addr=int(detail["addr"]),
                   value=int(detail.get("value", 0)))
    if kind == "squash":
        return _mk(cycle, cpu, int(detail["from_seq"]), "squash",
                   count=int(detail["count"]),
                   refetch_pc=int(detail["refetch_pc"]),
                   reason=str(detail["reason"]))
    if kind == "fill" or kind == "evict":
        return _mk(cycle, cpu, -1, kind,
                   line=int(detail["line"]), state=str(detail["state"]))
    if kind == "inval" or kind == "downgrade":
        return _mk(cycle, cpu, -1, kind, line=int(detail["line"]))
    return None


# ----------------------------------------------------------------------
# Reading serialized archtraces
# ----------------------------------------------------------------------

@dataclass
class ArchTraceReader:
    """Streaming reader for one serialized archtrace.

    Iterating yields :class:`ArchEvent` objects; ``header`` is read
    eagerly, ``footer`` becomes available once iteration is exhausted.
    """

    path: str
    header: Dict[str, Any] = field(default_factory=dict)
    footer: Dict[str, Any] = field(default_factory=dict)
    events_read: int = 0

    def __post_init__(self) -> None:
        self._fh: Optional[IO[str]] = open(self.path)
        first = self._fh.readline()
        if first:
            obj = json.loads(first)
            if "archtrace" in obj:
                self.header = obj
            else:
                # headerless stream (hand-crafted fixture): rewind
                self._fh.close()
                self._fh = open(self.path)

    def __iter__(self) -> "ArchTraceReader":
        return self

    def __next__(self) -> ArchEvent:
        if self._fh is None:
            raise StopIteration
        line = self._fh.readline()
        if not line:
            self.close()
            raise StopIteration
        obj = json.loads(line)
        if obj.get("end"):
            self.footer = obj
            self.close()
            raise StopIteration
        self.events_read += 1
        return ArchEvent.from_json_obj(obj)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_archtrace(path: str) -> Tuple[Dict[str, Any], List[ArchEvent],
                                       Dict[str, Any]]:
    """Load a whole archtrace file: (header, events, footer)."""
    reader = ArchTraceReader(path)
    events = list(reader)
    return reader.header, events, reader.footer


def write_events_jsonl(path: str, events: Iterable[ArchEvent],
                       header: Optional[Mapping[str, Any]] = None,
                       footer: Optional[Mapping[str, Any]] = None) -> None:
    """Write a hand-assembled archtrace (test fixtures, synthesized
    divergence examples)."""
    with open(path, "w") as fh:
        if header is not None:
            merged = {"archtrace": ARCHTRACE_VERSION}
            merged.update(header)
            fh.write(_canon(merged) + "\n")
        for ev in events:
            fh.write(ev.to_json() + "\n")
        if footer is not None:
            merged = {"end": True}
            merged.update(footer)
            fh.write(_canon(merged) + "\n")


class TeeTrace:
    """Fan one ``record()`` stream out to several recorders.

    Lets ``--archtrace`` coexist with ``--trace``/``--perfetto``/
    ``--trace-jsonl`` on a single run: the kernel sees one trace object,
    every sink sees every raw event (each applies its own filtering).
    """

    def __init__(self, *sinks: Any) -> None:
        self.sinks = [s for s in sinks if s is not None]

    @property
    def enabled(self) -> bool:
        return any(s.enabled for s in self.sinks)

    def record(self, cycle: int, source: str, kind: str,
               **detail: Any) -> None:
        for sink in self.sinks:
            if sink.enabled:
                sink.record(cycle, source, kind, **detail)

"""Chrome / Perfetto ``trace_event`` timeline export.

Converts a recorded simulation trace into the JSON `trace event
format`_ that ``chrome://tracing`` and https://ui.perfetto.dev load
directly, so a run can be inspected as a zoomable timeline: one
process row per CPU, with core / load-store-unit / cache tracks, slices
for memory operations in flight, and instants for squashes, fills and
invalidations.

Mapping:

* one simulated **cycle** is one **microsecond** of trace time (the
  format's native unit), so timeline distances read directly as cycle
  counts;
* paired events become complete slices (``ph: "X"``):
  ``load_issue``/``load_complete`` and ``store_issue``/
  ``store_complete`` on the LSU track (matched by instruction ``seq``),
  ``slb_insert``/``slb_retire`` on a speculation track — the visible
  lifetime of each speculative load — and the directory's
  ``txn_start``/``txn_finish`` (matched by ``txn`` id) on the fabric
  process;
* everything else (``retire``, ``squash``, ``mispredict``, ``fill``,
  ``inval``, ``prefetch``, ...) becomes a thread-scoped instant
  (``ph: "i"``);
* ``ph: "M"`` metadata events name the processes and threads.

:func:`validate_trace_events` is a dependency-free structural checker
for the subset of the spec this exporter emits; CI runs it over the
exported file so a malformed timeline fails the build rather than
failing silently in the viewer.

.. _trace event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple, Union

from ..sim.trace import TraceEvent, TraceRecorder

#: (open kind, close kind) pairs rendered as duration slices, matched
#: by the ``seq`` (CPU events) or ``txn`` (directory events) detail
#: field within one source.
SLICE_PAIRS: Dict[str, str] = {
    "load_issue": "load_complete",
    "store_issue": "store_complete",
    "slb_insert": "slb_retire",
    "txn_start": "txn_finish",
}


def _pair_key(detail: Dict[str, Any]) -> Any:
    return detail.get("seq", detail.get("txn"))


def _slice_name(opener: TraceEvent) -> str:
    """A display name for a paired slice: instruction tag where known,
    directory message kind for transactions, else the event family."""
    name = (opener.detail.get("tag") or opener.detail.get("op")
            or opener.kind.rsplit("_", 1)[0])
    return str(name)

#: trace_event thread ids within each CPU's process
TID_CORE = 0
TID_LSU = 1
TID_SLB = 2
TID_CACHE = 3

#: synthetic process id for machine-wide sources (directory, network)
FABRIC_PID = 1000

_THREAD_NAMES = {TID_CORE: "core", TID_LSU: "lsu",
                 TID_SLB: "slb", TID_CACHE: "cache"}


def _locate(source: str) -> Tuple[int, int]:
    """Map an event source to a (pid, tid) pair."""
    if source.startswith("cpu"):
        head, _, unit = source.partition("/")
        try:
            pid = int(head[3:])
        except ValueError:
            return FABRIC_PID, 0
        return pid, (TID_LSU if unit == "lsu" else TID_CORE)
    if source.startswith("cache"):
        try:
            return int(source[5:]), TID_CACHE
        except ValueError:
            return FABRIC_PID, 0
    return FABRIC_PID, 0


def _args(detail: Dict[str, Any]) -> Dict[str, Any]:
    """Event details as JSON-safe slice arguments."""
    return {k: (v if isinstance(v, (int, float, str, bool)) or v is None
                else str(v))
            for k, v in detail.items()}


def to_trace_events(
    trace: Union[TraceRecorder, List[TraceEvent]],
    label: str = "repro",
    breakdowns: Any = None,
) -> Dict[str, Any]:
    """Convert a recorded trace to a trace_event JSON object.

    ``breakdowns`` (optional) is the run's per-CPU CycleAccountant
    blame — :class:`~repro.obs.accounting.CycleBreakdown` objects or
    plain ``{cause: cycles}`` dicts, one per CPU — rendered as a
    Perfetto counter track (``ph: "C"``) per CPU.  The accountant
    records whole-run totals, not a time series, so the track ramps
    from zero to the final attribution over the trace span.
    """
    events = trace.events if isinstance(trace, TraceRecorder) else list(trace)
    out: List[Dict[str, Any]] = []
    pids_seen: Dict[int, None] = {}
    tids_seen: Dict[Tuple[int, int], None] = {}
    #: (source, open-kind, seq) -> opening event, for slice pairing
    open_slices: Dict[Tuple[str, str, Any], TraceEvent] = {}
    last_cycle = max((ev.cycle for ev in events), default=0)

    def emit(record: Dict[str, Any], pid: int, tid: int) -> None:
        pids_seen.setdefault(pid)
        tids_seen.setdefault((pid, tid))
        record["pid"] = pid
        record["tid"] = tid
        out.append(record)

    def slice_tid(kind: str, tid: int) -> int:
        return TID_SLB if kind.startswith("slb") else tid

    for ev in events:
        pid, tid = _locate(ev.source)
        if ev.kind in SLICE_PAIRS:
            open_slices[(ev.source, ev.kind, _pair_key(ev.detail))] = ev
            continue
        closer = next((op for op, cl in SLICE_PAIRS.items()
                       if cl == ev.kind), None)
        if closer is not None:
            key = (ev.source, closer, _pair_key(ev.detail))
            opener = open_slices.pop(key, None)
            if opener is None:
                # completion without a recorded issue (ring buffer
                # dropped the opener): render as an instant instead
                emit({"name": ev.kind, "ph": "i", "s": "t",
                      "ts": ev.cycle, "cat": "memory",
                      "args": _args(ev.detail)}, pid, slice_tid(ev.kind, tid))
                continue
            name = _slice_name(opener)
            emit({"name": name, "ph": "X",
                  "ts": opener.cycle, "dur": max(ev.cycle - opener.cycle, 1),
                  "cat": "memory",
                  "args": _args({**opener.detail, **ev.detail})},
                 pid, slice_tid(ev.kind, tid))
            continue
        emit({"name": ev.kind, "ph": "i", "s": "t", "ts": ev.cycle,
              "cat": "sim", "args": _args(ev.detail)}, pid, tid)

    # slices still open at the end of the trace (e.g. a store that
    # never completed before max_cycles): close them at the last cycle
    for (source, kind, _seq), opener in open_slices.items():
        pid, tid = _locate(source)
        emit({"name": _slice_name(opener), "ph": "X", "ts": opener.cycle,
              "dur": max(last_cycle - opener.cycle, 1), "cat": "memory",
              "args": _args({**opener.detail, "unterminated": True})},
             pid, slice_tid(kind, tid))

    if breakdowns:
        for cpu, bd in enumerate(breakdowns):
            causes = bd if isinstance(bd, dict) else bd.as_dict()
            totals = {str(cause): int(cycles)
                      for cause, cycles in sorted(causes.items())}
            if not totals:
                continue
            emit({"name": "cycle_blame", "ph": "C", "ts": 0, "cat": "blame",
                  "args": {cause: 0 for cause in totals}}, cpu, TID_CORE)
            emit({"name": "cycle_blame", "ph": "C", "ts": last_cycle,
                  "cat": "blame", "args": totals}, cpu, TID_CORE)

    meta: List[Dict[str, Any]] = []
    for pid in sorted(pids_seen):
        name = "fabric" if pid == FABRIC_PID else f"cpu{pid}"
        meta.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                     "args": {"name": name}})
    for pid, tid in sorted(tids_seen):
        tname = ("events" if pid == FABRIC_PID
                 else _THREAD_NAMES.get(tid, "events"))
        meta.append({"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                     "args": {"name": tname}})

    other: Dict[str, Any] = {"exporter": label, "cycles_per_us": 1}
    if isinstance(trace, TraceRecorder):
        dropped = getattr(trace, "dropped", 0)
        other["dropped"] = int(dropped)
        other["max_events"] = getattr(trace, "max_events", None)
        other["truncated"] = bool(dropped)

    return {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def export_chrome_trace(
    trace: Union[TraceRecorder, List[TraceEvent]],
    path: str,
    label: str = "repro",
    breakdowns: Any = None,
) -> Dict[str, Any]:
    """Convert and write a trace; returns the converted object."""
    obj = to_trace_events(trace, label=label, breakdowns=breakdowns)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return obj


# ----------------------------------------------------------------------
# Structural validation (used by tests and the CI smoke step)
# ----------------------------------------------------------------------

_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid"),
    "M": ("name", "pid", "args"),
    "C": ("name", "ts", "pid", "tid", "args"),
}


def validate_trace_events(obj: Any) -> List[str]:
    """Check an object against the trace_event subset we emit.

    Returns a list of human-readable problems; empty means valid.
    """
    errors: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _REQUIRED:
            errors.append(f"{where}: unknown or missing ph {ph!r}")
            continue
        for key in _REQUIRED[ph]:
            if key not in ev:
                errors.append(f"{where}: ph={ph} missing {key!r}")
        for key in ("ts", "dur"):
            if key in ev and not isinstance(ev[key], (int, float)):
                errors.append(f"{where}: {key} must be a number")
            elif key in ev and ev[key] < 0:
                errors.append(f"{where}: {key} must be non-negative")
        if ph == "i" and ev.get("s", "t") not in ("g", "p", "t"):
            errors.append(f"{where}: instant scope must be g/p/t, "
                          f"got {ev.get('s')!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: args must be an object")
    return errors


def trace_warnings(obj: Any) -> List[str]:
    """Non-fatal completeness warnings for a (structurally valid) trace.

    A trace recorded through the bounded ring buffer (``--trace-limit``)
    may have dropped its oldest events; the exporter records that in
    ``otherData`` and this reports it, so CI and triage know the
    timeline is a suffix of the run, not the whole run.
    """
    warnings: List[str] = []
    other = obj.get("otherData") if isinstance(obj, dict) else None
    if not isinstance(other, dict):
        return warnings
    dropped = other.get("dropped", 0)
    if other.get("truncated") or dropped:
        limit = other.get("max_events")
        warnings.append(
            f"trace is incomplete: ring buffer dropped {dropped} oldest "
            f"event(s)"
            + (f" (--trace-limit {limit})" if limit else ""))
    return warnings


def validate_trace_file(path: str) -> List[str]:
    """Validate a trace_event JSON file; returns problems (empty = ok)."""
    try:
        with open(path) as fh:
            obj = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_trace_events(obj)


def trace_file_warnings(path: str) -> List[str]:
    """Completeness warnings for a trace_event JSON file (see
    :func:`trace_warnings`); unreadable files report no warnings —
    the validator owns hard errors."""
    try:
        with open(path) as fh:
            obj = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return []
    return trace_warnings(obj)

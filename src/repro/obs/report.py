"""Paper-style breakdown reports over the cycle-accounting counters.

This is the heavyweight end of :mod:`repro.obs`: it pulls in the
workloads, the detailed simulator, the sweep engine and the table
renderer, so it must only be imported from entry points (the CLI,
``run.py``, benchmarks) — never from the core simulator, which
:mod:`repro.obs.accounting` serves without import cycles.

The centrepiece is :func:`example_breakdown_matrix`: the paper's
Figures 3-7 presentation — for one example kernel, every model x
technique cell broken into busy / read / write / acquire time,
normalized so each model's baseline is 100.  Cells run in parallel via
:func:`~repro.sim.sweep.sweep_map`; each worker ships its whole
:class:`~repro.sim.stats.StatsRegistry` back and the parent aggregates
them with :meth:`StatsRegistry.merge_from` under a per-cell prefix, so
the merged registry holds the entire matrix's counters at once.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..analysis.tables import Table
from ..consistency import get_model
from ..consistency.models import PC, RC, SC, WC, ConsistencyModel
from ..sim.stats import StatsRegistry
from ..sim.sweep import sweep_map
from ..system import RunResult, run_workload
from ..workloads.paper_examples import (
    PaperWorkload,
    example1_program,
    example2_program,
    figure5_program,
)
from .accounting import (
    CAUSES,
    PAPER_CAUSES,
    CycleBreakdown,
    breakdown_from_stats,
    machine_breakdown,
    per_cpu_breakdowns,
)
from .effectiveness import prefetch_effectiveness, speculation_effectiveness

DEFAULT_MODELS: Tuple[ConsistencyModel, ...] = (SC, PC, WC, RC)

#: technique name -> (prefetch, speculation); mirrors
#: ``repro.analysis.experiments.TECHNIQUES`` (kept literal here so this
#: module does not import the experiment suite).
TECHNIQUES: Dict[str, Tuple[bool, bool]] = {
    "baseline": (False, False),
    "prefetch": (True, False),
    "speculation": (False, True),
    "prefetch+speculation": (True, True),
}

EXAMPLES = {
    "example1": example1_program,
    "example2": example2_program,
    "figure5": figure5_program,
}


def example_workload(name: str) -> PaperWorkload:
    try:
        return EXAMPLES[name]()
    except KeyError:
        raise ValueError(
            f"unknown example {name!r}; choose from {sorted(EXAMPLES)}"
        ) from None


# ----------------------------------------------------------------------
# Single-run tables
# ----------------------------------------------------------------------

def breakdown_table(result: RunResult, title: str = "cycle breakdown") -> Table:
    """Per-CPU (plus machine-total) cause columns for one finished run."""
    num_cpus = len(result.machine.processors)
    table = Table(title, ["cpu"] + [c.value for c in CAUSES] + ["total"])
    for cpu, bd in enumerate(per_cpu_breakdowns(result.stats, num_cpus)):
        table.add_row(f"cpu{cpu}", *[bd.get(c) for c in CAUSES], bd.total)
    if num_cpus > 1:
        bd = machine_breakdown(result.stats, num_cpus)
        table.add_row("all", *[bd.get(c) for c in CAUSES], bd.total)
    table.add_note("every cycle of every CPU is attributed to exactly one "
                   "cause, so each row sums to the run's cycle count")
    return table


def effectiveness_table(result: RunResult) -> Table:
    """Prefetch / speculation outcome counts for one finished run."""
    num_cpus = len(result.machine.processors)
    table = Table(
        "technique effectiveness",
        ["cpu", "pf issued", "pf late", "pf hits", "pf useless",
         "spec inserted", "spec confirmed", "spec reissued", "spec rolled back"],
    )
    prefetch = prefetch_effectiveness(result.stats, num_cpus)
    spec = speculation_effectiveness(result.stats, num_cpus)
    for pf, sp in zip(prefetch, spec):
        table.add_row(f"cpu{pf.cpu}", pf.issued, pf.late, pf.useful_hits,
                      pf.useless_invalidated, sp.inserted, sp.confirmed,
                      sp.reissues, sp.rollbacks)
    table.add_note("late = demand access merged onto the in-flight prefetch; "
                   "useless = line lost before any demand access")
    return table


# ----------------------------------------------------------------------
# The model x technique breakdown matrix (Figures 3-7 presentation)
# ----------------------------------------------------------------------

def _breakdown_cell(
    item: Tuple[str, str, bool, bool, int],
) -> Tuple[int, StatsRegistry]:
    """Sweep worker: run one example cell, return (cycles, full stats).

    Module-level and returning picklable values, so it runs under
    ``ProcessPoolExecutor`` and the parent can ``merge_from`` the
    registry.
    """
    example, model_name, pf, spec, miss_latency = item
    wl = example_workload(example)
    result = run_workload(
        [wl.program], model=get_model(model_name), prefetch=pf,
        speculation=spec, miss_latency=miss_latency,
        initial_memory=wl.initial_memory, warm_lines=wl.warm_lines,
    )
    return result.cycles, result.stats


def example_breakdown_matrix(
    example: str = "example2",
    models: Sequence[ConsistencyModel] = DEFAULT_MODELS,
    miss_latency: int = 100,
    jobs: int = 1,
    normalize: bool = True,
    merged: Optional[StatsRegistry] = None,
) -> Table:
    """Stall breakdown for every model x technique cell of one example.

    With ``normalize`` each cause is a percentage of the model's
    *baseline* total (the paper's convention: baseline bars are 100, a
    technique bar below 100 is a win); otherwise raw cycle counts.
    Pass a registry as ``merged`` to receive every cell's counters,
    aggregated under ``<model>/<technique>/`` prefixes.
    """
    items = [(example, model.name, pf, spec, miss_latency)
             for model in models
             for pf, spec in TECHNIQUES.values()]
    cells = sweep_map(_breakdown_cell, items, jobs=jobs)

    unit = "% of model baseline" if normalize else "cycles"
    table = Table(
        f"{example}: stall breakdown per model x technique ({unit})",
        ["model", "technique"] + [c.value for c in PAPER_CAUSES]
        + ["other", "total"],
    )
    keys = [(model.name, tech) for model in models for tech in TECHNIQUES]
    by_key = dict(zip(keys, cells))
    for model in models:
        baseline_cycles = by_key[(model.name, "baseline")][0]
        for tech in TECHNIQUES:
            cycles, stats = by_key[(model.name, tech)]
            if merged is not None:
                merged.merge_from(stats, prefix=f"{model.name}/{tech}/")
            bd = breakdown_from_stats(stats, cpu=0)
            paper = sum(bd.get(c) for c in PAPER_CAUSES)
            other = bd.total - paper
            if normalize:
                norm = bd.normalized(baseline_cycles)
                row = [round(norm[c], 1) for c in PAPER_CAUSES]
                row += [round(100.0 * other / baseline_cycles, 1),
                        round(100.0 * cycles / baseline_cycles, 1)]
            else:
                row = [bd.get(c) for c in PAPER_CAUSES] + [other, cycles]
            table.add_row(model.name, tech, *row)
    table.add_note("busy/read/write/acquire are the paper's bar segments; "
                   "'other' folds rob-full, rollback and idle cycles")
    if normalize:
        table.add_note("each model's baseline total is scaled to 100")
    return table


def breakdowns_by_cell(
    merged: StatsRegistry,
    models: Sequence[ConsistencyModel] = DEFAULT_MODELS,
    cpu: int = 0,
) -> Dict[Tuple[str, str], CycleBreakdown]:
    """Read per-cell breakdowns back out of a matrix-merged registry."""
    return {
        (model.name, tech): breakdown_from_stats(
            merged, cpu, prefix=f"{model.name}/{tech}/")
        for model in models for tech in TECHNIQUES
    }

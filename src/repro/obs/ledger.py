"""Append-only, content-addressed run ledger.

Every sweep/fuzz/bench/run invocation appends one JSONL record to the
ledger, keyed by the **canonical SHA-256 of its request** — the same
canonicalize-then-hash discipline as :func:`repro.sim.sweep.derive_seed`
(there over a seed path string, here over a canonical-JSON request
object).  The request deliberately contains only what determines the
*result* (program/test identity, model, techniques, seeds, oracle
configuration) and not execution shape (``--jobs``, chunk size), so the
hash is exactly the key a future content-addressed result cache would
look up: two invocations with the same hash must produce the same
outcome, and a repeated hash in the ledger is a **dedupe hit** — work
the cache could have skipped.  ``ledger stats`` reports that hit rate
today, sizing the cache's win before it exists.

Records carry provenance (git sha, host, schema version, UTC stamp),
an outcome digest, throughput (wall seconds, items, items/s), and
artifact paths, so ``python -m repro.obs ledger list|show|stats|
trajectory`` can answer fleet-level questions — what ran, at what
throughput, trending which way — from the ledger alone.

The file format is JSONL because append is atomic enough for the
single-host case (one ``write()`` of one line) and the reader is
tolerant: unparseable or schema-invalid lines are counted and skipped,
never fatal, so a torn write cannot poison the history.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: bump when the record layout changes incompatibly
LEDGER_SCHEMA = "repro-ledger/1"

#: record kinds the CLI knows how to summarize
KNOWN_KINDS = ("fuzz", "sweep", "bench", "run", "breakdown", "serve")

#: default ledger location, relative to the working directory;
#: overridable with the REPRO_LEDGER environment variable
DEFAULT_LEDGER = os.path.join(".repro", "ledger.jsonl")

#: elapsed times below this are treated as zero in rate divisions
_MIN_WALL = 1e-9


def default_ledger_path() -> str:
    return os.environ.get("REPRO_LEDGER") or DEFAULT_LEDGER


def _canonicalize(obj: object) -> object:
    """Map non-finite floats to explicit string sentinels.

    ``json.dumps(allow_nan=False)`` raises on NaN/Infinity, and the
    permissive default emits bare ``NaN`` tokens that are not JSON at
    all — either way a single non-finite gauge (a NaN utilization on a
    zero-worker run, say) would kill the ledger append and any
    server-side request hashing built on it.  Canonicalization instead
    rewrites them to ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"``:
    deterministic, round-trippable strings, so the hash stays stable
    and the write path always produces valid JSON.
    """
    if isinstance(obj, float):
        if math.isnan(obj):
            return "NaN"
        if math.isinf(obj):
            return "Infinity" if obj > 0 else "-Infinity"
        return obj
    if isinstance(obj, dict):
        return {key: _canonicalize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(value) for value in obj]
    return obj


def canonical_json(obj: object) -> str:
    """The canonical serialization the request hash is defined over:
    sorted keys, no whitespace, non-finite floats as string sentinels
    (see :func:`_canonicalize`)."""
    return json.dumps(_canonicalize(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def request_hash(request: Mapping[str, object]) -> str:
    """SHA-256 hex digest of the canonical request serialization."""
    return hashlib.sha256(canonical_json(request).encode()).hexdigest()


def digest_outcome(outcome: Mapping[str, object]) -> str:
    """Short content digest of an outcome summary (for quick equality
    checks across ledger records sharing a request hash)."""
    return hashlib.sha256(canonical_json(outcome).encode()).hexdigest()[:16]


#: memoized (found, sha) — a server appending one record per request
#: must not pay a ``git rev-parse`` subprocess per request
_GIT_SHA_CACHE: Optional[Tuple[Optional[str]]] = None


def _git_sha() -> Optional[str]:
    global _GIT_SHA_CACHE
    if _GIT_SHA_CACHE is None:
        from .perf import _git_sha as impl
        _GIT_SHA_CACHE = (impl(),)
    return _GIT_SHA_CACHE[0]


def _host_info() -> Dict[str, object]:
    from .perf import _host_info as impl
    return impl()


def _utc_timestamp() -> str:
    from datetime import datetime, timezone
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def make_record(kind: str,
                request: Mapping[str, object],
                outcome: Mapping[str, object],
                wall_seconds: float,
                items: int = 0,
                artifacts: Optional[Mapping[str, str]] = None,
                ) -> Dict[str, object]:
    """Assemble one schema-versioned ledger record.

    ``request`` must already be canonicalizable JSON (plain dicts,
    lists, strings, numbers); ``outcome`` is a small summary of what
    happened (counts, exit status, digests) — never bulk data.
    """
    if not isinstance(kind, str) or not kind:
        raise ValueError(f"kind must be a non-empty string, got {kind!r}")
    wall = max(0.0, float(wall_seconds))
    record: Dict[str, object] = {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "request_sha256": request_hash(request),
        "request": dict(request),
        "outcome": dict(outcome),
        "outcome_digest": digest_outcome(outcome),
        "created_utc": _utc_timestamp(),
        "git_sha": _git_sha(),
        "host": _host_info(),
        "wall_seconds": round(wall, 6),
        "items": int(items),
        "items_per_second": round(items / wall, 3) if wall > _MIN_WALL else 0.0,
    }
    if artifacts:
        record["artifacts"] = dict(artifacts)
    return record


def append_jsonl(obj: object, path: str) -> str:
    """Append one object as one JSONL line with a single ``os.write``.

    The file is opened ``O_APPEND`` and the whole line (including the
    trailing newline) goes down in one ``write(2)``, so concurrent
    appenders — a server handling many requests, parallel campaigns
    sharing one ledger — never interleave mid-line.  A buffered
    ``fh.write`` gives no such guarantee: the stdio layer may flush a
    line in several syscalls, and two processes' fragments can then
    interleave into garbage the tolerant reader has to skip.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    data = (canonical_json(obj) + "\n").encode()
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)
    return path


def append_record(record: Mapping[str, object],
                  path: Optional[str] = None) -> str:
    """Append one record to the ledger (one line, one atomic write);
    returns the ledger path."""
    return append_jsonl(record, path or default_ledger_path())


def validate_record(record: object) -> List[str]:
    """Structural schema check; returns a list of problems (empty = ok)."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if record.get("schema") != LEDGER_SCHEMA:
        errors.append(f"schema must be {LEDGER_SCHEMA!r}, "
                      f"got {record.get('schema')!r}")
    for key, kind in (("kind", str), ("request_sha256", str),
                      ("request", dict), ("outcome", dict),
                      ("outcome_digest", str), ("created_utc", str),
                      ("host", dict), ("items", int)):
        if not isinstance(record.get(key), kind):
            errors.append(f"{key} must be {kind.__name__}")
    for key in ("wall_seconds", "items_per_second"):
        value = record.get(key)
        if (not isinstance(value, (int, float)) or isinstance(value, bool)
                or value < 0):
            errors.append(f"{key} must be a non-negative number")
    sha = record.get("request_sha256")
    if isinstance(sha, str) and len(sha) != 64:
        errors.append("request_sha256 must be a 64-hex-digit digest")
    if isinstance(sha, str) and isinstance(record.get("request"), dict):
        if request_hash(record["request"]) != sha:
            errors.append("request_sha256 does not match the request body")
    git = record.get("git_sha")
    if git is not None and not isinstance(git, str):
        errors.append("git_sha must be a string or null")
    return errors


def read_ledger(path: Optional[str] = None,
                ) -> Tuple[List[Dict[str, object]], int]:
    """Read every valid record, oldest first; returns
    ``(records, skipped)`` where ``skipped`` counts unparseable or
    schema-invalid lines (a torn write must never poison the history).
    """
    ledger_path = path or default_ledger_path()
    if not os.path.exists(ledger_path):
        return [], 0
    records: List[Dict[str, object]] = []
    skipped = 0
    with open(ledger_path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if validate_record(record):
                skipped += 1
                continue
            records.append(record)
    return records, skipped


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------

def find_records(records: Sequence[Mapping[str, object]],
                 hash_prefix: str) -> List[Mapping[str, object]]:
    """All records whose request hash starts with ``hash_prefix``."""
    return [r for r in records
            if str(r.get("request_sha256", "")).startswith(hash_prefix)]


def ledger_stats(records: Sequence[Mapping[str, object]]
                 ) -> Dict[str, object]:
    """Fleet-level summary: per-kind counts/walls and the dedupe-hit
    rate a content-addressed result cache would have achieved.

    A record is a *dedupe hit* when its request hash already appeared
    earlier in the ledger — the exact invocations a cache keyed on
    ``request_sha256`` could have answered without running anything.
    ``inconsistent_hits`` counts hits whose outcome digest differs from
    the first occurrence's: for deterministic requests that is a red
    flag (nondeterminism or an environment change), so it is surfaced
    rather than folded into the hit count silently.
    """
    kinds: Dict[str, Dict[str, float]] = {}
    first_outcome: Dict[str, str] = {}
    hits = 0
    inconsistent = 0
    for record in records:
        kind = str(record.get("kind", "?"))
        bucket = kinds.setdefault(kind, {"records": 0, "wall_seconds": 0.0,
                                         "items": 0, "dedupe_hits": 0})
        bucket["records"] += 1
        bucket["wall_seconds"] += float(record.get("wall_seconds", 0.0))
        bucket["items"] += int(record.get("items", 0))
        sha = str(record.get("request_sha256", ""))
        digest = str(record.get("outcome_digest", ""))
        if sha in first_outcome:
            hits += 1
            bucket["dedupe_hits"] += 1
            if digest != first_outcome[sha]:
                inconsistent += 1
        else:
            first_outcome[sha] = digest
    total = len(records)
    for bucket in kinds.values():
        bucket["wall_seconds"] = round(bucket["wall_seconds"], 3)
    return {
        "records": total,
        "unique_requests": len(first_outcome),
        "dedupe_hits": hits,
        "dedupe_hit_rate": round(hits / total, 4) if total else 0.0,
        "inconsistent_hits": inconsistent,
        "kinds": {k: kinds[k] for k in sorted(kinds)},
    }


def ledger_trajectory(records: Sequence[Mapping[str, object]],
                      kind: str = "bench") -> List[Dict[str, object]]:
    """Throughput trajectory of one record kind, oldest first — the
    bench trend (or fuzz legs/s trend) straight from the ledger."""
    out: List[Dict[str, object]] = []
    for record in records:
        if record.get("kind") != kind:
            continue
        out.append({
            "created_utc": record.get("created_utc"),
            "git_sha": record.get("git_sha"),
            "request_sha256": str(record.get("request_sha256", ""))[:12],
            "wall_seconds": record.get("wall_seconds"),
            "items": record.get("items"),
            "items_per_second": record.get("items_per_second"),
            "outcome_digest": record.get("outcome_digest"),
        })
    return out


# ----------------------------------------------------------------------
# Rendering (the obs CLI's ledger subcommands)
# ----------------------------------------------------------------------

def render_list(records: Sequence[Mapping[str, object]],
                limit: int = 20) -> str:
    """Aligned one-line-per-record listing (newest last)."""
    if not records:
        return "ledger is empty"
    shown = records[-limit:] if limit > 0 else list(records)
    header = (f"{'created (UTC)':<21} {'kind':<10} {'request':<14} "
              f"{'wall s':>9} {'items':>8} {'items/s':>9}  outcome")
    lines = [header, "-" * len(header)]
    for r in shown:
        lines.append(
            f"{str(r.get('created_utc', '?')):<21} "
            f"{str(r.get('kind', '?')):<10} "
            f"{str(r.get('request_sha256', ''))[:12] + '..':<14} "
            f"{float(r.get('wall_seconds', 0.0)):>9.3f} "
            f"{int(r.get('items', 0)):>8} "
            f"{float(r.get('items_per_second', 0.0)):>9.1f}  "
            f"{str(r.get('outcome_digest', ''))}")
    if limit > 0 and len(records) > limit:
        lines.append(f"... {len(records) - limit} older record(s) "
                     f"(raise --limit)")
    return "\n".join(lines)


def render_stats(stats: Mapping[str, object]) -> str:
    lines = [
        f"records:          {stats['records']}",
        f"unique requests:  {stats['unique_requests']}",
        f"dedupe hits:      {stats['dedupe_hits']} "
        f"(hit rate {float(stats['dedupe_hit_rate']) * 100:.1f}% — work a "
        f"content-addressed result cache would have skipped)",
    ]
    if stats.get("inconsistent_hits"):
        lines.append(f"INCONSISTENT:     {stats['inconsistent_hits']} "
                     f"repeated request(s) produced a different outcome "
                     f"digest — investigate nondeterminism")
    kinds: Mapping[str, Mapping[str, object]] = stats["kinds"]  # type: ignore[assignment]
    if kinds:
        header = (f"  {'kind':<10} {'records':>8} {'wall s':>10} "
                  f"{'items':>10} {'dedupe':>7}")
        lines += ["", header, "  " + "-" * (len(header) - 2)]
        for kind, b in kinds.items():
            lines.append(f"  {kind:<10} {int(b['records']):>8} "
                         f"{float(b['wall_seconds']):>10.3f} "
                         f"{int(b['items']):>10} {int(b['dedupe_hits']):>7}")
    return "\n".join(lines)


def render_trajectory(points: Sequence[Mapping[str, object]],
                      kind: str) -> str:
    if not points:
        return f"no {kind!r} records in the ledger"
    header = (f"{'created (UTC)':<21} {'sha':<10} {'request':<14} "
              f"{'wall s':>9} {'items':>8} {'items/s':>9}")
    lines = [header, "-" * len(header)]
    for p in points:
        sha = p.get("git_sha")
        lines.append(
            f"{str(p.get('created_utc', '?')):<21} "
            f"{(str(sha)[:8] if sha else '?'):<10} "
            f"{str(p.get('request_sha256', '')) + '..':<14} "
            f"{float(p.get('wall_seconds', 0.0)):>9.3f} "
            f"{int(p.get('items', 0)):>8} "
            f"{float(p.get('items_per_second', 0.0)):>9.1f}")
    rates = [float(p.get("items_per_second", 0.0)) for p in points]
    if len(rates) >= 2 and rates[0] > 0:
        lines.append(f"trend: {rates[0]:.1f} -> {rates[-1]:.1f} items/s "
                     f"({(rates[-1] / rates[0] - 1) * 100:+.1f}% over "
                     f"{len(rates)} record(s))")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_LEDGER",
    "KNOWN_KINDS",
    "LEDGER_SCHEMA",
    "append_jsonl",
    "append_record",
    "canonical_json",
    "default_ledger_path",
    "digest_outcome",
    "find_records",
    "ledger_stats",
    "ledger_trajectory",
    "make_record",
    "read_ledger",
    "render_list",
    "render_stats",
    "render_trajectory",
    "request_hash",
    "validate_record",
]

"""Observability command line (``python -m repro.obs``).

Subcommands::

    breakdown      run a paper example across models x techniques and print
                   the stall-breakdown matrix (Figures 3-7 presentation)
    convert        turn a JSONL trace dump into a Chrome/Perfetto JSON file
    validate       structurally check a trace_event JSON file (CI gate)
    diff           compare two archtrace JSONL streams and report the
                   first divergent architectural event
    bench          run the pinned host-performance suite and emit a
                   BENCH_<timestamp>.json record (optionally gate on it)
    bench-check    compare an existing BENCH record against the trajectory
    bench-validate structurally check BENCH record files (CI gate)
    ledger         query the content-addressed run ledger
                   (list | show | stats | trajectory)

Examples::

    python -m repro.obs breakdown example2 --normalize --jobs 4
    python -m repro.obs convert run.jsonl run.trace.json
    python -m repro.obs validate run.trace.json
    python -m repro.obs diff a.archtrace.jsonl b.archtrace.jsonl
    python -m repro.obs bench --quick
    python -m repro.obs bench-check bench/BENCH_20260805T120000Z.json
    python -m repro.obs ledger stats
    python -m repro.obs ledger trajectory --kind fuzz
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .ledger import KNOWN_KINDS
from .perfetto import (
    export_chrome_trace,
    trace_file_warnings,
    validate_trace_file,
)


def _cmd_breakdown(args: argparse.Namespace) -> int:
    # heavy import (workloads + simulator) deferred until needed
    import time

    from ..consistency.models import get_model
    from ..sim.stats import StatsRegistry
    from .report import DEFAULT_MODELS, TECHNIQUES, example_breakdown_matrix

    models = (tuple(get_model(m) for m in args.models)
              if args.models else DEFAULT_MODELS)
    merged: Optional[StatsRegistry] = StatsRegistry() if args.stats_json else None
    t0 = time.perf_counter()
    table = example_breakdown_matrix(
        args.example,
        models=models,
        miss_latency=args.miss_latency,
        jobs=args.jobs,
        normalize=args.normalize,
        merged=merged,
    )
    wall = time.perf_counter() - t0
    print(table.render())
    if args.stats_json and merged is not None:
        with open(args.stats_json, "w") as fh:
            json.dump(merged.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"merged statistics written to {args.stats_json}")
    if not args.no_ledger:
        from . import ledger as ledger_mod

        num_cells = len(models) * len(TECHNIQUES)
        record = ledger_mod.make_record(
            kind="breakdown",
            request={
                "example": args.example,
                "models": [m.name for m in models],
                "miss_latency": args.miss_latency,
                "normalize": args.normalize,
            },
            outcome={"cells": num_cells},
            wall_seconds=wall,
            items=num_cells,
            artifacts=({"stats_json": args.stats_json}
                       if args.stats_json else None),
        )
        ledger_mod.append_record(record, args.ledger)
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .jsonl import read_jsonl

    events = read_jsonl(args.jsonl)
    obj = export_chrome_trace(events, args.output)
    print(f"{args.output}: {len(obj['traceEvents'])} trace event(s) "
          f"from {len(events)} recorded event(s)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    status = 0
    for path in args.files:
        errors = validate_trace_file(path)
        if errors:
            status = 1
            print(f"{path}: INVALID")
            for err in errors[:args.max_errors]:
                print(f"  {err}")
            if len(errors) > args.max_errors:
                print(f"  ... and {len(errors) - args.max_errors} more")
            continue
        warnings = trace_file_warnings(path)
        for warning in warnings:
            print(f"{path}: WARNING: {warning}")
        if not warnings:
            print(f"{path}: ok")
        else:
            print(f"{path}: ok (with warnings)")
    return status


def _cmd_diff(args: argparse.Namespace) -> int:
    from .diff import diff_main

    return diff_main(args.trace_a, args.trace_b, context=args.context,
                     as_json=args.json)


def _cmd_bench(args: argparse.Namespace) -> int:
    from . import perf

    suite = perf.default_suite(quick=args.quick)
    if args.cases:
        known = {case.name for case in suite}
        unknown = sorted(set(args.cases) - known)
        if unknown:
            print(f"unknown case(s) {unknown}; choose from {sorted(known)}",
                  file=sys.stderr)
            return 2
        suite = [case for case in suite if case.name in args.cases]
    repeats = args.repeats if args.repeats else (3 if args.quick else 5)

    def progress(name: str) -> None:
        if not args.quiet:
            print(f"  running {name} (x{repeats}) ...", file=sys.stderr)

    record = perf.run_suite(suite, repeats=repeats, quick=args.quick,
                            progress=progress)
    print(perf.render_record(record))
    path: Optional[str] = None
    if not args.no_write:
        path = perf.write_record(record, args.out)
        print(f"bench record written to {path}")

    if not args.no_ledger:
        from . import ledger as ledger_mod

        cases: dict = record["cases"]  # type: ignore[assignment]
        ledger_mod.append_record(ledger_mod.make_record(
            kind="bench",
            request={
                "suite": sorted(cases),
                "quick": args.quick,
                "repeats": repeats,
            },
            outcome={
                name: {"wall_seconds": c["wall_seconds"],
                       "kips": c["kips"],
                       "items_per_second": c["items_per_second"]}
                for name, c in sorted(cases.items())
            },
            wall_seconds=sum(float(c["wall_seconds"]) * len(c["wall_all"])
                             for c in cases.values()),
            items=sum(int(c["items"]) for c in cases.values()),
            artifacts={"record": path} if path else None,
        ), args.ledger)

    if not args.check:
        return 0
    trajectory_dir = args.trajectory or args.out
    trajectory = perf.load_trajectory(trajectory_dir, exclude=path)
    if not trajectory:
        print(f"regression check: no trajectory in {trajectory_dir!r} "
              "(this record becomes the baseline)")
        return 0
    verdicts = perf.detect_regressions(
        [rec for _, rec in trajectory], record,
        mad_factor=args.mad_factor, rel_floor=args.rel_floor)
    print(perf.render_verdicts(verdicts))
    if perf.has_regression(verdicts) and not args.report_only:
        return 1
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from . import perf

    try:
        with open(args.record) as fh:
            record = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"{args.record}: unreadable ({exc})", file=sys.stderr)
        return 2
    errors = perf.validate_bench_record(record)
    if errors:
        print(f"{args.record}: INVALID")
        for err in errors:
            print(f"  {err}")
        return 2
    trajectory = perf.load_trajectory(args.trajectory, exclude=args.record)
    if not trajectory:
        print(f"regression check: no trajectory in {args.trajectory!r} "
              "(nothing to compare against)")
        return 0
    verdicts = perf.detect_regressions(
        [rec for _, rec in trajectory], record,
        mad_factor=args.mad_factor, rel_floor=args.rel_floor)
    print(perf.render_verdicts(verdicts))
    if perf.has_regression(verdicts) and not args.report_only:
        return 1
    return 0


def _cmd_bench_validate(args: argparse.Namespace) -> int:
    from . import perf

    status = 0
    for path in args.files:
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable ({exc})")
            status = 1
            continue
        errors = perf.validate_bench_record(record)
        if errors:
            status = 1
            print(f"{path}: INVALID")
            for err in errors:
                print(f"  {err}")
        else:
            print(f"{path}: ok")
    return status


def _cmd_ledger(args: argparse.Namespace) -> int:
    from . import ledger as ledger_mod

    records, skipped = ledger_mod.read_ledger(args.ledger)
    if skipped:
        print(f"WARNING: skipped {skipped} invalid ledger line(s)",
              file=sys.stderr)
    if args.kind:
        records = [r for r in records if r.get("kind") == args.kind]

    if args.ledger_command == "list":
        print(ledger_mod.render_list(records, limit=args.limit))
        return 0
    if args.ledger_command == "show":
        matches = ledger_mod.find_records(records, args.hash)
        if not matches:
            print(f"no ledger record matches request hash {args.hash!r}",
                  file=sys.stderr)
            return 1
        for record in matches:
            print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    if args.ledger_command == "stats":
        stats = ledger_mod.ledger_stats(records)
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(ledger_mod.render_stats(stats))
        return 0
    if args.ledger_command == "trajectory":
        kind = args.kind or "bench"
        points = ledger_mod.ledger_trajectory(records, kind=kind)
        if args.json:
            print(json.dumps(points, indent=2, sort_keys=True))
        else:
            print(ledger_mod.render_trajectory(points, kind))
        return 0
    raise AssertionError(f"unhandled ledger command "
                         f"{args.ledger_command!r}")  # pragma: no cover


def _add_ledger_path_argument(p: argparse.ArgumentParser) -> None:
    p.add_argument("--ledger", metavar="FILE", default=None,
                   help="run-ledger JSONL path (default: "
                        "$REPRO_LEDGER or .repro/ledger.jsonl)")


def _add_threshold_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trajectory", default="bench", metavar="DIR",
                   help="directory holding the committed BENCH_*.json "
                        "trajectory (default: bench)")
    p.add_argument("--mad-factor", type=float, default=5.0,
                   help="regression margin in MAD-derived sigmas (default 5)")
    p.add_argument("--rel-floor", type=float, default=0.25,
                   help="minimum relative margin when the history is flat "
                        "(default 0.25 = 25%%)")
    p.add_argument("--report-only", action="store_true",
                   help="print verdicts but always exit 0 (CI advisory mode)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Cycle accounting and trace-export utilities.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("breakdown",
                       help="stall-breakdown matrix for a paper example")
    p.add_argument("example", nargs="?", default="example2",
                   choices=("example1", "example2", "figure5"))
    p.add_argument("--models", nargs="*", metavar="MODEL",
                   help="models to include (default: SC PC WC RC)")
    p.add_argument("--miss-latency", type=int, default=100)
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel sweep workers")
    p.add_argument("--raw", dest="normalize", action="store_false",
                   help="print raw cycle counts instead of normalized %")
    p.add_argument("--stats-json", metavar="FILE",
                   help="write the merged per-cell statistics registry here")
    _add_ledger_path_argument(p)
    p.add_argument("--no-ledger", action="store_true",
                   help="do not append this run to the run ledger")
    p.set_defaults(func=_cmd_breakdown)

    p = sub.add_parser("convert",
                       help="JSONL trace -> Chrome/Perfetto trace_event JSON")
    p.add_argument("jsonl", help="input JSONL trace (see --trace-jsonl)")
    p.add_argument("output", help="output trace_event JSON file")
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser("validate",
                       help="structurally check trace_event JSON files")
    p.add_argument("files", nargs="+", help="trace_event JSON files")
    p.add_argument("--max-errors", type=int, default=20)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("diff",
                       help="first-divergence diff of two archtrace "
                            "JSONL streams (exit 1 when they diverge)")
    p.add_argument("trace_a", help="reference archtrace (--archtrace output)")
    p.add_argument("trace_b", help="subject archtrace")
    p.add_argument("--context", type=int, default=5,
                   help="events of context around the divergence "
                        "(default 5)")
    p.add_argument("--json", action="store_true",
                   help="emit the DivergenceReport as JSON instead of text")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("bench",
                       help="run the pinned host-performance suite and "
                            "emit a BENCH record")
    p.add_argument("--quick", action="store_true",
                   help="reduced budgets + 3 repetitions (CI smoke)")
    p.add_argument("--repeats", type=int, default=0, metavar="N",
                   help="repetitions per case, median reported "
                        "(default: 3 quick, 5 full)")
    p.add_argument("--cases", nargs="*", metavar="NAME",
                   help="run only these cases (default: whole suite)")
    p.add_argument("--out", default="bench", metavar="DIR",
                   help="directory for the BENCH_<timestamp>.json record "
                        "(default: bench)")
    p.add_argument("--no-write", action="store_true",
                   help="measure and print, but write no record file")
    p.add_argument("--check", action="store_true",
                   help="after measuring, run the regression detector "
                        "against the trajectory and exit non-zero on "
                        "regression")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-case progress on stderr")
    _add_ledger_path_argument(p)
    p.add_argument("--no-ledger", action="store_true",
                   help="do not append this run to the run ledger")
    _add_threshold_arguments(p)
    p.set_defaults(func=_cmd_bench, trajectory=None)

    p = sub.add_parser("bench-check",
                       help="compare an existing BENCH record against "
                            "the committed trajectory")
    p.add_argument("record", help="BENCH_*.json record to judge")
    _add_threshold_arguments(p)
    p.set_defaults(func=_cmd_bench_check)

    p = sub.add_parser("bench-validate",
                       help="structurally check BENCH record files")
    p.add_argument("files", nargs="+", help="BENCH_*.json files")
    p.set_defaults(func=_cmd_bench_validate)

    p = sub.add_parser("ledger",
                       help="query the content-addressed run ledger")
    lsub = p.add_subparsers(dest="ledger_command", required=True)

    lp = lsub.add_parser("list", help="one line per record, newest last")
    _add_ledger_path_argument(lp)
    lp.add_argument("--kind", choices=KNOWN_KINDS,
                    help="only records of this kind")
    lp.add_argument("--limit", type=int, default=20,
                    help="newest N records (0 = all; default 20)")
    lp.set_defaults(func=_cmd_ledger)

    lp = lsub.add_parser("show",
                         help="dump records matching a request-hash prefix")
    lp.add_argument("hash", help="request_sha256 prefix")
    _add_ledger_path_argument(lp)
    lp.set_defaults(func=_cmd_ledger, kind=None)

    lp = lsub.add_parser("stats",
                         help="per-kind totals and the dedupe-hit rate a "
                              "content-addressed result cache would see")
    _add_ledger_path_argument(lp)
    lp.add_argument("--kind", choices=KNOWN_KINDS,
                    help="restrict to one record kind")
    lp.add_argument("--json", action="store_true",
                    help="emit the stats object as JSON")
    lp.set_defaults(func=_cmd_ledger)

    lp = lsub.add_parser("trajectory",
                         help="throughput trend of one record kind, "
                              "oldest first (default: bench)")
    _add_ledger_path_argument(lp)
    lp.add_argument("--kind", choices=KNOWN_KINDS, default="bench")
    lp.add_argument("--json", action="store_true",
                    help="emit the trajectory points as JSON")
    lp.set_defaults(func=_cmd_ledger)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

"""Observability command line (``python -m repro.obs``).

Subcommands::

    breakdown  run a paper example across models x techniques and print
               the stall-breakdown matrix (Figures 3-7 presentation)
    convert    turn a JSONL trace dump into a Chrome/Perfetto JSON file
    validate   structurally check a trace_event JSON file (CI gate)

Examples::

    python -m repro.obs breakdown example2 --normalize --jobs 4
    python -m repro.obs convert run.jsonl run.trace.json
    python -m repro.obs validate run.trace.json
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from .perfetto import export_chrome_trace, validate_trace_file


def _cmd_breakdown(args: argparse.Namespace) -> int:
    # heavy import (workloads + simulator) deferred until needed
    from ..consistency.models import get_model
    from ..sim.stats import StatsRegistry
    from .report import DEFAULT_MODELS, example_breakdown_matrix

    models = (tuple(get_model(m) for m in args.models)
              if args.models else DEFAULT_MODELS)
    merged: Optional[StatsRegistry] = StatsRegistry() if args.stats_json else None
    table = example_breakdown_matrix(
        args.example,
        models=models,
        miss_latency=args.miss_latency,
        jobs=args.jobs,
        normalize=args.normalize,
        merged=merged,
    )
    print(table.render())
    if args.stats_json and merged is not None:
        with open(args.stats_json, "w") as fh:
            json.dump(merged.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"merged statistics written to {args.stats_json}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .jsonl import read_jsonl

    events = read_jsonl(args.jsonl)
    obj = export_chrome_trace(events, args.output)
    print(f"{args.output}: {len(obj['traceEvents'])} trace event(s) "
          f"from {len(events)} recorded event(s)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    status = 0
    for path in args.files:
        errors = validate_trace_file(path)
        if errors:
            status = 1
            print(f"{path}: INVALID")
            for err in errors[:args.max_errors]:
                print(f"  {err}")
            if len(errors) > args.max_errors:
                print(f"  ... and {len(errors) - args.max_errors} more")
        else:
            print(f"{path}: ok")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Cycle accounting and trace-export utilities.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("breakdown",
                       help="stall-breakdown matrix for a paper example")
    p.add_argument("example", nargs="?", default="example2",
                   choices=("example1", "example2", "figure5"))
    p.add_argument("--models", nargs="*", metavar="MODEL",
                   help="models to include (default: SC PC WC RC)")
    p.add_argument("--miss-latency", type=int, default=100)
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel sweep workers")
    p.add_argument("--raw", dest="normalize", action="store_false",
                   help="print raw cycle counts instead of normalized %")
    p.add_argument("--stats-json", metavar="FILE",
                   help="write the merged per-cell statistics registry here")
    p.set_defaults(func=_cmd_breakdown)

    p = sub.add_parser("convert",
                       help="JSONL trace -> Chrome/Perfetto trace_event JSON")
    p.add_argument("jsonl", help="input JSONL trace (see --trace-jsonl)")
    p.add_argument("output", help="output trace_event JSON file")
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser("validate",
                       help="structurally check trace_event JSON files")
    p.add_argument("files", nargs="+", help="trace_event JSON files")
    p.add_argument("--max-errors", type=int, default=20)
    p.set_defaults(func=_cmd_validate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

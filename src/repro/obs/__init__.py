"""Observability: cycle accounting, effectiveness metrics, trace export.

The paper's results are *normalized execution-time breakdowns*; this
package reproduces that accounting on the detailed simulator and adds
the modern tooling around it — per-cause cycle blame
(:mod:`~repro.obs.accounting`), prefetch/speculation effectiveness
counters (:mod:`~repro.obs.effectiveness`), streaming JSONL traces
(:mod:`~repro.obs.jsonl`), Chrome/Perfetto timeline export
(:mod:`~repro.obs.perfetto`), the canonical backend-agnostic
architectural event stream (:mod:`~repro.obs.archtrace`) and its
first-divergence differ (:mod:`~repro.obs.diff`).
``python -m repro.obs`` is the CLI.

Fleet-level telemetry lives in :mod:`repro.obs.telemetry` (campaign
metrics registry + cross-process span tracing) and
:mod:`repro.obs.ledger` (the content-addressed run ledger); both are
stdlib-only and imported lazily by the orchestration layers, so they
are re-exported here without widening this package's import footprint.

Import discipline: this package is imported by the processor core, so
only modules that depend on nothing above ``repro.sim`` are pulled in
here.  The heavyweight report layer (:mod:`repro.obs.report`, which
needs workloads and the sweep engine) must be imported explicitly by
entry points.
"""

from .accounting import (
    CAUSES,
    PAPER_CAUSES,
    CycleAccountant,
    CycleBreakdown,
    StallCause,
    breakdown_from_stats,
    machine_breakdown,
    per_cpu_breakdowns,
    render_breakdown,
)
from .effectiveness import (
    PrefetchEffectiveness,
    SpeculationEffectiveness,
    prefetch_effectiveness,
    render_effectiveness,
    speculation_effectiveness,
)
from .archtrace import (
    ARCHTRACE_VERSION,
    ArchEvent,
    ArchTraceCollector,
    ArchTraceReader,
    TeeTrace,
    derive_arch_event,
    read_archtrace,
)
from .diff import DivergenceReport, diff_archtraces
from .jsonl import JsonlTraceRecorder, read_jsonl, write_jsonl
from .ledger import (
    LEDGER_SCHEMA,
    append_record,
    ledger_stats,
    make_record,
    read_ledger,
    request_hash,
)
from .perfetto import (
    export_chrome_trace,
    to_trace_events,
    trace_warnings,
    validate_trace_events,
    validate_trace_file,
)

__all__ = [
    "ARCHTRACE_VERSION",
    "ArchEvent",
    "ArchTraceCollector",
    "ArchTraceReader",
    "CAUSES",
    "PAPER_CAUSES",
    "CycleAccountant",
    "CycleBreakdown",
    "DivergenceReport",
    "JsonlTraceRecorder",
    "LEDGER_SCHEMA",
    "PrefetchEffectiveness",
    "SpeculationEffectiveness",
    "StallCause",
    "TeeTrace",
    "append_record",
    "breakdown_from_stats",
    "derive_arch_event",
    "diff_archtraces",
    "export_chrome_trace",
    "ledger_stats",
    "machine_breakdown",
    "make_record",
    "per_cpu_breakdowns",
    "prefetch_effectiveness",
    "read_archtrace",
    "read_jsonl",
    "read_ledger",
    "render_breakdown",
    "render_effectiveness",
    "request_hash",
    "speculation_effectiveness",
    "to_trace_events",
    "trace_warnings",
    "validate_trace_events",
    "validate_trace_file",
    "write_jsonl",
]

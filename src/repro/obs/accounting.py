"""Cycle accounting: blame every cycle on exactly one cause.

The paper's central results (Figures 3-7) are *normalized execution
time breakdowns*: each model x technique bar splits total time into
busy time and per-cause stall time.  This module reproduces that
accounting on the detailed simulator.

Every cycle of every CPU is attributed to exactly one
:class:`StallCause`, decided by commit-blame: if at least one
instruction retired this cycle the cycle was *busy*; otherwise the
oldest instruction in the reorder buffer (the retirement bottleneck) is
blamed —

* an acquire (lock RMW or acquiring load) at the head is an
  **acquire/fence stall**;
* any other load at the head is a **read stall**;
* a store or plain RMW at the head is a **write/store-buffer stall**
  (this is where SC's store-completion rule shows up);
* a non-memory head that cannot complete while the reorder buffer is
  full is a **ROB-full stall**;
* cycles spent refilling the pipeline after a squash (branch
  mispredict or speculative-load correction) are **rollback**;
* everything else — frontend fill, in-flight ALU work — counts as
  busy, and cycles after a finished program has fully drained are
  **idle** (only visible on multiprocessor runs where another CPU is
  still working, and in the few fabric-drain cycles at the end).

Because the classification is total and exclusive, the per-CPU cause
counters sum *exactly* to the run's cycle count — the invariant the
golden-number breakdown tests pin.

Counters land in the shared :class:`~repro.sim.stats.StatsRegistry`
under ``cpu<k>/cycles/<cause>``, so breakdowns from parallel sweep
workers aggregate with :meth:`StatsRegistry.merge_from` like every
other statistic.

This module deliberately imports nothing above ``repro.sim`` so the
processor can depend on it without import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from ..sim.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..cpu.rob import RobEntry


class StallCause(enum.Enum):
    """Where a CPU cycle went.  Values double as stat-name suffixes."""

    BUSY = "busy"
    READ = "read_stall"
    WRITE = "write_stall"
    ACQUIRE = "acquire_stall"
    ROB_FULL = "rob_full"
    ROLLBACK = "rollback"
    IDLE = "idle"


#: All causes, in report order (busy first, idle last).
CAUSES = tuple(StallCause)

#: The paper's four headline categories (Figures 3-7 bar segments).
PAPER_CAUSES = (StallCause.BUSY, StallCause.READ, StallCause.WRITE,
                StallCause.ACQUIRE)


class CycleAccountant:
    """Per-CPU cycle blame, fed once per tick by the processor."""

    def __init__(self, stats: StatsRegistry, name: str) -> None:
        self.name = name
        self._counters = {
            cause: stats.counter(f"{name}/cycles/{cause.value}")
            for cause in CAUSES
        }
        self._refilling = False  # between a squash and the next retirement

    # ------------------------------------------------------------------
    def note_squash(self) -> None:
        """The processor discarded in-flight work; until something
        retires again, otherwise-unattributable cycles are rollback."""
        self._refilling = True

    def account(self, retired: int, head: Optional["RobEntry"],
                rob_full: bool) -> None:
        """Attribute the cycle that just executed (active program)."""
        self._counters[self._classify(retired, head, rob_full)].inc()

    def account_drained(self, lsu_empty: bool) -> None:
        """Attribute a cycle after the program retired its Halt: the
        store buffer may still be draining (write stall), after which
        the CPU is idle."""
        cause = StallCause.IDLE if lsu_empty else StallCause.WRITE
        self._counters[cause].inc()

    # ------------------------------------------------------------------
    # Sleep support: the counters a frozen (zero-retirement) cycle would
    # increment, without incrementing them.  Used by the processor's
    # ``next_wake`` to pre-compute the effects replayed by
    # ``skip_cycles``; classification with ``retired=0`` never touches
    # ``_refilling``, so these lookups are side-effect free.
    def stall_counter(self, head: Optional["RobEntry"], rob_full: bool):
        """Counter :meth:`account` would bump for a no-retirement cycle."""
        return self._counters[self._classify(0, head, rob_full)]

    def drained_counter(self, lsu_empty: bool):
        """Counter :meth:`account_drained` would bump."""
        cause = StallCause.IDLE if lsu_empty else StallCause.WRITE
        return self._counters[cause]

    # ------------------------------------------------------------------
    def _classify(self, retired: int, head: Optional["RobEntry"],
                  rob_full: bool) -> StallCause:
        if retired > 0:
            self._refilling = False
            return StallCause.BUSY
        if head is None:
            # empty window: the frontend is filling — after a squash
            # that refill time is the visible cost of the rollback
            return StallCause.ROLLBACK if self._refilling else StallCause.BUSY
        instr = head.instr
        if instr.is_memory:
            if instr.is_acquire:
                return StallCause.ACQUIRE
            if instr.is_store or instr.is_rmw:
                return StallCause.WRITE
            return StallCause.READ
        if self._refilling:
            return StallCause.ROLLBACK
        if rob_full:
            return StallCause.ROB_FULL
        return StallCause.BUSY


@dataclass
class CycleBreakdown:
    """One CPU's cycle-cause totals (the data behind one paper bar)."""

    counts: Dict[StallCause, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def get(self, cause: StallCause) -> int:
        return self.counts.get(cause, 0)

    def fraction(self, cause: StallCause) -> float:
        total = self.total
        return self.get(cause) / total if total else 0.0

    def normalized(self, baseline_total: int) -> Dict[StallCause, float]:
        """Each cause as a percentage of ``baseline_total`` (the
        paper's convention: every bar is scaled so the model's baseline
        bar is 100)."""
        if baseline_total <= 0:
            return {cause: 0.0 for cause in CAUSES}
        return {cause: 100.0 * self.get(cause) / baseline_total
                for cause in CAUSES}

    def merged_with(self, other: "CycleBreakdown") -> "CycleBreakdown":
        counts = dict(self.counts)
        for cause, n in other.counts.items():
            counts[cause] = counts.get(cause, 0) + n
        return CycleBreakdown(counts)

    def as_dict(self) -> Dict[str, int]:
        return {cause.value: self.get(cause) for cause in CAUSES}


def breakdown_from_stats(stats: StatsRegistry, cpu: int,
                         prefix: str = "") -> CycleBreakdown:
    """Read one CPU's breakdown back out of a (possibly merged) registry.

    ``prefix`` addresses counters aggregated with
    ``StatsRegistry.merge_from(other, prefix=...)``."""
    return CycleBreakdown({
        cause: stats.counter(f"{prefix}cpu{cpu}/cycles/{cause.value}").value
        for cause in CAUSES
    })


def per_cpu_breakdowns(stats: StatsRegistry, num_cpus: int) -> List[CycleBreakdown]:
    return [breakdown_from_stats(stats, cpu) for cpu in range(num_cpus)]


def machine_breakdown(stats: StatsRegistry, num_cpus: int) -> CycleBreakdown:
    """All CPUs' causes summed — the machine-wide stall distribution."""
    total = CycleBreakdown()
    for bd in per_cpu_breakdowns(stats, num_cpus):
        total = total.merged_with(bd)
    return total


def render_breakdown(
    breakdowns: Mapping[str, CycleBreakdown],
    title: str = "cycle breakdown",
) -> str:
    """Plain-text per-row breakdown table (no heavy dependencies, so
    ``run.py --breakdown`` stays importable from anywhere)."""
    columns = ["" ] + [cause.value for cause in CAUSES] + ["total"]
    rows: List[List[str]] = []
    for label, bd in breakdowns.items():
        rows.append([label] + [str(bd.get(c)) for c in CAUSES] + [str(bd.total)])
    widths = [max(len(columns[i]), *(len(r[i]) for r in rows)) if rows
              else len(columns[i])
              for i in range(len(columns))]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(c.rjust(w) for c, w in zip(columns, widths)))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

"""Continuous-benchmark harness and noise-aware regression gate.

The ROADMAP's "runs as fast as the hardware allows" is unenforceable
without a measured baseline, so this module gives the repo the same
discipline for *performance* that the golden-number pins give it for
*correctness*:

* a **pinned suite** of host-side benchmark cases (the paper examples
  on the detailed simulator, a critical-section contention run, the
  analytical model, raw coherence ping-pong, a fuzzer budget slice, a
  batched-vs-scalar fuzz-throughput pair, and a sweep-engine dispatch
  probe), each measured median-of-N;
* a **schema-versioned record** (``BENCH_<timestamp>.json``: git sha,
  host info, per-case wall time / KIPS / peak RSS) appended to a
  committed trajectory directory, so every PR leaves a comparable data
  point;
* a **noise-aware regression detector** comparing a new record against
  the trajectory with median + MAD thresholds (plus relative and
  absolute noise floors, so a near-zero MAD from a short flat history
  cannot produce false positives).

``python -m repro.obs bench`` is the CLI entry point; see
``docs/performance.md`` for the workflow.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: bump when the record layout changes incompatibly
BENCH_SCHEMA = "repro-bench/1"

#: consistency factor turning a MAD into a normal-equivalent sigma
MAD_SIGMA = 1.4826

#: elapsed times below this are treated as zero in rate divisions
_MIN_WALL = 1e-9

#: one benchmark case: a zero-argument callable returning the amount of
#: simulated work done, as ``{"cycles": int, "instructions": int,
#: "items": int}`` (zero where a dimension does not apply)
CaseFn = Callable[[], Dict[str, int]]


@dataclass
class CaseSpec:
    name: str
    description: str
    fn: CaseFn


# ----------------------------------------------------------------------
# The pinned suite
# ----------------------------------------------------------------------

def _work_from_results(results: Sequence[object]) -> Dict[str, int]:
    """Sum cycles / retired instructions over ``RunResult`` objects."""
    cycles = 0
    instructions = 0
    for result in results:
        cycles += result.cycles  # type: ignore[attr-defined]
        counters = result.stats.counters()  # type: ignore[attr-defined]
        instructions += sum(v for k, v in counters.items()
                            if k.endswith("/instructions_retired"))
    return {"cycles": cycles, "instructions": instructions,
            "items": len(results)}


def _case_example(example: str) -> CaseFn:
    """One paper example on the detailed simulator, SC and RC cells."""
    def fn() -> Dict[str, int]:
        from ..consistency import get_model
        from ..system import run_workload
        from .report import example_workload

        wl = example_workload(example)
        results = [
            run_workload([wl.program], model=get_model(model),
                         prefetch=True, speculation=True,
                         initial_memory=wl.initial_memory,
                         warm_lines=wl.warm_lines)
            for model in ("SC", "RC")
        ]
        return _work_from_results(results)
    return fn


def _case_critical_section(iterations: int) -> CaseFn:
    """Two CPUs contending on locks: the detailed-simulator hot path."""
    def fn() -> Dict[str, int]:
        from ..consistency import RC
        from ..system import run_workload
        from ..workloads import critical_section_workload

        wl = critical_section_workload(num_cpus=2, iterations=iterations,
                                       shared_counters=3, private=True)
        result = run_workload(wl.programs, model=RC, prefetch=True,
                              speculation=True,
                              initial_memory=wl.initial_memory,
                              max_cycles=2_000_000)
        return _work_from_results([result])
    return fn


def _case_analytical(segments: int) -> CaseFn:
    """The paper's analytical timing model over random segments."""
    def fn() -> Dict[str, int]:
        from ..consistency import SC
        from ..core import AnalyticalTimingModel
        from ..workloads import random_segment

        engine = AnalyticalTimingModel()
        cycles = 0
        accesses = 0
        for rng in range(segments):
            segment = random_segment(length=60, sync_period=8, rng=rng)
            cycles += engine.schedule(segment, SC, prefetch=True,
                                      speculation=True).total_cycles
            accesses += len(segment)
        return {"cycles": cycles, "instructions": accesses,
                "items": segments}
    return fn


def _case_memory_pingpong(stores: int) -> CaseFn:
    """Raw coherence traffic: a line ping-ponging between two caches."""
    def fn() -> Dict[str, int]:
        from ..memory import AccessKind, AccessRequest
        from ..sim import Simulator
        from ..system.fabric import MemoryFabric

        sim = Simulator()
        fabric = MemoryFabric(sim, num_cpus=2)
        done: List[int] = []
        for i in range(stores):
            req = AccessRequest(req_id=i + 1, kind=AccessKind.STORE,
                                addr=0x40, value=i,
                                callback=lambda r, v: done.append(r.req_id))
            assert fabric.caches[i % 2].access(req)
            sim.run(until=lambda i=i: len(done) > i, max_cycles=100_000,
                    deadlock_check=False)
        return {"cycles": sim.cycle, "instructions": 0, "items": stores}
    return fn


def _case_fuzz_slice(budget: int) -> CaseFn:
    """A slice of the differential conformance fuzzer's per-PR budget."""
    def fn() -> Dict[str, int]:
        from ..sim.sweep import derive_seed
        from ..verify import check_seed

        runs = 0
        for i in range(budget):
            result = check_seed((i, derive_seed(0, i, "bench"), {}))
            if not result.ok:  # pragma: no cover - would be a real bug
                raise RuntimeError(
                    f"fuzz slice found a divergence at seed {result.seed}; "
                    "run python -m repro.verify")
            runs += result.num_runs
        return {"cycles": 0, "instructions": 0, "items": runs}
    return fn


def _batch_fuzz_jobs(seeds: int, models: Sequence[str],
                     configs: int) -> List[object]:
    """The fuzzer's conventional simulator legs as a lockstep job list.

    Mirrors what ``python -m repro.verify --backend batched`` hands to
    the runner: generated litmus tests crossed with consistency models
    and the harness's default run configs, techniques off (the batch
    envelope).  Both fuzz throughput cases share this shape so their
    wall times are directly comparable.
    """
    from ..memory.types import CacheConfig
    from ..sim.batch import BatchJob
    from ..verify.generator import generate_litmus
    from ..verify.harness import DEFAULT_RUN_CONFIGS

    jobs: List[object] = []
    for seed in range(seeds):
        test = generate_litmus(seed)
        addresses = test.addresses()
        nthreads = len(test.threads)
        for rc in DEFAULT_RUN_CONFIGS[:configs]:
            skew = tuple(rc.skew[t % len(rc.skew)] for t in range(nthreads))
            programs, _ = test.to_programs(delays=skew)
            warm = ()
            if rc.warm_shared:
                warm = tuple((cpu, addr, False) for cpu in range(nthreads)
                             for addr in addresses.values())
            for model_name in models:
                jobs.append(BatchJob(
                    programs=programs, model_name=model_name,
                    miss_latency=rc.miss_latency,
                    initial_memory={a: 0 for a in addresses.values()},
                    warm_lines=warm,
                    cache=CacheConfig(line_size=rc.line_size),
                    max_cycles=rc.max_cycles))
    return jobs


def _case_fuzz_jobs(seeds: int, force_scalar: bool) -> CaseFn:
    """Fuzzer job-list throughput on one runner backend.

    ``items_per_second`` is the headline: simulator legs (tests x
    models x run configs) completed per second.  Outcomes are consumed
    the way the fuzz harness does — final cycles and memory words, no
    stats materialization — so the measured rate is what ``repro.verify
    --backend batched`` actually sees per chunk.
    """
    def fn() -> Dict[str, int]:
        from ..sim.batch import BatchRunner

        jobs = _batch_fuzz_jobs(seeds, ("SC", "PC", "WC", "RC"), 2)
        results = BatchRunner(force_scalar=force_scalar).run(jobs)
        cycles = 0
        for res in results:
            if not res.ok:  # pragma: no cover - would be a real bug
                raise RuntimeError(f"fuzz job errored: {res.error!r}")
            cycles += res.cycles
        return {"cycles": cycles, "instructions": 0, "items": len(results)}
    return fn


def _sweep_probe_worker(x: int) -> int:
    # deliberately tiny: the probe measures the sweep engine's own
    # chunking/dispatch overhead, not the work inside the worker
    acc = 0
    for i in range(200):
        acc = (acc * 1103515245 + x + i) & 0x7FFFFFFF
    return acc


def _case_sweep_probe(items: int, jobs: int) -> CaseFn:
    """Sweep-engine throughput: dispatch overhead over trivial items."""
    def fn() -> Dict[str, int]:
        from ..sim.sweep import run_sweep

        result = run_sweep(_sweep_probe_worker, list(range(items)),
                           jobs=jobs, chunk_size=max(1, items // 8))
        return {"cycles": 0, "instructions": 0, "items": len(result.results)}
    return fn


def _case_serve_loadgen(count: int, clients: int, warm: bool) -> CaseFn:
    """Closed-loop latency through the job server, cold or warm cache.

    Each case owns one in-process :class:`~repro.serve.server.ServerThread`
    (started lazily on the first repeat, ledger and request log off so
    the bench is hermetic) and drives it with the deterministic loadgen
    mix over the real wire protocol.  The *cold* case clears the result
    store before every repeat, so every job pays a simulation; the
    *warm* case primes the cache once and then measures pure
    content-addressed hits.  The pair is the serving analogue of the
    ``fuzz_batched`` / ``fuzz_scalar_jobs`` throughput pair: same jobs,
    two code paths, directly comparable wall times.
    """
    state: Dict[str, object] = {}

    def fn() -> Dict[str, int]:
        import tempfile

        from ..serve import (
            ResultStore,
            ServeServer,
            ServerThread,
            build_job_mix,
            run_closed_loop,
        )

        if "endpoint" not in state:
            from . import telemetry as tm

            root = tempfile.mkdtemp(prefix="repro-serve-bench-")
            server = ServeServer(store=ResultStore(root),
                                 executor_kind="serial",
                                 ledger=False, request_log=False)
            state["server"] = server
            # the server lives until process exit (daemon thread), so
            # undo its global telemetry enable here rather than at
            # aclose() — later bench cases must run unperturbed
            prev_telemetry = tm.enabled()
            state["endpoint"] = ServerThread(server).start()
            tm.enable(prev_telemetry)
        server = state["server"]  # type: ignore[assignment]
        host, port = state["endpoint"]  # type: ignore[misc]
        jobs = build_job_mix(count, seed=7)
        if warm:
            if not state.get("primed"):
                run_closed_loop(host, port, jobs, clients=clients)
                state["primed"] = True
        else:
            server.store.clear()  # type: ignore[attr-defined]
        report = run_closed_loop(host, port, jobs, clients=clients)
        if report.errors:  # pragma: no cover - would be a real bug
            raise RuntimeError(f"{report.errors} serve bench job(s) failed")
        return {"cycles": 0, "instructions": 0, "items": report.completed}

    return fn


def default_suite(quick: bool = False) -> List[CaseSpec]:
    """The pinned benchmark suite (``--quick`` scales budgets down)."""
    return [
        CaseSpec("example1_detailed",
                 "paper Example 1, detailed simulator, SC+RC with both techniques",
                 _case_example("example1")),
        CaseSpec("example2_detailed",
                 "paper Example 2, detailed simulator, SC+RC with both techniques",
                 _case_example("example2")),
        CaseSpec("critical_section_detailed",
                 "2-CPU lock contention on the detailed simulator (RC, both techniques)",
                 _case_critical_section(iterations=2 if quick else 4)),
        CaseSpec("analytical_model",
                 "analytical timing model over random access segments",
                 _case_analytical(segments=10 if quick else 50)),
        CaseSpec("memory_pingpong",
                 "cache line ping-pong between two caches (coherence hot path)",
                 _case_memory_pingpong(stores=20 if quick else 40)),
        CaseSpec("fuzz_slice",
                 "differential conformance fuzzer, a slice of the per-PR budget",
                 _case_fuzz_slice(budget=2 if quick else 6)),
        CaseSpec("sweep_probe",
                 "parallel sweep engine dispatch overhead (2 worker processes)",
                 _case_sweep_probe(items=64 if quick else 512, jobs=2)),
        CaseSpec("serve_cold_cache",
                 "job-server closed-loop latency, cold result cache "
                 "(every job pays a simulation)",
                 _case_serve_loadgen(count=8 if quick else 24, clients=2,
                                     warm=False)),
        CaseSpec("serve_warm_cache",
                 "the same job mix answered from the content-addressed "
                 "result cache (no simulator invocations)",
                 _case_serve_loadgen(count=8 if quick else 24, clients=2,
                                     warm=True)),
        # the lockstep pair runs last: its SoA tables inflate this
        # process's RSS, which would slow sweep_probe's fork() if it
        # ran first
        CaseSpec("fuzz_batched",
                 "fuzzer simulator legs on the batched lockstep engine "
                 "(items/s = legs per second)",
                 _case_fuzz_jobs(seeds=12 if quick else 120,
                                 force_scalar=False)),
        CaseSpec("fuzz_scalar_jobs",
                 "the same fuzzer simulator legs on the scalar kernel "
                 "(the batched case's throughput baseline)",
                 _case_fuzz_jobs(seeds=12 if quick else 120,
                                 force_scalar=True)),
    ]


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

def peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        rss //= 1024
    return int(rss)


def run_case(case: CaseSpec, repeats: int = 3) -> Dict[str, object]:
    """Measure one case median-of-``repeats``; return its record entry."""
    from . import telemetry as tm

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    walls: List[float] = []
    work: Dict[str, int] = {}
    with tm.span(f"bench/{case.name}", {"repeats": repeats}):
        for _ in range(repeats):
            t0 = time.perf_counter()
            work = case.fn()
            walls.append(time.perf_counter() - t0)
    wall = statistics.median(walls)

    def rate(amount: int) -> float:
        return amount / wall if wall > _MIN_WALL else 0.0

    return {
        "description": case.description,
        "wall_seconds": round(wall, 6),
        "wall_all": [round(w, 6) for w in walls],
        "sim_cycles": int(work.get("cycles", 0)),
        "instructions": int(work.get("instructions", 0)),
        "items": int(work.get("items", 0)),
        "kips": round(rate(int(work.get("instructions", 0))) / 1e3, 3),
        "cycles_per_second": round(rate(int(work.get("cycles", 0))), 1),
        "items_per_second": round(rate(int(work.get("items", 0))), 3),
        "peak_rss_kb": peak_rss_kb(),
    }


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _host_info() -> Dict[str, object]:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 0,
    }


def _utc_timestamp() -> str:
    from datetime import datetime, timezone
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def run_suite(cases: Sequence[CaseSpec], repeats: int = 3,
              quick: bool = False,
              progress: Optional[Callable[[str], None]] = None,
              ) -> Dict[str, object]:
    """Run every case and assemble a schema-versioned BENCH record."""
    case_records: Dict[str, object] = {}
    for case in cases:
        if progress is not None:
            progress(case.name)
        case_records[case.name] = run_case(case, repeats=repeats)
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": _utc_timestamp(),
        "git_sha": _git_sha(),
        "quick": quick,
        "repeats": repeats,
        "host": _host_info(),
        "cases": case_records,
    }


def write_record(record: Dict[str, object], out_dir: str) -> str:
    """Write ``BENCH_<timestamp>.json`` under ``out_dir``; return its path."""
    os.makedirs(out_dir, exist_ok=True)
    stamp = str(record["created_utc"]).replace("-", "").replace(":", "")
    path = os.path.join(out_dir, f"BENCH_{stamp}.json")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def render_record(record: Dict[str, object]) -> str:
    """Aligned text summary of one record's cases."""
    header = (f"{'case':<28} {'wall s':>9} {'KIPS':>9} "
              f"{'cycles/s':>12} {'items/s':>9} {'RSS KiB':>9}")
    lines = [header, "-" * len(header)]
    cases: Dict[str, Dict[str, object]] = record["cases"]  # type: ignore[assignment]
    for name in sorted(cases):
        c = cases[name]
        lines.append(f"{name:<28} {c['wall_seconds']:>9.4f} "
                     f"{c['kips']:>9.1f} {c['cycles_per_second']:>12.0f} "
                     f"{c['items_per_second']:>9.1f} {c['peak_rss_kb']:>9}")
    meta = (f"schema={record['schema']} repeats={record['repeats']} "
            f"quick={record['quick']} sha={record['git_sha'] or '?'}")
    lines.append(meta)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------

_CASE_FLOAT_KEYS = ("wall_seconds", "kips", "cycles_per_second",
                    "items_per_second")
_CASE_INT_KEYS = ("sim_cycles", "instructions", "items", "peak_rss_kb")


def validate_bench_record(record: object) -> List[str]:
    """Structural schema check; returns a list of problems (empty = ok)."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if record.get("schema") != BENCH_SCHEMA:
        errors.append(f"schema must be {BENCH_SCHEMA!r}, "
                      f"got {record.get('schema')!r}")
    for key, kind in (("created_utc", str), ("quick", bool),
                      ("repeats", int), ("host", dict), ("cases", dict)):
        if not isinstance(record.get(key), kind):
            errors.append(f"{key} must be {kind.__name__}")
    sha = record.get("git_sha")
    if sha is not None and not isinstance(sha, str):
        errors.append("git_sha must be a string or null")
    cases = record.get("cases")
    if not isinstance(cases, dict):
        return errors
    if not cases:
        errors.append("cases must not be empty")
    for name, case in sorted(cases.items()):
        if not isinstance(case, dict):
            errors.append(f"cases[{name!r}] must be an object")
            continue
        for key in _CASE_FLOAT_KEYS:
            value = case.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value < 0:
                errors.append(f"cases[{name!r}].{key} must be a "
                              f"non-negative number")
        for key in _CASE_INT_KEYS:
            value = case.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                errors.append(f"cases[{name!r}].{key} must be a "
                              f"non-negative integer")
        wall_all = case.get("wall_all")
        if (not isinstance(wall_all, list) or not wall_all
                or not all(isinstance(w, (int, float))
                           and not isinstance(w, bool) and w >= 0
                           for w in wall_all)):
            errors.append(f"cases[{name!r}].wall_all must be a non-empty "
                          f"list of non-negative numbers")
    return errors


# ----------------------------------------------------------------------
# Trajectory + regression detection
# ----------------------------------------------------------------------

def load_trajectory(directory: str,
                    exclude: Optional[str] = None,
                    ) -> List[Tuple[str, Dict[str, object]]]:
    """Load every valid ``BENCH_*.json`` under ``directory``, oldest first.

    Invalid or unreadable files are skipped (the trajectory must stay
    usable even if a bad record lands in it).  ``exclude`` removes one
    path — the record currently being checked — from its own baseline.
    """
    if not os.path.isdir(directory):
        return []
    out: List[Tuple[str, Dict[str, object]]] = []
    exclude_real = os.path.realpath(exclude) if exclude else None
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        if exclude_real and os.path.realpath(path) == exclude_real:
            continue
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            continue
        if validate_bench_record(record):
            continue
        out.append((path, record))
    return out


@dataclass
class CaseVerdict:
    """The regression detector's judgement for one case."""

    case: str
    status: str  # "regression" | "improved" | "ok" | "new" | "missing"
    new_wall: Optional[float] = None
    best_wall: Optional[float] = None
    baseline_median: Optional[float] = None
    mad: Optional[float] = None
    threshold: Optional[float] = None
    samples: int = 0

    @property
    def ratio(self) -> Optional[float]:
        if (self.new_wall is None or self.baseline_median is None
                or self.baseline_median < _MIN_WALL):
            return None
        return self.new_wall / self.baseline_median

    def describe(self) -> str:
        if self.status == "new":
            return (f"{self.case}: NEW ({self.new_wall:.4f}s, "
                    f"no trajectory baseline)")
        if self.status == "missing":
            return f"{self.case}: MISSING from the new record"
        ratio = self.ratio
        best = ""
        if self.best_wall is not None and self.best_wall != self.new_wall:
            best = f" (best {self.best_wall:.4f}s)"
        detail = (f"{self.new_wall:.4f}s{best} vs median "
                  f"{self.baseline_median:.4f}s "
                  f"(n={self.samples}, mad {self.mad:.4f}, "
                  f"threshold {self.threshold:.4f}s"
                  + (f", {ratio:.2f}x" if ratio is not None else "") + ")")
        return f"{self.case}: {self.status.upper()} {detail}"


def detect_regressions(trajectory: Sequence[Dict[str, object]],
                       record: Dict[str, object],
                       mad_factor: float = 5.0,
                       rel_floor: float = 0.25,
                       abs_floor_seconds: float = 0.002,
                       ) -> List[CaseVerdict]:
    """Compare ``record`` against the trajectory, case by case.

    A case regresses when its **best** repeat (``min(wall_all)``)
    exceeds the trajectory median by more than
    ``max(mad_factor * 1.4826 * MAD, rel_floor * median,
    abs_floor_seconds)``.  Wall-time noise is strictly additive —
    the OS can only make a run slower, never faster — so judging the
    fastest of N repeats discards one-sided scheduler jitter that the
    median still carries; a real slowdown moves every repeat, including
    the best one.  The MAD term adapts to each case's own historical
    noise; the relative and absolute floors keep a short or perfectly
    flat history (MAD ~ 0) from flagging ordinary run-to-run jitter.
    Symmetrically, a case whose median is faster than
    ``median - margin`` is reported as improved.

    Only trajectory records with the same ``quick`` flag as ``record``
    are used: quick and full runs use different per-case budgets, so
    their wall times are not comparable.
    """
    quick = record.get("quick")
    trajectory = [past for past in trajectory if past.get("quick") == quick]
    verdicts: List[CaseVerdict] = []
    new_cases: Dict[str, Dict[str, object]] = record.get("cases", {})  # type: ignore[assignment]
    for name, case in sorted(new_cases.items()):
        new_wall = float(case["wall_seconds"])  # type: ignore[index]
        wall_all = case.get("wall_all") or [new_wall]  # type: ignore[union-attr]
        best_wall = min(float(w) for w in wall_all)  # type: ignore[union-attr]
        history = [
            float(past["cases"][name]["wall_seconds"])  # type: ignore[index]
            for past in trajectory
            if name in past.get("cases", {})  # type: ignore[union-attr]
        ]
        if not history:
            verdicts.append(CaseVerdict(case=name, status="new",
                                        new_wall=new_wall))
            continue
        baseline = statistics.median(history)
        mad = statistics.median(abs(x - baseline) for x in history)
        margin = max(mad_factor * MAD_SIGMA * mad,
                     rel_floor * baseline,
                     abs_floor_seconds)
        threshold = baseline + margin
        if best_wall > threshold:
            status = "regression"
        elif new_wall < baseline - margin:
            status = "improved"
        else:
            status = "ok"
        verdicts.append(CaseVerdict(
            case=name, status=status, new_wall=new_wall,
            best_wall=best_wall, baseline_median=baseline, mad=mad,
            threshold=threshold, samples=len(history)))
    known = {
        name
        for past in trajectory
        for name in past.get("cases", {})  # type: ignore[union-attr]
    }
    for name in sorted(known - set(new_cases)):
        verdicts.append(CaseVerdict(case=name, status="missing"))
    return verdicts


def has_regression(verdicts: Sequence[CaseVerdict]) -> bool:
    return any(v.status == "regression" for v in verdicts)


def render_verdicts(verdicts: Sequence[CaseVerdict]) -> str:
    if not verdicts:
        return "regression check: no cases to compare"
    lines = [v.describe() for v in verdicts]
    counts: Dict[str, int] = {}
    for v in verdicts:
        counts[v.status] = counts.get(v.status, 0) + 1
    summary = ", ".join(f"{n} {status}" for status, n in sorted(counts.items()))
    lines.append(f"regression check: {summary}")
    return "\n".join(lines)


__all__ = [
    "BENCH_SCHEMA",
    "CaseSpec",
    "CaseVerdict",
    "default_suite",
    "detect_regressions",
    "has_regression",
    "load_trajectory",
    "peak_rss_kb",
    "render_record",
    "render_verdicts",
    "run_case",
    "run_suite",
    "validate_bench_record",
    "write_record",
]

"""repro — a reproduction of Gharachorloo, Gupta & Hennessy (ICPP 1991),
"Two Techniques to Enhance the Performance of Memory Consistency Models".

The package implements the paper's two techniques — hardware-controlled
non-binding **prefetch** and **speculative execution for loads** — on
top of a full software model of the hardware the paper assumes: a
dynamically scheduled processor with a reorder buffer, reservation
stations and branch prediction, lockup-free coherent caches over a
DASH-style directory protocol, and the SC/PC/WC/RC consistency models.

Quick start::

    from repro import run_workload, SC, RC
    from repro.isa import ProgramBuilder

    program = (ProgramBuilder()
               .lock_optimistic(addr=16, tag="lock")
               .store_imm(1, addr=32, tag="write A")
               .unlock(addr=16, tag="unlock")
               .build())
    base = run_workload([program], model=SC)
    fast = run_workload([program], model=SC, prefetch=True, speculation=True)
    print(base.cycles, "->", fast.cycles)

Layer map (see DESIGN.md for the full inventory):

==================  ====================================================
``repro.sim``       deterministic cycle/event simulation kernel
``repro.isa``       instruction set, programs, assembler
``repro.memory``    lockup-free caches, interconnect
``repro.coherence`` directory protocol (invalidate + update variants)
``repro.cpu``       out-of-order core (ROB, RS, branch pred., LSU)
``repro.consistency`` SC/PC/WC/RC delay-arc rules + litmus checker
``repro.core``      the paper's contribution: prefetcher, speculative-
                    load buffer, and the analytical timing model
``repro.system``    multiprocessor assembly and run drivers
``repro.workloads`` paper examples, Figure 5 scenario, synthetic loads
``repro.baselines`` Section 6's competing schemes
``repro.analysis``  experiment runners and text tables
==================  ====================================================
"""

from .consistency import ALL_MODELS, PC, RC, RCSC, SC, WC, get_model
from .core import (
    AccessSpec,
    AnalyticalTimingModel,
    SpeculativeLoadBuffer,
    TimingConfig,
    compare_configurations,
)
from .cpu import Processor, ProcessorConfig
from .isa import Program, ProgramBuilder, assemble
from .memory import CacheConfig, LatencyConfig
from .sim import Simulator, StatsRegistry, TraceRecorder
from .system import MachineConfig, Multiprocessor, RunResult, run_workload
from .workloads import run_figure5

__version__ = "1.0.0"

__all__ = [
    "ALL_MODELS",
    "AccessSpec",
    "AnalyticalTimingModel",
    "CacheConfig",
    "LatencyConfig",
    "MachineConfig",
    "Multiprocessor",
    "PC",
    "Processor",
    "ProcessorConfig",
    "Program",
    "ProgramBuilder",
    "RC",
    "RCSC",
    "RunResult",
    "SC",
    "Simulator",
    "SpeculativeLoadBuffer",
    "StatsRegistry",
    "TimingConfig",
    "TraceRecorder",
    "WC",
    "assemble",
    "compare_configurations",
    "get_model",
    "run_figure5",
    "run_workload",
    "__version__",
]

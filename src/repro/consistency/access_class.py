"""Classification of memory accesses for consistency-model rules.

A consistency model's ordering rules only care about four things per
access: is it a read, is it a write, is it an *acquire*, is it a
*release*.  :class:`AccessClass` captures exactly that, and conversion
helpers build one from an ISA instruction or from raw flags.

Atomic read-modify-writes are both a read and a write; a lock RMW is
additionally an acquire (and an unlock store a release), following the
paper's Section 2 classification.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instructions import Instruction, Load, Rmw, Store


@dataclass(frozen=True)
class AccessClass:
    """What a consistency model needs to know about one access."""

    is_load: bool
    is_store: bool
    acquire: bool = False
    release: bool = False

    def __post_init__(self) -> None:
        if not (self.is_load or self.is_store):
            raise ValueError("an access must read, write, or both")
        if self.acquire and not self.is_load:
            raise ValueError("an acquire must involve a read (paper, Section 2)")
        if self.release and not self.is_store:
            raise ValueError("a release must involve a write (paper, Section 2)")

    @property
    def is_sync(self) -> bool:
        return self.acquire or self.release


#: The four plain flavours, for convenience in tests and rule tables.
PLAIN_LOAD = AccessClass(is_load=True, is_store=False)
PLAIN_STORE = AccessClass(is_load=False, is_store=True)
ACQUIRE = AccessClass(is_load=True, is_store=False, acquire=True)
RELEASE = AccessClass(is_load=False, is_store=True, release=True)
ACQUIRE_RMW = AccessClass(is_load=True, is_store=True, acquire=True)
RELEASE_RMW = AccessClass(is_load=True, is_store=True, release=True)


def classify(instr: Instruction) -> AccessClass:
    """Build an :class:`AccessClass` from a memory instruction."""
    if isinstance(instr, Load):
        return AccessClass(is_load=True, is_store=False, acquire=instr.acquire)
    if isinstance(instr, Store):
        return AccessClass(is_load=False, is_store=True, release=instr.release)
    if isinstance(instr, Rmw):
        return AccessClass(is_load=True, is_store=True,
                           acquire=instr.acquire, release=instr.release)
    raise TypeError(f"{instr!r} is not a memory instruction")

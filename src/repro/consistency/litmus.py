"""Litmus tests: exhaustive enumeration of outcomes permitted by a model.

The operational semantics match the paper's simplifying assumptions
(Section 2): writes are atomic — a write becomes visible to all
processors at the same time — so an execution is a *linearization* of
all accesses.  A consistency model constrains which linearizations are
legal: if ``delay_arc(a, b)`` holds for two same-thread accesses, ``a``
must be linearized before ``b``.  Same-address accesses from one thread
always stay in program order (local data dependences are observed).

Loads read the most recent earlier write to their address in the
linearization, or the initial value.  The set of reachable final
register assignments is the model's *outcome set*; comparing outcome
sets across models reproduces Figure 1's ordering-restriction story in
an executable form.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..sim.errors import ConfigurationError
from .access_class import AccessClass
from .models import ConsistencyModel

Outcome = Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class LitmusOp:
    """One access in a litmus thread.

    ``op`` is ``"R"``, ``"W"``, ``"U"`` (an atomic read-modify-write:
    the register receives the old value, memory receives ``value`` —
    swap semantics), or ``"F"`` (a full fence).  Reads and RMWs name a
    destination register (unique across the whole test); writes and
    RMWs carry a value; fences touch no shared location — they only
    constrain the linearization (and compile to an acquire+release RMW
    on a private line).
    """

    op: str
    addr: str = ""
    value: int = 0
    reg: str = ""
    acquire: bool = False
    release: bool = False

    def __post_init__(self) -> None:
        if self.op not in ("R", "W", "U", "F"):
            raise ConfigurationError(
                f"litmus op must be 'R', 'W', 'U', or 'F', got {self.op!r}")
        if self.op in ("R", "U") and not self.reg:
            raise ConfigurationError(
                "litmus reads and RMWs need a destination register name")
        if self.op == "F":
            if self.acquire or self.release or self.addr or self.reg:
                raise ConfigurationError("a fence is already a full sync; "
                                         "it takes no address, register, or flags")
            return
        if self.acquire and self.op not in ("R", "U"):
            raise ConfigurationError("acquire must be a read or an RMW")
        if self.release and self.op not in ("W", "U"):
            raise ConfigurationError("release must be a write or an RMW")

    def access_class(self) -> AccessClass:
        if self.op == "F":
            # acquire+release RMW: a delay arc to and from everything
            # under every model
            return AccessClass(is_load=True, is_store=True,
                               acquire=True, release=True)
        return AccessClass(is_load=self.op in ("R", "U"),
                           is_store=self.op in ("W", "U"),
                           acquire=self.acquire, release=self.release)

    @property
    def reads(self) -> bool:
        return self.op in ("R", "U")

    @property
    def writes(self) -> bool:
        return self.op in ("W", "U")

    def describe(self) -> str:
        if self.op == "F":
            return "F"
        flags = ""
        if self.acquire:
            flags += ".acq"
        if self.release:
            flags += ".rel"
        if self.op == "R":
            return f"R{flags} {self.addr} -> {self.reg}"
        if self.op == "U":
            return f"U{flags} {self.addr} = {self.value} -> {self.reg}"
        return f"W{flags} {self.addr} = {self.value}"


def read(addr: str, reg: str, acquire: bool = False) -> LitmusOp:
    return LitmusOp(op="R", addr=addr, reg=reg, acquire=acquire)


def write(addr: str, value: int, release: bool = False) -> LitmusOp:
    return LitmusOp(op="W", addr=addr, value=value, release=release)


def rmw(addr: str, reg: str, value: int, acquire: bool = False,
        release: bool = False) -> LitmusOp:
    """An atomic swap: ``reg`` gets the old value, memory gets ``value``."""
    return LitmusOp(op="U", addr=addr, reg=reg, value=value,
                    acquire=acquire, release=release)


def fence() -> LitmusOp:
    return LitmusOp(op="F")


@dataclass
class LitmusTest:
    """A named multi-threaded litmus test."""

    name: str
    threads: Sequence[Sequence[LitmusOp]]
    initial: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        regs = [op.reg for t in self.threads for op in t if op.reads]
        if len(regs) != len(set(regs)):
            raise ConfigurationError(f"{self.name}: read registers must be unique")
        total = sum(len(t) for t in self.threads)
        if total > 12:
            raise ConfigurationError(
                f"{self.name}: {total} accesses is too many for exhaustive enumeration"
            )

    # ------------------------------------------------------------------
    def outcomes(self, model: ConsistencyModel) -> FrozenSet[Outcome]:
        """All final register assignments reachable under ``model``."""
        ops: List[Tuple[int, int, LitmusOp]] = [
            (t, i, op)
            for t, thread in enumerate(self.threads)
            for i, op in enumerate(thread)
        ]
        # preds[k] = indices (into ops) that must linearize before ops[k]
        preds: List[List[int]] = [[] for _ in ops]
        for k, (t, i, op) in enumerate(ops):
            for k2, (t2, i2, op2) in enumerate(ops):
                if t2 != t or i2 >= i:
                    continue
                same_addr = op2.addr == op.addr
                if same_addr or model.delay_arc(op2.access_class(), op.access_class()):
                    preds[k].append(k2)

        results: set = set()
        # Many linearizations reach identical (done, memory, registers)
        # states — e.g. two independent fences in either order.  Memoizing
        # on the full state collapses that exponential blow-up, which is
        # what keeps enumeration affordable for the fuzzer's generated
        # tests (up to 4 threads of mixed R/W/RMW/F ops).
        visited: set = set()

        def dfs(done: Tuple[bool, ...], memory: Dict[str, int], regs: Dict[str, int]) -> None:
            state = (done, tuple(sorted(memory.items())), tuple(sorted(regs.items())))
            if state in visited:
                return
            visited.add(state)
            if all(done):
                results.add(tuple(sorted(regs.items())))
                return
            for k, (t, i, op) in enumerate(ops):
                if done[k] or any(not done[p] for p in preds[k]):
                    continue
                new_done = done[:k] + (True,) + done[k + 1:]
                if op.op == "F":
                    dfs(new_done, memory, regs)
                elif op.op == "W":
                    new_memory = dict(memory)
                    new_memory[op.addr] = op.value
                    dfs(new_done, new_memory, regs)
                elif op.op == "U":
                    old = memory.get(op.addr, self.initial.get(op.addr, 0))
                    new_memory = dict(memory)
                    new_memory[op.addr] = op.value
                    new_regs = dict(regs)
                    new_regs[op.reg] = old
                    dfs(new_done, new_memory, new_regs)
                else:
                    new_regs = dict(regs)
                    new_regs[op.reg] = memory.get(op.addr, self.initial.get(op.addr, 0))
                    dfs(new_done, memory, new_regs)

        dfs(tuple(False for _ in ops), dict(self.initial), {})
        return frozenset(results)

    # ------------------------------------------------------------------
    def axiomatic_outcomes(self, model: ConsistencyModel) -> FrozenSet[Outcome]:
        """The outcome set by the *axiomatic* (herd-style) semantics.

        Same shape as :meth:`outcomes`, derived independently —
        candidate (rf, co) executions accepted by the model's
        acyclicity axiom instead of explicit interleaving.  The two
        sets are provably equal; the differential harness checks it.
        Thin hook over :func:`repro.analysis.axiomatic.axiomatic_outcomes`
        (imported lazily — the analysis package depends on this module).
        """
        from ..analysis.axiomatic import axiomatic_outcomes

        return axiomatic_outcomes(self, model)

    # ------------------------------------------------------------------
    def allows(self, model: ConsistencyModel, **partial: int) -> bool:
        """Is some outcome consistent with the given register values?"""
        wanted = set(partial.items())
        return any(wanted <= set(outcome) for outcome in self.outcomes(model))

    def forbids(self, model: ConsistencyModel, **partial: int) -> bool:
        return not self.allows(model, **partial)

    # ------------------------------------------------------------------
    def with_fences(self, positions: Optional[Dict[int, Sequence[int]]] = None,
                    suffix: str = "+fences") -> "LitmusTest":
        """A copy with full fences inserted.

        ``positions`` maps a thread index to the op indices *before
        which* a fence goes; ``None`` fences every gap of every thread
        (the brute-force way to restore SC on any model).
        """
        threads: List[List[LitmusOp]] = []
        for t, ops in enumerate(self.threads):
            if positions is None:
                where = set(range(1, len(ops)))
            else:
                where = set(positions.get(t, ()))
            out: List[LitmusOp] = []
            for i, op in enumerate(ops):
                if i in where:
                    out.append(fence())
                out.append(op)
            threads.append(out)
        return LitmusTest(name=self.name + suffix, threads=threads,
                          initial=dict(self.initial))

    # ------------------------------------------------------------------
    #: symbolic litmus locations -> concrete word addresses (distinct
    #: cache lines for the default 4-word line)
    ADDR_MAP = {"x": 0x100, "y": 0x110, "data": 0x120, "flag": 0x130,
                "L": 0x140}
    #: per-thread audit slots: read results are stored here post-run
    AUDIT_BASE = 0x800
    #: per-thread private fence lines
    FENCE_BASE = 0xF00
    #: ISA registers usable for litmus read results — excludes the
    #: value scratch (r9), the delay counter (r20), and the builder
    #: macros' scratch registers (r30/r31)
    ISA_REGS = tuple(f"r{n}" for n in range(1, 30) if n not in (9, 20))

    def to_programs(self, delays: Sequence[int] = (),
                    addr_map: Optional[Dict[str, int]] = None,
                    audit: bool = True) -> Tuple[List["Program"], Dict[str, int]]:
        """Compile each thread to an ISA :class:`Program`.

        Reads land in distinct registers; with ``audit`` each read
        register is stored to a private audit slot so the outcome can be
        read back from memory after a detailed-machine run.  Returns
        ``(programs, audit_map)`` where ``audit_map`` maps litmus
        register names to their slot addresses.  ``delays`` skews the
        threads' start times with dependent-ALU chains.
        """
        from ..isa.program import ProgramBuilder  # local: isa must not import consistency

        addrs = addr_map or self.ADDR_MAP
        programs: List[Program] = []
        audit_map: Dict[str, int] = {}
        for tid, ops in enumerate(self.threads):
            b = ProgramBuilder()
            delay = delays[tid % len(delays)] if delays else 0
            if delay:
                b.mov_imm("r20", 0)
                for _ in range(delay):
                    b.add_imm("r20", "r20", 1)
            audits: List[Tuple[str, str]] = []
            for i, op in enumerate(ops):
                if op.op == "F":
                    b.fence(addr=self.FENCE_BASE + 0x10 * tid, tag="fence")
                elif op.op == "W":
                    b.mov_imm("r9", op.value)
                    b.store("r9", addr=addrs[op.addr], release=op.release,
                            tag=f"W {op.addr}")
                elif op.op == "U":
                    reg = self.ISA_REGS[i]
                    b.mov_imm("r9", op.value)
                    b.rmw(reg, addr=addrs[op.addr], op="swap", src="r9",
                          acquire=op.acquire, release=op.release,
                          tag=f"U {op.addr}")
                    audits.append((op.reg, reg))
                else:
                    reg = self.ISA_REGS[i]
                    b.load(reg, addr=addrs[op.addr], acquire=op.acquire,
                           tag=f"R {op.addr}")
                    audits.append((op.reg, reg))
            if audit:
                for j, (litmus_reg, isa_reg) in enumerate(audits):
                    slot = self.AUDIT_BASE + 0x40 * tid + 4 * j
                    b.store(isa_reg, addr=slot, tag=f"audit {litmus_reg}")
                    audit_map[litmus_reg] = slot
            programs.append(b.build())
        return programs, audit_map

    def addresses(self, addr_map: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """The concrete addresses :meth:`to_programs` uses for this
        test's shared locations."""
        addrs = addr_map or self.ADDR_MAP
        return {op.addr: addrs[op.addr]
                for t in self.threads for op in t if op.op != "F"}


# ----------------------------------------------------------------------
# The standard litmus library
# ----------------------------------------------------------------------

def store_buffering() -> LitmusTest:
    """SB / Dekker: both reads returning 0 requires R to bypass earlier W."""
    return LitmusTest(
        name="store-buffering",
        threads=[
            [write("x", 1), read("y", "r0")],
            [write("y", 1), read("x", "r1")],
        ],
    )


def message_passing() -> LitmusTest:
    """MP: consumer sees flag=1 but stale data=0 only if W-W or R-R reorder."""
    return LitmusTest(
        name="message-passing",
        threads=[
            [write("data", 1), write("flag", 1)],
            [read("flag", "r0"), read("data", "r1")],
        ],
    )


def message_passing_sync() -> LitmusTest:
    """MP with a release-store flag and acquire-load flag (RC idiom)."""
    return LitmusTest(
        name="message-passing-sync",
        threads=[
            [write("data", 1), write("flag", 1, release=True)],
            [read("flag", "r0", acquire=True), read("data", "r1")],
        ],
    )


def load_buffering() -> LitmusTest:
    """LB: both reads returning the other thread's later write."""
    return LitmusTest(
        name="load-buffering",
        threads=[
            [read("x", "r0"), write("y", 1)],
            [read("y", "r1"), write("x", 1)],
        ],
    )


def coherence_per_location() -> LitmusTest:
    """Same-location writes must be observed in program order."""
    return LitmusTest(
        name="coherence",
        threads=[
            [write("x", 1), write("x", 2)],
            [read("x", "r0"), read("x", "r1")],
        ],
    )


def critical_section() -> LitmusTest:
    """An RC-style critical section: data race-free hand-off through a lock.

    Thread 0 acquires (reads the free lock), writes data, releases.
    Thread 1 acquires *after* observing the release value, reads data.
    With proper acquire/release labeling, a consumer that saw the
    release must see the data.
    """
    return LitmusTest(
        name="critical-section",
        threads=[
            [read("L", "r_lock0", acquire=True), write("data", 1),
             write("L", 2, release=True)],
            [read("L", "r_lock1", acquire=True), read("data", "r_data")],
        ],
    )


def iriw() -> LitmusTest:
    """Independent reads of independent writes.

    With the paper's Section 2 assumption — a write becomes visible to
    all processors at the same time — the two readers can never
    disagree about the order of the two writes, under *any* of the
    models (write atomicity, not program order, is what IRIW probes).
    """
    return LitmusTest(
        name="iriw",
        threads=[
            [write("x", 1)],
            [write("y", 1)],
            [read("x", "r0", acquire=True), read("y", "r1", acquire=True)],
            [read("y", "r2", acquire=True), read("x", "r3", acquire=True)],
        ],
    )


def write_to_read_causality() -> LitmusTest:
    """WRC: a value observed and republished must stay observable."""
    return LitmusTest(
        name="wrc",
        threads=[
            [write("x", 1)],
            [read("x", "r0", acquire=True), write("y", 1, release=True)],
            [read("y", "r1", acquire=True), read("x", "r2")],
        ],
    )


def sb_with_sync() -> LitmusTest:
    """SB where both stores are releases and both loads acquires.

    Under RCpc a release -> acquire pair is still unordered, so the
    Dekker outcome survives even fully-labelled code — this is exactly
    the RCpc/RCsc distinction (footnote 1).
    """
    return LitmusTest(
        name="sb+sync",
        threads=[
            [write("x", 1, release=True), read("y", "r0", acquire=True)],
            [write("y", 1, release=True), read("x", "r1", acquire=True)],
        ],
    )


STANDARD_TESTS = {
    "SB": store_buffering,
    "MP": message_passing,
    "MP+sync": message_passing_sync,
    "LB": load_buffering,
    "coherence": coherence_per_location,
    "IRIW": iriw,
    "WRC": write_to_read_causality,
    "SB+sync": sb_with_sync,
}


def cross_validate_suite(tests: Optional[Sequence[LitmusTest]] = None,
                         models: Optional[Sequence[ConsistencyModel]] = None):
    """Run the static race analyzer and the dynamic SC-violation
    detector over the same litmus suite and report their agreement
    (every dynamically flagged line must be statically predicted).

    Thin hook over :func:`repro.analysis.static.crosscheck.cross_validate`
    (imported lazily — the analysis package depends on this module).
    """
    from ..analysis.static.crosscheck import cross_validate

    if tests is None:
        tests = [fn() for fn in STANDARD_TESTS.values()]
    return cross_validate(tests, models=models)

"""Consistency models as declarative delay-arc rules (paper, Figure 1).

Each model answers one question — :meth:`ConsistencyModel.delay_arc`:
given two accesses ``a`` before ``b`` in program order, must ``a`` be
*performed* before ``b`` is allowed to perform?

Everything else derives from that relation:

* the conventional (delay-based) hardware implementation issues access
  ``b`` only when no earlier, not-yet-performed access ``a`` has
  ``delay_arc(a, b)``;
* the prefetcher targets exactly the accesses such an implementation
  delays;
* the speculative-load buffer encodes the relation in its ``acq`` and
  ``store tag`` fields (see :mod:`repro.core.speculation`);
* the litmus checker enumerates interleavings consistent with it.

Models provided: SC, PC, WCsc, RCpc (the paper's "RC"), and RCsc.
Local (same-address) and uniprocessor data/control dependences are
always enforced regardless of model — the Figure 1 caption's "as long
as local data and control dependences are observed".
"""

from __future__ import annotations

from typing import Dict, List

from .access_class import PLAIN_LOAD, PLAIN_STORE, AccessClass


class ConsistencyModel:
    """Base class; subclasses override :meth:`delay_arc`."""

    name: str = "base"
    description: str = ""

    def delay_arc(self, a: AccessClass, b: AccessClass) -> bool:
        """Must ``a`` (earlier in program order) perform before ``b``?"""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Derived queries used by the hardware models
    # ------------------------------------------------------------------
    def may_perform(self, pending: List[AccessClass], b: AccessClass) -> bool:
        """May ``b`` perform while the earlier ``pending`` accesses are
        still outstanding?  (The conventional implementation's test.)"""
        return not any(self.delay_arc(a, b) for a in pending)

    def load_blocks_later_accesses(self, load: AccessClass) -> bool:
        """Does any later access wait on this load's completion?

        This is the speculative-load buffer's ``acq`` bit: under SC every
        load is treated as an acquire; under RC only true acquires are.
        """
        return (self.delay_arc(load, PLAIN_LOAD)
                or self.delay_arc(load, PLAIN_STORE))

    def load_waits_for_store(self, store: AccessClass, load: AccessClass) -> bool:
        """Must the (earlier) ``store`` perform before ``load`` performs?

        This is the speculative-load buffer's ``store tag`` field: under
        SC a load waits for the previous store; under RC it does not.
        """
        return self.delay_arc(store, load)

    def __repr__(self) -> str:
        return f"<ConsistencyModel {self.name}>"


class SequentialConsistency(ConsistencyModel):
    """Lamport's SC: all shared accesses perform in program order."""

    name = "SC"
    description = "sequential consistency: program order between all accesses"

    def delay_arc(self, a: AccessClass, b: AccessClass) -> bool:
        return True


class ProcessorConsistency(ConsistencyModel):
    """Goodman's PC: reads may bypass earlier writes; all else in order."""

    name = "PC"
    description = "processor consistency: loads may bypass earlier stores"

    def delay_arc(self, a: AccessClass, b: AccessClass) -> bool:
        # The only relaxed pair is write -> read.  An RMW is both, so an
        # RMW in either position keeps the arc (its read/write half
        # still forces the ordering).
        pure_store_then_pure_load = (a.is_store and not a.is_load
                                     and b.is_load and not b.is_store)
        return not pure_store_then_pure_load


class WeakConsistency(ConsistencyModel):
    """Dubois et al.'s WC (WCsc): ordering enforced only around syncs.

    WC does not distinguish acquires from releases: every synchronization
    access is a full fence in both directions.
    """

    name = "WC"
    description = "weak consistency: fences at synchronization accesses"

    def delay_arc(self, a: AccessClass, b: AccessClass) -> bool:
        return a.is_sync or b.is_sync


class DataRaceFree0(ConsistencyModel):
    """Adve & Hill's DRF0 (paper, Section 2).

    DRF0 guarantees SC for data-race-free programs but, unlike RC,
    "does not distinguish between acquire and release accesses": every
    synchronization access is a full two-way fence.  At this
    operational abstraction its delay arcs therefore coincide with
    weak consistency's — which is why the paper says it is "similar to
    release consistency" and declines to discuss it further; we keep it
    as a distinct named model so experiments can report it explicitly.
    """

    name = "DRF0"
    description = "data-race-free-0: undifferentiated synchronization fences"

    def delay_arc(self, a: AccessClass, b: AccessClass) -> bool:
        return a.is_sync or b.is_sync


class ReleaseConsistency(ConsistencyModel):
    """Gharachorloo et al.'s RCpc — the paper's "RC".

    * everything after an *acquire* waits for the acquire;
    * a *release* waits for everything before it;
    * special (sync) accesses obey processor consistency among
      themselves, which the two rules above already imply except for
      release -> acquire, which RCpc leaves unordered.
    """

    name = "RC"
    description = "release consistency (RCpc): acquire/release fences only"

    def delay_arc(self, a: AccessClass, b: AccessClass) -> bool:
        return a.acquire or b.release


class ReleaseConsistencySC(ReleaseConsistency):
    """RCsc: like RCpc but sync accesses are sequentially consistent
    among themselves (release -> acquire is also enforced)."""

    name = "RCsc"
    description = "release consistency (RCsc): syncs SC among themselves"

    def delay_arc(self, a: AccessClass, b: AccessClass) -> bool:
        return a.acquire or b.release or (a.is_sync and b.is_sync)


#: Singleton instances, in strictness order.
SC = SequentialConsistency()
PC = ProcessorConsistency()
WC = WeakConsistency()
DRF0 = DataRaceFree0()
RC = ReleaseConsistency()
RCSC = ReleaseConsistencySC()

_MODELS: Dict[str, ConsistencyModel] = {
    m.name: m for m in (SC, PC, WC, DRF0, RC, RCSC)
}

ALL_MODELS = (SC, PC, WC, RC)  # the four the paper discusses


def get_model(name: str) -> ConsistencyModel:
    """Look up a model by name (case-insensitive)."""
    key = name.upper()
    if key not in _MODELS:
        raise KeyError(f"unknown consistency model {name!r}; "
                       f"available: {sorted(_MODELS)}")
    return _MODELS[key]

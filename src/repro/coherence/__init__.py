"""Cache coherence: protocol messages and the directory controller."""

from .directory import DirectoryController, DirEntry, DirState, Transaction
from .messages import DIRECTORY_NODE, Message, MessageKind, NodeId

__all__ = [
    "DIRECTORY_NODE",
    "DirEntry",
    "DirState",
    "DirectoryController",
    "Message",
    "MessageKind",
    "NodeId",
    "Transaction",
]

"""Coherence protocol messages.

All inter-node communication (cache <-> directory) travels as
:class:`Message` objects over the :class:`~repro.memory.interconnect.Interconnect`.
Node identifiers are small integers for caches and the string ``"dir"``
for the directory/memory controller.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Union

NodeId = Union[int, str]

DIRECTORY_NODE: NodeId = "dir"


class MessageKind(enum.Enum):
    # requests (cache -> directory)
    READ = "read"                    # want a shared copy
    READX = "readx"                  # want exclusive ownership + data
    UPGRADE = "upgrade"              # have S, want M (no data needed)
    WRITEBACK = "writeback"          # evicting a dirty line
    UPDATE_WRITE = "update_write"    # update protocol: propagate a write

    # directory -> cache
    DATA = "data"                    # shared fill
    DATA_EXCL = "data_excl"          # exclusive fill (or upgrade ack)
    INVAL = "inval"                  # invalidate your copy
    RECALL = "recall"                # owner: send data back, downgrade to S
    RECALL_INVAL = "recall_inval"    # owner: send data back, invalidate
    UPDATE = "update"                # update protocol: new value for a word
    WB_ACK = "wb_ack"                # writeback acknowledged
    UPDATE_DONE = "update_done"      # update-write performed everywhere

    # cache -> directory acknowledgements
    INVAL_ACK = "inval_ack"
    RECALL_ACK = "recall_ack"        # carries data
    UPDATE_ACK = "update_ack"

    # uncached accesses (Appendix A): performed atomically at the home
    UNCACHED_OP = "uncached_op"
    UNCACHED_DONE = "uncached_done"


_msg_ids = itertools.count()


@dataclass
class Message:
    """One protocol message.

    ``txn`` ties responses back to the transaction that triggered them.
    ``data`` is a full line (list of words) on fills/recalls; ``addr``
    and ``value`` are used by the word-granular update protocol.
    """

    kind: MessageKind
    src: NodeId
    dst: NodeId
    line_addr: int
    txn: int = -1
    data: Optional[List[int]] = None
    addr: Optional[int] = None
    value: Optional[int] = None
    #: UNCACHED_OP payload: "load" | "store" | "rmw", plus the RMW op
    uncached_kind: Optional[str] = None
    rmw_op: Optional[str] = None
    requester: Optional[NodeId] = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def describe(self) -> str:
        return (
            f"{self.kind.value} line={self.line_addr:#x} {self.src}->{self.dst}"
            + (f" txn={self.txn}" if self.txn >= 0 else "")
        )

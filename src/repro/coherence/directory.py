"""Directory-based cache coherence controller (DASH-style).

One directory/memory controller serves all lines (conceptually banked;
bank contention is not modelled).  The directory is *blocking*: it
processes one transaction per line at a time and queues subsequent
requests for that line, which is how many real directories (including
DASH) sidestep protocol races.  The one unavoidable race — a dirty
eviction's WRITEBACK crossing a RECALL — is handled explicitly: an
ownerless RECALL_ACK parks the transaction until the writeback arrives.

Two protocols are provided:

* **invalidate** (default): read-exclusive requests invalidate sharers
  and grant dirty ownership — the protocol the paper's read-exclusive
  prefetch requires;
* **update**: writes propagate values to sharers (UPDATE messages) and
  complete when all sharers acknowledge.  Used to reproduce the paper's
  Section 3.2 discussion of why write prefetching needs invalidations.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from ..memory.interconnect import Interconnect
from ..memory.types import LatencyConfig
from ..sim.errors import ProtocolError
from ..sim.kernel import WAKE_NEVER, Component, Simulator
from ..sim.trace import NullTraceRecorder, TraceRecorder
from .messages import DIRECTORY_NODE, Message, MessageKind, NodeId


class DirState(enum.Enum):
    UNOWNED = "U"
    SHARED = "S"
    EXCLUSIVE = "E"


@dataclass
class DirEntry:
    state: DirState = DirState.UNOWNED
    sharers: Set[NodeId] = field(default_factory=set)
    owner: Optional[NodeId] = None


@dataclass
class Transaction:
    txn_id: int
    kind: MessageKind
    requester: NodeId
    line_addr: int
    pending_acks: int = 0
    awaiting_writeback: bool = False
    #: the raced writeback arrived before the data-less RECALL_ACK
    writeback_arrived: bool = False
    grant_with_data: bool = True
    update_addr: Optional[int] = None
    update_value: Optional[int] = None


class DirectoryController(Component):
    """The home node: directory state plus backing memory."""

    name = "directory"

    def __init__(
        self,
        sim: Simulator,
        net: Interconnect,
        latencies: Optional[LatencyConfig] = None,
        line_size: int = 4,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.trace = trace or NullTraceRecorder()
        self.lat = latencies or LatencyConfig()
        self.line_size = line_size
        self._entries: Dict[int, DirEntry] = {}
        self._memory: Dict[int, int] = {}
        self._busy: Dict[int, Transaction] = {}
        self._queues: Dict[int, Deque[Message]] = {}
        self._txn_ids = itertools.count(1)
        net.attach(DIRECTORY_NODE, self.receive)

        s = sim.stats
        self.stat_reads = s.counter("dir/reads")
        self.stat_readx = s.counter("dir/readx")
        self.stat_upgrades = s.counter("dir/upgrades")
        self.stat_invals = s.counter("dir/invals_sent")
        self.stat_recalls = s.counter("dir/recalls_sent")
        self.stat_writebacks = s.counter("dir/writebacks")
        self.stat_updates = s.counter("dir/updates_sent")
        self.stat_queued = s.counter("dir/requests_queued")

    # ------------------------------------------------------------------
    # Backing store
    # ------------------------------------------------------------------
    def init_memory(self, values: Dict[int, int]) -> None:
        """Set initial word values (addresses are word-granular)."""
        self._memory.update(values)

    def read_word(self, addr: int) -> int:
        return self._memory.get(addr, 0)

    def _read_line(self, line_addr: int) -> List[int]:
        base = line_addr * self.line_size
        return [self._memory.get(base + i, 0) for i in range(self.line_size)]

    def _write_line(self, line_addr: int, data: List[int]) -> None:
        base = line_addr * self.line_size
        for i, word in enumerate(data):
            self._memory[base + i] = word

    def entry(self, line_addr: int) -> DirEntry:
        if line_addr not in self._entries:
            self._entries[line_addr] = DirEntry()
        return self._entries[line_addr]

    # ------------------------------------------------------------------
    # Message entry point
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        if msg.kind in (MessageKind.READ, MessageKind.READX, MessageKind.UPGRADE,
                        MessageKind.UPDATE_WRITE):
            self._accept_request(msg)
        elif msg.kind is MessageKind.WRITEBACK:
            self._on_writeback(msg)
        elif msg.kind is MessageKind.INVAL_ACK:
            self._on_inval_ack(msg)
        elif msg.kind is MessageKind.RECALL_ACK:
            self._on_recall_ack(msg)
        elif msg.kind is MessageKind.UPDATE_ACK:
            self._on_update_ack(msg)
        elif msg.kind is MessageKind.UNCACHED_OP:
            self._on_uncached_op(msg)
        else:
            raise ProtocolError(f"directory cannot handle {msg.describe()}")

    def _on_uncached_op(self, msg: Message) -> None:
        """Perform an uncached access atomically at the home (Appendix A).

        Uncached words are never cached by anyone, so no coherence
        actions are needed; atomicity comes from the home node being
        the single serialization point for the word.
        """

        def act() -> None:
            addr = msg.addr
            old = self._memory.get(addr, 0)
            if msg.uncached_kind == "load":
                result = old
            elif msg.uncached_kind == "store":
                self._memory[addr] = msg.value
                result = msg.value
            elif msg.uncached_kind == "rmw":
                if msg.rmw_op == "ts":
                    self._memory[addr] = 1
                elif msg.rmw_op == "swap":
                    self._memory[addr] = msg.value
                elif msg.rmw_op == "add":
                    self._memory[addr] = old + (msg.value or 0)
                else:
                    raise ProtocolError(f"unknown uncached rmw op {msg.rmw_op!r}")
                result = old
            else:
                raise ProtocolError(
                    f"unknown uncached access kind {msg.uncached_kind!r}")
            self.net.send(Message(kind=MessageKind.UNCACHED_DONE,
                                  src=DIRECTORY_NODE, dst=msg.src,
                                  line_addr=msg.line_addr, txn=msg.txn,
                                  value=result))

        self.sim.schedule(self.lat.memory, act, label=f"uncached {msg.describe()}")

    def _accept_request(self, msg: Message) -> None:
        if msg.line_addr in self._busy:
            self.stat_queued.inc()
            self.trace.record(self.sim.cycle, "dir", "queued",
                              line=msg.line_addr, op=msg.kind.value,
                              src=msg.src)
            self._queues.setdefault(msg.line_addr, deque()).append(msg)
            return
        self._start(msg)

    def _start(self, msg: Message) -> None:
        txn = Transaction(
            txn_id=next(self._txn_ids),
            kind=msg.kind,
            requester=msg.src,
            line_addr=msg.line_addr,
            update_addr=msg.addr,
            update_value=msg.value,
        )
        if msg.kind is MessageKind.UPDATE_WRITE:
            txn.txn_id = msg.txn  # the cache's own txn id, echoed in UPDATE_DONE
        self._busy[msg.line_addr] = txn
        self.trace.record(self.sim.cycle, "dir", "txn_start",
                          txn=txn.txn_id, line=txn.line_addr,
                          op=msg.kind.value, src=msg.src)
        # Directory lookup + memory access latency, then act.
        self.sim.schedule(self.lat.memory, lambda: self._act(txn),
                          label=f"dir act {msg.describe()}")

    def _finish(self, txn: Transaction) -> None:
        self.trace.record(self.sim.cycle, "dir", "txn_finish",
                          txn=txn.txn_id, line=txn.line_addr)
        del self._busy[txn.line_addr]
        queue = self._queues.get(txn.line_addr)
        if queue:
            nxt = queue.popleft()
            if not queue:
                del self._queues[txn.line_addr]
            self.sim.schedule(0, lambda: self._start(nxt), label="dir dequeue")

    # ------------------------------------------------------------------
    # Transaction logic
    # ------------------------------------------------------------------
    def _act(self, txn: Transaction) -> None:
        if txn.kind is MessageKind.READ:
            self._act_read(txn)
        elif txn.kind is MessageKind.READX:
            self._act_readx(txn)
        elif txn.kind is MessageKind.UPGRADE:
            self._act_readx(txn, upgrade=True)
        elif txn.kind is MessageKind.UPDATE_WRITE:
            self._act_update_write(txn)
        else:  # pragma: no cover - _start filters kinds
            raise ProtocolError(f"illegal transaction kind {txn.kind}")

    def _act_read(self, txn: Transaction) -> None:
        self.stat_reads.inc()
        ent = self.entry(txn.line_addr)
        if ent.state in (DirState.UNOWNED, DirState.SHARED):
            ent.state = DirState.SHARED
            ent.sharers.add(txn.requester)
            self._send_data(txn, exclusive=False)
            self._finish(txn)
            return
        # EXCLUSIVE: recall from owner, downgrading it to shared.
        if ent.owner == txn.requester:
            raise ProtocolError(
                f"owner {ent.owner} issued READ for line {txn.line_addr:#x} it still owns"
            )
        self.stat_recalls.inc()
        self.trace.record(self.sim.cycle, "dir", "recall_sent",
                          txn=txn.txn_id, line=txn.line_addr, dst=ent.owner)
        self._send(MessageKind.RECALL, ent.owner, txn)

    def _act_readx(self, txn: Transaction, upgrade: bool = False) -> None:
        (self.stat_upgrades if upgrade else self.stat_readx).inc()
        ent = self.entry(txn.line_addr)
        if ent.state is DirState.UNOWNED:
            self._grant_exclusive(txn, with_data=True)
            return
        if ent.state is DirState.SHARED:
            others = sorted(s for s in ent.sharers if s != txn.requester)
            # A "clean" upgrade keeps the requester's copy; data is only
            # needed if the requester is no longer a sharer (its copy was
            # invalidated after it sent the upgrade).
            txn.pending_acks = len(others)
            requester_has_copy = upgrade and txn.requester in ent.sharers
            txn.grant_with_data = not requester_has_copy
            if not others:
                self._grant_exclusive(txn, with_data=not requester_has_copy)
                return
            for node in others:
                self.stat_invals.inc()
                self.trace.record(self.sim.cycle, "dir", "inval_sent",
                                  txn=txn.txn_id, line=txn.line_addr,
                                  dst=node)
                self._send(MessageKind.INVAL, node, txn)
            return
        # EXCLUSIVE at another cache: recall-invalidate it.
        if ent.owner == txn.requester:
            raise ProtocolError(
                f"owner {ent.owner} re-requested exclusive line {txn.line_addr:#x}"
            )
        self.stat_recalls.inc()
        self.trace.record(self.sim.cycle, "dir", "recall_sent",
                          txn=txn.txn_id, line=txn.line_addr, dst=ent.owner)
        self._send(MessageKind.RECALL_INVAL, ent.owner, txn)

    def _act_update_write(self, txn: Transaction) -> None:
        ent = self.entry(txn.line_addr)
        if ent.state is DirState.EXCLUSIVE:
            raise ProtocolError("update protocol lines can never be EXCLUSIVE")
        if txn.update_addr is None:
            raise ProtocolError("UPDATE_WRITE without a word address")
        self._memory[txn.update_addr] = txn.update_value
        others = sorted(s for s in ent.sharers if s != txn.requester)
        txn.pending_acks = len(others)
        if not others:
            self._send(MessageKind.UPDATE_DONE, txn.requester, txn)
            self._finish(txn)
            return
        for node in others:
            self.stat_updates.inc()
            self.net.send(Message(
                kind=MessageKind.UPDATE, src=DIRECTORY_NODE, dst=node,
                line_addr=txn.line_addr, txn=txn.txn_id,
                addr=txn.update_addr, value=txn.update_value,
            ))

    # ------------------------------------------------------------------
    # Acknowledgement handling
    # ------------------------------------------------------------------
    def _current_txn(self, msg: Message) -> Transaction:
        txn = self._busy.get(msg.line_addr)
        if txn is None or txn.txn_id != msg.txn:
            raise ProtocolError(
                f"ack {msg.describe()} does not match the busy transaction"
            )
        return txn

    def _on_inval_ack(self, msg: Message) -> None:
        txn = self._current_txn(msg)
        txn.pending_acks -= 1
        if txn.pending_acks == 0:
            self._grant_exclusive(txn, with_data=txn.grant_with_data)

    def _on_recall_ack(self, msg: Message) -> None:
        txn = self._current_txn(msg)
        if msg.data is None:
            # The owner's writeback crossed our recall.  The two
            # messages travel different logical paths, so either order
            # is possible at the home node:
            if txn.writeback_arrived:
                self._complete_after_recall(txn)   # writeback got here first
            else:
                txn.awaiting_writeback = True      # wait for it
            return
        self._write_line(txn.line_addr, msg.data)
        self._complete_after_recall(txn)

    def _complete_after_recall(self, txn: Transaction) -> None:
        ent = self.entry(txn.line_addr)
        old_owner = ent.owner
        if txn.kind is MessageKind.READ:
            ent.state = DirState.SHARED
            ent.owner = None
            ent.sharers = {txn.requester}
            if old_owner is not None:
                ent.sharers.add(old_owner)
            self._send_data(txn, exclusive=False)
            self._finish(txn)
        else:  # READX / UPGRADE that found an exclusive owner
            self._grant_exclusive(txn, with_data=True)

    def _on_update_ack(self, msg: Message) -> None:
        txn = self._current_txn(msg)
        txn.pending_acks -= 1
        if txn.pending_acks == 0:
            self._send(MessageKind.UPDATE_DONE, txn.requester, txn)
            self._finish(txn)

    def _on_writeback(self, msg: Message) -> None:
        self.stat_writebacks.inc()
        ent = self.entry(msg.line_addr)
        txn = self._busy.get(msg.line_addr)
        if txn is not None and ent.state is DirState.EXCLUSIVE and ent.owner == msg.src:
            # The owner is writing back a line we are recalling on
            # behalf of ``txn``.  Use the writeback data; the data-less
            # RECALL_ACK may arrive before or after this message.
            self._write_line(msg.line_addr, msg.data or [])
            ent.state = DirState.UNOWNED
            ent.owner = None
            ent.sharers = set()
            self._send(MessageKind.WB_ACK, msg.src, txn)
            if txn.awaiting_writeback:
                txn.awaiting_writeback = False
                self._complete_after_recall(txn)
            else:
                txn.writeback_arrived = True
            return
        if ent.state is DirState.EXCLUSIVE and ent.owner == msg.src:
            self._write_line(msg.line_addr, msg.data or [])
            ent.state = DirState.UNOWNED
            ent.owner = None
            ent.sharers = set()
        self.net.send(Message(kind=MessageKind.WB_ACK, src=DIRECTORY_NODE,
                              dst=msg.src, line_addr=msg.line_addr))

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def _grant_exclusive(self, txn: Transaction, with_data: bool) -> None:
        ent = self.entry(txn.line_addr)
        ent.state = DirState.EXCLUSIVE
        ent.owner = txn.requester
        ent.sharers = set()
        self.net.send(Message(
            kind=MessageKind.DATA_EXCL, src=DIRECTORY_NODE, dst=txn.requester,
            line_addr=txn.line_addr, txn=txn.txn_id,
            data=self._read_line(txn.line_addr) if with_data else None,
        ))
        self._finish(txn)

    def _send_data(self, txn: Transaction, exclusive: bool) -> None:
        self.net.send(Message(
            kind=MessageKind.DATA_EXCL if exclusive else MessageKind.DATA,
            src=DIRECTORY_NODE, dst=txn.requester,
            line_addr=txn.line_addr, txn=txn.txn_id,
            data=self._read_line(txn.line_addr),
        ))

    def _send(self, kind: MessageKind, dst: NodeId, txn: Transaction) -> None:
        self.net.send(Message(kind=kind, src=DIRECTORY_NODE, dst=dst,
                              line_addr=txn.line_addr, txn=txn.txn_id))

    # ------------------------------------------------------------------
    def is_quiescent(self) -> bool:
        return not self._busy and not self._queues

    def next_wake(self, cycle: int) -> int:
        # purely event-driven: all latencies go through sim.schedule
        return WAKE_NEVER

    def sharers_of(self, line_addr: int) -> Set[NodeId]:
        return set(self.entry(line_addr).sharers)

"""Client library for the simulation job server.

:class:`ServeClient` is a plain-socket synchronous client — no asyncio
on the client side, so it drops into tests, sweep worker processes
(the ``repro.verify --server`` path), and thread-based load
generators without an event loop.  One connection pipelines any
number of submits: requests carry client-chosen ``id`` values and
responses are matched back by id, so results arriving out of
submission order (cache hits answer instantly, misses later) are
reassembled transparently.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    outcome_pairs,
)


class ServeClientError(RuntimeError):
    """The server reported an error, or the connection broke."""


@dataclass
class ServeResult:
    """One completed submission."""

    job: Dict[str, object]
    request_sha256: str
    cached: bool
    coalesced: bool
    result: Optional[Dict[str, object]]
    wall_seconds: float
    error: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def outcome(self) -> Tuple[Tuple[str, int], ...]:
        """The litmus outcome in the harness's canonical tuple shape."""
        if self.result is None:
            raise ServeClientError(f"job failed: {self.error}")
        return outcome_pairs(self.result)

    @property
    def cycles(self) -> int:
        if self.result is None:
            raise ServeClientError(f"job failed: {self.error}")
        return int(self.result["cycles"])  # type: ignore[arg-type]


#: progress callback: one server progress event (plain dict)
ProgressCallback = Callable[[Dict[str, object]], None]


class ServeClient:
    """Synchronous NDJSON client over one TCP connection."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 600.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing -------------------------------------------------------

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def _send(self, message: Mapping[str, object]) -> None:
        self._fh.write(encode_message(message))
        self._fh.flush()

    def _recv(self) -> Dict[str, object]:
        line = self._fh.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ServeClientError("server closed the connection")
        return decode_message(line)

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _request(self, op: str) -> Dict[str, object]:
        """One-shot op; skips any stray progress events in between."""
        msg_id = self._take_id()
        self._send({"op": op, "id": msg_id})
        while True:
            message = self._recv()
            if message.get("event") == "progress":
                continue
            if message.get("id") == msg_id:
                if not message.get("ok"):
                    raise ServeClientError(str(message.get("error")))
                return message

    # -- ops ------------------------------------------------------------

    def ping(self) -> str:
        return str(self._request("ping").get("protocol"))

    def stats(self) -> Dict[str, object]:
        return self._request("stats")["stats"]  # type: ignore[return-value]

    def metrics(self) -> str:
        """The server's Prometheus text exposition."""
        return str(self._request("metrics")["prometheus"])

    def shutdown(self) -> None:
        msg_id = self._take_id()
        self._send({"op": "shutdown", "id": msg_id})
        try:
            while True:
                message = self._recv()
                if message.get("event") == "shutdown":
                    return
        except (ServeClientError, ProtocolError, OSError):
            return  # server closing the socket counts as acknowledged

    # -- submission -----------------------------------------------------

    def submit(self, job: Mapping[str, object],
               progress: Optional[ProgressCallback] = None) -> ServeResult:
        return self.submit_many([job], progress=progress)[0]

    def submit_many(self, jobs: Sequence[Mapping[str, object]],
                    progress: Optional[ProgressCallback] = None,
                    ) -> List[ServeResult]:
        """Pipeline every job, then collect results in submission order.

        All submits go out before any result is read, so the server can
        batch the misses into one executor call; ``progress`` receives
        the server's streamed progress events (when requested, which is
        exactly when ``progress`` is given).  Jobs are sent as-is — the
        server canonicalizes and validates, and a rejected job comes
        back as a :class:`ServeResult` with ``ok == False`` rather than
        raising, so one bad job never sinks a batch.
        """
        specs = [dict(job) for job in jobs]
        pending: Dict[object, int] = {}
        for i, spec in enumerate(specs):
            msg_id = self._take_id()
            pending[msg_id] = i
            self._send({"op": "submit", "id": msg_id, "job": spec,
                        "progress": progress is not None})
        results: List[Optional[ServeResult]] = [None] * len(specs)
        outstanding = len(specs)
        while outstanding:
            message = self._recv()
            event = message.get("event")
            if event == "progress":
                if progress is not None:
                    progress(message)
                continue
            if event == "accepted":
                continue
            if event == "result":
                slot = pending.get(message.get("id"))
                if slot is None:
                    raise ServeClientError(
                        f"result for unknown id {message.get('id')!r}")
                results[slot] = ServeResult(
                    job=specs[slot],
                    request_sha256=str(message.get("request_sha256")),
                    cached=bool(message.get("cached")),
                    coalesced=bool(message.get("coalesced")),
                    result=message.get("result"),  # type: ignore[arg-type]
                    wall_seconds=float(message.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
                    error=message.get("error"),  # type: ignore[arg-type]
                )
                outstanding -= 1
                continue
            if not message.get("ok", True):
                # a submit-level rejection (bad job): attribute it
                slot = pending.get(message.get("id"))
                if slot is not None:
                    results[slot] = ServeResult(
                        job=specs[slot], request_sha256="", cached=False,
                        coalesced=False, result=None, wall_seconds=0.0,
                        error={"type": "ProtocolError",
                               "message": str(message.get("error"))})
                    outstanding -= 1
                    continue
                raise ServeClientError(str(message.get("error")))
        return results  # type: ignore[return-value]


def connect_with_retry(host: str, port: int, deadline_seconds: float = 30.0,
                       interval: float = 0.1) -> ServeClient:
    """Connect, retrying until the server comes up (CI startup races)."""
    deadline = time.monotonic() + deadline_seconds
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            client = ServeClient(host, port)
            client.ping()
            return client
        except (OSError, ServeClientError, ProtocolError) as exc:
            last = exc
            time.sleep(interval)
    raise ServeClientError(
        f"could not reach {host}:{port} within {deadline_seconds}s: {last}")


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """``"host:port"`` (or just ``"port"``) -> ``(host, port)``."""
    host, sep, port_text = endpoint.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", endpoint
    try:
        port = int(port_text)
    except ValueError:
        raise ServeClientError(
            f"bad server endpoint {endpoint!r}; expected host:port") from None
    return host or "127.0.0.1", port


_SHARED: Dict[Tuple[int, str, int], ServeClient] = {}


def shared_client(host: str, port: int) -> ServeClient:
    """A per-process cached connection to one endpoint.

    Keyed by pid as well as endpoint, so sweep worker processes forked
    with an inherited cache each dial their own socket instead of
    interleaving frames on the parent's.
    """
    key = (os.getpid(), host, port)
    client = _SHARED.get(key)
    if client is None:
        client = _SHARED[key] = connect_with_retry(host, port)
    return client


__all__ = [
    "ProgressCallback",
    "ServeClient",
    "ServeClientError",
    "ServeResult",
    "connect_with_retry",
    "parse_endpoint",
    "shared_client",
]

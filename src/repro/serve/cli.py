"""Simulation-service command line (``python -m repro.serve``).

Subcommands::

    serve     start the job server (runs until a shutdown op)
    submit    submit a job set and print a JSON summary (CI-parseable)
    replay    re-submit every job from a captured request log
    loadgen   drive a synthetic open- or closed-loop load and report
              latency percentiles
    stats     query a running server's counters
    metrics   dump a running server's Prometheus exposition
    shutdown  stop a running server

Examples::

    python -m repro.serve serve --store .repro/serve --port 7719
    python -m repro.serve submit --port 7719 --mix 24
    python -m repro.serve submit --port 7719 --test SB --test MP \\
        --model SC --model WC --techniques all
    python -m repro.serve replay .repro/serve/requests.jsonl --port 7719
    python -m repro.serve loadgen --port 7719 --mode closed --count 64 \\
        --clients 4
    python -m repro.serve stats --port 7719
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Dict, List, Optional, Sequence

from .client import ServeClient, connect_with_retry
from .executors import EXECUTOR_KINDS
from .loadgen import build_job_mix, run_closed_loop, run_open_loop
from .protocol import ProtocolError, make_job
from .server import ServeServer
from .store import ResultStore

DEFAULT_PORT = 7719

_TECHNIQUE_SETS = {
    "off": [(False, False)],
    "prefetch": [(True, False)],
    "speculation": [(False, True)],
    "both": [(True, True)],
    "all": [(False, False), (True, False), (False, True), (True, True)],
}


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="server host (default: %(default)s)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="server port (default: %(default)s)")


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------

def _cmd_serve(args: argparse.Namespace) -> int:
    server = ServeServer(
        store=ResultStore(args.store),
        executor_kind=args.executor,
        executor_jobs=args.jobs,
        host=args.host,
        port=args.port,
        ledger_path=args.ledger_path,
        ledger=not args.no_ledger,
        request_log=not args.no_request_log,
        max_batch=args.max_batch,
    )

    async def main() -> None:
        await server.start()
        # parseable by scripts that need the bound port (--port 0)
        print(f"serving on {server.host}:{server.port} "
              f"(executor={server.executor_kind}, store={args.store})",
              flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    print("server stopped", flush=True)
    return 0


# ----------------------------------------------------------------------
# job-set helpers (submit / replay)
# ----------------------------------------------------------------------

def _jobs_from_args(args: argparse.Namespace) -> List[Dict[str, object]]:
    if args.jobs_file:
        return _jobs_from_file(args.jobs_file)
    if args.mix is not None:
        return build_job_mix(args.mix, seed=args.mix_seed)
    tests = args.test or ["SB"]
    models = args.model or ["SC"]
    jobs = []
    for test in tests:
        for model in models:
            for prefetch, speculation in _TECHNIQUE_SETS[args.techniques]:
                jobs.append(make_job(test={"name": test}, model=model,
                                     prefetch=prefetch,
                                     speculation=speculation))
    return jobs


def _jobs_from_file(path: str) -> List[Dict[str, object]]:
    """A JSON array of jobs, or JSONL with one job (or one request-log
    record carrying a ``job`` field) per line."""
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        raw = json.loads(text)
    else:
        raw = []
        for line in text.splitlines():
            if line.strip():
                raw.append(json.loads(line))
    jobs = []
    for entry in raw:
        if isinstance(entry, dict) and "job" in entry:
            entry = entry["job"]  # request-log record
        jobs.append(entry)
    return jobs


def _submit_all(args: argparse.Namespace,
                jobs: List[Dict[str, object]]) -> int:
    if not jobs:
        print(json.dumps({"jobs": 0, "completed": 0, "errors": 0,
                          "cache_hits": 0, "coalesced": 0, "hit_rate": 0.0}))
        return 0
    with connect_with_retry(args.host, args.port,
                            deadline_seconds=args.connect_timeout) as client:
        results = client.submit_many(jobs)
        stats = client.stats() if args.stats else None
    completed = sum(1 for r in results if r.ok)
    errors = len(results) - completed
    hits = sum(1 for r in results if r.cached)
    coalesced = sum(1 for r in results if r.coalesced)
    summary: Dict[str, object] = {
        "jobs": len(results),
        "completed": completed,
        "errors": errors,
        "cache_hits": hits,
        "coalesced": coalesced,
        "hit_rate": round(hits / len(results), 4),
    }
    if stats is not None:
        summary["server"] = stats
    print(json.dumps(summary, indent=2 if args.stats else None,
                     sort_keys=True))
    for result in results:
        if not result.ok:
            print(f"error: {result.error}", file=sys.stderr)
    return 0 if errors == 0 else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    try:
        jobs = _jobs_from_args(args)
    except (OSError, ValueError, ProtocolError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _submit_all(args, jobs)


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        jobs = _jobs_from_file(args.log)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read request log: {exc}", file=sys.stderr)
        return 2
    return _submit_all(args, jobs)


# ----------------------------------------------------------------------
# loadgen
# ----------------------------------------------------------------------

def _cmd_loadgen(args: argparse.Namespace) -> int:
    jobs = build_job_mix(args.count, seed=args.mix_seed, unique=args.unique)
    if args.mode == "closed":
        report = run_closed_loop(args.host, args.port, jobs,
                                 clients=args.clients)
    else:
        report = run_open_loop(args.host, args.port, jobs, rate=args.rate)
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0 if report.errors == 0 else 1


# ----------------------------------------------------------------------
# one-shot ops
# ----------------------------------------------------------------------

def _cmd_stats(args: argparse.Namespace) -> int:
    with ServeClient(args.host, args.port) as client:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    with ServeClient(args.host, args.port) as client:
        sys.stdout.write(client.metrics())
    return 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    with ServeClient(args.host, args.port) as client:
        client.shutdown()
    print("shutdown requested")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="simulation-as-a-service job server and clients")
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="start the job server")
    _add_endpoint(p_serve)
    p_serve.add_argument("--store", default=".repro/serve",
                         help="result-store root (default: %(default)s)")
    p_serve.add_argument("--executor", choices=EXECUTOR_KINDS,
                         default="serial",
                         help="cache-miss executor (default: %(default)s)")
    p_serve.add_argument("--jobs", type=int, default=1,
                         help="worker processes for --executor pool")
    p_serve.add_argument("--ledger-path", default=None,
                         help="ledger file (default: the repo ledger)")
    p_serve.add_argument("--no-ledger", action="store_true",
                         help="do not append ledger records")
    p_serve.add_argument("--no-request-log", action="store_true",
                         help="do not keep <store>/requests.jsonl")
    p_serve.add_argument("--max-batch", type=int, default=256,
                         help="max jobs per executor batch "
                              "(default: %(default)s)")
    p_serve.set_defaults(func=_cmd_serve)

    for name, func, helptext in (
            ("submit", _cmd_submit, "submit jobs, print a JSON summary"),
            ("replay", _cmd_replay, "re-submit a captured request log")):
        p = sub.add_parser(name, help=helptext)
        _add_endpoint(p)
        if name == "replay":
            p.add_argument("log", help="request log (requests.jsonl)")
        else:
            p.add_argument("--test", action="append",
                           help="litmus test name (repeatable; default SB)")
            p.add_argument("--model", action="append",
                           help="memory model (repeatable; default SC)")
            p.add_argument("--techniques", choices=sorted(_TECHNIQUE_SETS),
                           default="off",
                           help="technique sweep per test x model "
                                "(default: %(default)s)")
            p.add_argument("--mix", type=int, default=None,
                           help="submit a deterministic N-job mix instead")
            p.add_argument("--mix-seed", type=int, default=0,
                           help="mix shuffle seed (default: %(default)s)")
            p.add_argument("--jobs-file", default=None,
                           help="JSON array or JSONL file of jobs")
        p.add_argument("--stats", action="store_true",
                       help="include server stats in the summary")
        p.add_argument("--connect-timeout", type=float, default=30.0,
                       help="seconds to wait for the server "
                            "(default: %(default)s)")
        p.set_defaults(func=func)

    p_load = sub.add_parser("loadgen", help="synthetic load benchmark")
    _add_endpoint(p_load)
    p_load.add_argument("--mode", choices=("closed", "open"),
                        default="closed")
    p_load.add_argument("--count", type=int, default=64,
                        help="jobs to submit (default: %(default)s)")
    p_load.add_argument("--clients", type=int, default=4,
                        help="closed-loop client threads "
                             "(default: %(default)s)")
    p_load.add_argument("--rate", type=float, default=50.0,
                        help="open-loop arrival rate, jobs/s "
                             "(default: %(default)s)")
    p_load.add_argument("--unique", action="store_true",
                        help="make every job a distinct cache key")
    p_load.add_argument("--mix-seed", type=int, default=0)
    p_load.set_defaults(func=_cmd_loadgen)

    for name, func, helptext in (
            ("stats", _cmd_stats, "print a running server's counters"),
            ("metrics", _cmd_metrics, "print Prometheus exposition"),
            ("shutdown", _cmd_shutdown, "stop a running server")):
        p = sub.add_parser(name, help=helptext)
        _add_endpoint(p)
        p.set_defaults(func=func)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


__all__ = ["DEFAULT_PORT", "build_parser", "main"]

"""Pluggable executor pool: how cache misses actually run.

Every executor is :func:`repro.sim.sweep.run_sweep` configured a
different way, so the server inherits the sweep engine's whole
contract for free — ordered results, per-item error containment
(``on_error="record"``), worker utilization stats, and live
:class:`~repro.sim.sweep.SweepProgress` telemetry that the server
streams on to subscribed clients:

* ``serial`` — in-process, one job at a time (``jobs=1``): the
  lowest-latency path for small batches and the default;
* ``pool`` — a ``ProcessPoolExecutor`` fan-out (``jobs=N``) via the
  per-item :func:`execute_job` worker;
* ``batched`` — the whole batch handed to one
  :class:`~repro.sim.batch.runner.BatchRunner` call through the
  sweep's ``chunk_worker`` contract, so in-envelope jobs step in
  lockstep on the SoA engine while out-of-envelope jobs transparently
  fall back to the scalar kernel *inside* the runner (bit-identical
  results either way — the differential suite pins it).

A failed job comes back as an ``{"error": {...}}`` marker rather than
poisoning the batch; the server reports it to the submitting client
and never caches it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..sim.sweep import SweepError, TelemetryCallback, run_sweep
from .protocol import (
    ProtocolError,
    normalize_job,
    resolve_test,
    run_config_from_spec,
)

#: executor kinds the server and CLI know
EXECUTOR_KINDS = ("serial", "pool", "batched")

#: an executor: (canonical job specs, telemetry) -> one result per spec
Executor = Callable[[Sequence[Mapping[str, object]],
                     Optional[TelemetryCallback]], List[Dict[str, object]]]


def _tm():
    from ..obs import telemetry
    return telemetry


def _job_setup(spec: Mapping[str, object]):
    """Shared leg construction, mirroring
    :func:`repro.verify.harness.observed_outcome` exactly — the
    determinism tests require a served result to be bit-identical to a
    direct ``run_workload`` call with these same arguments."""
    test = resolve_test(spec["test"])  # type: ignore[arg-type]
    run_config = run_config_from_spec(spec["run_config"])  # type: ignore[arg-type]
    addresses = test.addresses()
    skew = tuple(run_config.skew[t % len(run_config.skew)]
                 for t in range(len(test.threads)))
    programs, audit_map = test.to_programs(delays=skew)
    warm = []
    if run_config.warm_shared:
        warm = [(cpu, addr, False)
                for cpu in range(len(test.threads))
                for addr in addresses.values()]
    initial_memory = {addr: 0 for addr in addresses.values()}
    return test, run_config, programs, audit_map, warm, initial_memory


def execute_job(spec: Mapping[str, object]) -> Dict[str, object]:
    """Run one canonical job on the scalar kernel (picklable worker)."""
    from ..consistency.models import get_model
    from ..memory.types import CacheConfig
    from ..system.machine import run_workload

    spec = normalize_job(spec)
    _test, run_config, programs, audit_map, warm, initial_memory = (
        _job_setup(spec))
    result = run_workload(
        programs,
        model=get_model(str(spec["model"])),
        prefetch=bool(spec["prefetch"]),
        speculation=bool(spec["speculation"]),
        miss_latency=run_config.miss_latency,
        initial_memory=initial_memory,
        warm_lines=warm,
        cache=CacheConfig(line_size=run_config.line_size),
        max_cycles=run_config.max_cycles,
    )
    outcome = sorted((reg, result.machine.read_word(slot))
                     for reg, slot in audit_map.items())
    return {"outcome": [[reg, val] for reg, val in outcome],
            "cycles": result.cycles}


def execute_chunk(specs: Sequence[Mapping[str, object]]) -> List[object]:
    """Chunk worker: one lockstep :class:`BatchRunner` call per batch.

    Jobs outside the batch envelope (techniques on, branches, ...) are
    routed back to the scalar kernel inside the runner itself, so every
    spec gets a result and all results are bit-identical to
    :func:`execute_job`'s.  Per-item failures come back as
    :class:`~repro.sim.sweep.SweepError` slots, which is the sweep
    engine's chunk-worker error contract.
    """
    from ..memory.types import CacheConfig
    from ..sim.batch import BatchJob, BatchRunner

    jobs: List[object] = []
    audit_maps: List[Optional[Dict[str, int]]] = []
    slots: List[object] = [None] * len(specs)
    for i, raw in enumerate(specs):
        try:
            spec = normalize_job(raw)
            _test, run_config, programs, audit_map, warm, initial_memory = (
                _job_setup(spec))
            jobs.append(BatchJob(
                programs=programs,
                model_name=str(spec["model"]),
                prefetch=bool(spec["prefetch"]),
                speculation=bool(spec["speculation"]),
                miss_latency=run_config.miss_latency,
                initial_memory=initial_memory,
                warm_lines=tuple(warm),
                cache=CacheConfig(line_size=run_config.line_size),
                max_cycles=run_config.max_cycles,
                key=i,
            ))
            audit_maps.append(audit_map)
        except Exception as exc:  # noqa: BLE001 - per-item containment
            slots[i] = SweepError(item_index=i,
                                  error_type=type(exc).__name__,
                                  message=str(exc))
    results = BatchRunner().run(jobs) if jobs else []
    for res, audit_map in zip(results, audit_maps):
        i = res.job.key
        try:
            res.raise_if_error()
            outcome = sorted((reg, res.read_word(slot))
                             for reg, slot in audit_map.items())  # type: ignore[union-attr]
            slots[i] = {"outcome": [[reg, val] for reg, val in outcome],
                        "cycles": int(res.cycles)}  # type: ignore[arg-type]
        except Exception as exc:  # noqa: BLE001 - per-item containment
            slots[i] = SweepError(item_index=i,
                                  error_type=type(exc).__name__,
                                  message=str(exc))
    return slots


def _materialize(results: Sequence[object]) -> List[Dict[str, object]]:
    """SweepError slots -> ``{"error": ...}`` markers the server (and
    clients) understand; successful slots pass through."""
    out: List[Dict[str, object]] = []
    for slot in results:
        if isinstance(slot, SweepError):
            out.append({"error": {"type": slot.error_type,
                                  "message": slot.message}})
        else:
            out.append(slot)  # type: ignore[arg-type]
    return out


def make_executor(kind: str, jobs: int = 1,
                  chunk_size: Optional[int] = None) -> Executor:
    """Build one of the three executors (see module docstring)."""
    if kind not in EXECUTOR_KINDS:
        raise ProtocolError(f"unknown executor {kind!r}; "
                            f"available: {EXECUTOR_KINDS}")

    def run(specs: Sequence[Mapping[str, object]],
            telemetry: Optional[TelemetryCallback] = None,
            ) -> List[Dict[str, object]]:
        if not specs:
            return []
        _tm().inc("serve/simulations", len(specs))
        if kind == "batched":
            sweep = run_sweep(None, list(specs), jobs=1,
                              chunk_size=chunk_size or len(specs),
                              telemetry=telemetry, on_error="record",
                              chunk_worker=execute_chunk)
        else:
            sweep = run_sweep(execute_job, list(specs),
                              jobs=1 if kind == "serial" else max(1, jobs),
                              chunk_size=chunk_size,
                              telemetry=telemetry, on_error="record")
        return _materialize(sweep.results)

    return run


__all__ = [
    "EXECUTOR_KINDS",
    "Executor",
    "execute_chunk",
    "execute_job",
    "make_executor",
]

"""Simulation-as-a-service: async job server, content-addressed
result cache, client library, and load generator.

The simulator is deterministic — the serial==parallel and
scalar==batched differential suites pin it — so a simulation result
is a pure function of its canonical request.  This package cashes
that in: requests are hashed with the same
:func:`repro.obs.ledger.request_hash` the run ledger uses, results
are stored forever in a content-addressed
:class:`~repro.serve.store.ResultStore`, and identical requests in
flight coalesce onto one execution.  See ``docs/serving.md``.
"""

from .client import (
    ServeClient,
    ServeClientError,
    ServeResult,
    connect_with_retry,
)
from .executors import EXECUTOR_KINDS, make_executor
from .loadgen import LoadgenReport, build_job_mix, run_closed_loop, run_open_loop
from .protocol import (
    JOB_SCHEMA,
    PROTOCOL_VERSION,
    ProtocolError,
    job_hash,
    make_job,
    normalize_job,
)
from .server import ServeServer, ServerThread
from .store import ResultStore

__all__ = [
    "EXECUTOR_KINDS",
    "JOB_SCHEMA",
    "PROTOCOL_VERSION",
    "LoadgenReport",
    "ProtocolError",
    "ResultStore",
    "ServeClient",
    "ServeClientError",
    "ServeResult",
    "ServeServer",
    "ServerThread",
    "build_job_mix",
    "connect_with_retry",
    "job_hash",
    "make_job",
    "make_executor",
    "normalize_job",
    "run_closed_loop",
    "run_open_loop",
]

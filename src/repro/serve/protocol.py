"""Job specifications and the newline-delimited JSON wire protocol.

One *job* is one simulation request — exactly the arguments of a
single ``run_workload`` call, expressed as plain JSON so it can cross
a socket, land in a ledger, and key a content-addressed cache:

* a **test**: a named standard litmus test (``{"name": "sb"}``), a
  generator seed (``{"seed": 7, "generator": {...}}``), or an inline
  litmus dict (``{"litmus": {...}}`` in the corpus serialization);
* a **model** (``"SC"``/``"PC"``/``"WC"``/``"RC"``) and the two
  technique flags (``prefetch``, ``speculation``);
* a **run_config**: the machine/environment knobs of
  :class:`repro.verify.harness.RunConfig` (miss latency, per-thread
  skews, warm-shared lines, line size, cycle budget).

:func:`normalize_job` fills every default and validates, producing the
**canonical job**: a fully-determined plain dict whose
:func:`repro.obs.ledger.request_hash` is the cache key.  Everything
result-determining is in the canonical form; nothing about execution
shape (executor choice, batching, worker count) is, so a job served by
the batched lockstep engine hashes — and must answer — identically to
one served by a scalar in-process run.  Determinism is pinned by the
differential suites, which is what makes results cacheable forever.

Wire format: one JSON object per line (``\\n``-delimited, UTF-8), in
both directions.  Client ops: ``submit``, ``stats``, ``metrics``,
``ping``, ``shutdown``.  Server events: ``accepted``, ``progress``,
``result``, plus one-shot responses.  See ``docs/serving.md`` for the
full message catalogue.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Tuple

from ..obs.ledger import request_hash
from ..sim.errors import ConfigurationError

#: bump when the canonical job layout changes incompatibly (the schema
#: string is hashed with the job, so old cache entries can never alias
#: new-format requests)
JOB_SCHEMA = "repro-serve-job/1"

#: wire protocol version, exchanged in ping/pong
PROTOCOL_VERSION = "repro-serve/1"

#: client -> server operations
CLIENT_OPS = ("submit", "stats", "metrics", "ping", "shutdown")


class ProtocolError(ValueError):
    """A malformed message or job specification."""


# ----------------------------------------------------------------------
# Job canonicalization
# ----------------------------------------------------------------------

def _canonical_run_config(raw: Mapping[str, object]) -> Dict[str, object]:
    from ..verify.harness import RunConfig

    defaults = RunConfig(name="serve")
    known = {"miss_latency", "skew", "warm_shared", "line_size",
             "max_cycles", "name"}
    unknown = set(raw) - known
    if unknown:
        raise ProtocolError(f"unknown run_config key(s): {sorted(unknown)}")
    try:
        skew = tuple(int(s) for s in raw.get("skew", defaults.skew))  # type: ignore[union-attr]
    except (TypeError, ValueError):
        raise ProtocolError(f"run_config.skew must be a list of ints, "
                            f"got {raw.get('skew')!r}") from None
    if not skew or any(s < 0 for s in skew):
        raise ProtocolError("run_config.skew must be non-empty, all >= 0")
    config = {
        "miss_latency": int(raw.get("miss_latency", defaults.miss_latency)),  # type: ignore[call-overload]
        "skew": list(skew),
        "warm_shared": bool(raw.get("warm_shared", defaults.warm_shared)),
        "line_size": int(raw.get("line_size", defaults.line_size)),  # type: ignore[call-overload]
        "max_cycles": int(raw.get("max_cycles", defaults.max_cycles)),  # type: ignore[call-overload]
    }
    if config["miss_latency"] < 1:
        raise ProtocolError("run_config.miss_latency must be >= 1")
    if config["line_size"] < 1:
        raise ProtocolError("run_config.line_size must be >= 1")
    if config["max_cycles"] < 1:
        raise ProtocolError("run_config.max_cycles must be >= 1")
    # "name" is a display label, not result-determining: excluded from
    # the canonical form so it can never split the cache
    return config


def _canonical_test(raw: Mapping[str, object]) -> Dict[str, object]:
    keys = set(raw) & {"name", "seed", "litmus"}
    if len(keys) != 1:
        raise ProtocolError(
            "test must have exactly one of 'name' (standard suite), "
            f"'seed' (generator), or 'litmus' (inline); got {sorted(raw)}")
    if "name" in keys:
        from ..consistency.litmus import STANDARD_TESTS

        name = str(raw["name"])
        if name not in STANDARD_TESTS:
            raise ProtocolError(f"unknown litmus test {name!r}; available: "
                                f"{sorted(STANDARD_TESTS)}")
        return {"name": name}
    if "seed" in keys:
        from ..verify.generator import GeneratorConfig

        try:
            seed = int(raw["seed"])  # type: ignore[call-overload]
        except (TypeError, ValueError):
            raise ProtocolError(f"test.seed must be an int, "
                                f"got {raw['seed']!r}") from None
        try:
            gen = GeneratorConfig.from_dict(
                dict(raw.get("generator", {})))  # type: ignore[arg-type]
        except (TypeError, ConfigurationError) as exc:
            raise ProtocolError(f"bad generator config: {exc}") from None
        return {"seed": seed, "generator": gen.to_dict()}
    from ..verify.corpus import litmus_from_dict, litmus_to_dict

    try:
        test = litmus_from_dict(dict(raw["litmus"]))  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad inline litmus test: {exc}") from None
    return {"litmus": litmus_to_dict(test)}


def normalize_job(job: Mapping[str, object]) -> Dict[str, object]:
    """Validate a job and return its **canonical** form.

    The canonical job is fully defaulted and key-sorted-at-hash-time;
    two logically identical requests always canonicalize to the same
    dict, so :func:`job_hash` is a stable content address.
    """
    if not isinstance(job, Mapping):
        raise ProtocolError(f"job must be an object, "
                            f"got {type(job).__name__}")
    known = {"schema", "test", "model", "prefetch", "speculation",
             "run_config"}
    unknown = set(job) - known
    if unknown:
        raise ProtocolError(f"unknown job key(s): {sorted(unknown)}")
    schema = job.get("schema", JOB_SCHEMA)
    if schema != JOB_SCHEMA:
        raise ProtocolError(f"job schema must be {JOB_SCHEMA!r}, "
                            f"got {schema!r}")
    test_raw = job.get("test")
    if not isinstance(test_raw, Mapping):
        raise ProtocolError("job.test must be an object")
    from ..consistency.models import get_model

    model = str(job.get("model", "SC"))
    try:
        get_model(model)
    except (KeyError, ConfigurationError, ValueError):
        raise ProtocolError(f"unknown model {model!r}") from None
    run_config_raw = job.get("run_config", {})
    if not isinstance(run_config_raw, Mapping):
        raise ProtocolError("job.run_config must be an object")
    return {
        "schema": JOB_SCHEMA,
        "test": _canonical_test(test_raw),
        "model": model,
        "prefetch": bool(job.get("prefetch", False)),
        "speculation": bool(job.get("speculation", False)),
        "run_config": _canonical_run_config(run_config_raw),
    }


def job_hash(job: Mapping[str, object]) -> str:
    """The content-addressed cache key: SHA-256 of the canonical job."""
    return request_hash(normalize_job(job))


def resolve_test(spec: Mapping[str, object]):
    """Materialize the canonical test spec as a :class:`LitmusTest`."""
    if "name" in spec:
        from ..consistency.litmus import STANDARD_TESTS

        return STANDARD_TESTS[str(spec["name"])]()
    if "seed" in spec:
        from ..verify.generator import GeneratorConfig, generate_litmus

        return generate_litmus(
            int(spec["seed"]),  # type: ignore[call-overload]
            GeneratorConfig.from_dict(dict(spec.get("generator", {}))))  # type: ignore[arg-type]
    from ..verify.corpus import litmus_from_dict

    return litmus_from_dict(dict(spec["litmus"]))  # type: ignore[arg-type]


def run_config_from_spec(spec: Mapping[str, object]):
    """The canonical run_config dict as a harness :class:`RunConfig`."""
    from ..verify.harness import RunConfig

    return RunConfig(
        name="serve",
        miss_latency=int(spec["miss_latency"]),  # type: ignore[call-overload]
        skew=tuple(int(s) for s in spec["skew"]),  # type: ignore[union-attr]
        warm_shared=bool(spec["warm_shared"]),
        line_size=int(spec["line_size"]),  # type: ignore[call-overload]
        max_cycles=int(spec["max_cycles"]),  # type: ignore[call-overload]
    )


def make_job(test: Mapping[str, object],
             model: str = "SC",
             prefetch: bool = False,
             speculation: bool = False,
             run_config: Optional[Mapping[str, object]] = None,
             ) -> Dict[str, object]:
    """Convenience constructor returning a canonical job."""
    return normalize_job({
        "test": test,
        "model": model,
        "prefetch": prefetch,
        "speculation": speculation,
        "run_config": run_config or {},
    })


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

def validate_result(result: object) -> List[str]:
    """Structural check of a job result; returns problems (empty = ok)."""
    errors: List[str] = []
    if not isinstance(result, dict):
        return [f"result must be an object, got {type(result).__name__}"]
    outcome = result.get("outcome")
    if not isinstance(outcome, list) or not all(
            isinstance(pair, (list, tuple)) and len(pair) == 2
            and isinstance(pair[0], str) for pair in outcome):
        errors.append("outcome must be a list of [register, value] pairs")
    cycles = result.get("cycles")
    if not isinstance(cycles, int) or isinstance(cycles, bool) or cycles < 0:
        errors.append("cycles must be a non-negative integer")
    return errors


def outcome_pairs(result: Mapping[str, object]) -> Tuple[Tuple[str, int], ...]:
    """The result's outcome in the harness's canonical tuple shape."""
    return tuple(sorted((str(reg), int(val))  # type: ignore[call-overload]
                        for reg, val in result["outcome"]))  # type: ignore[union-attr]


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------

#: refuse absurd frames before json-parsing them (a stray binary
#: connection must not balloon memory)
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_message(message: Mapping[str, object]) -> bytes:
    """One message -> one NDJSON line (UTF-8, trailing newline)."""
    line = json.dumps(message, separators=(",", ":"), allow_nan=False)
    if "\n" in line:  # pragma: no cover - json never emits raw newlines
        raise ProtocolError("encoded message must be newline-free")
    return line.encode() + b"\n"


def decode_message(line: bytes) -> Dict[str, object]:
    """One NDJSON line -> one message dict."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"bad frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be an object, got {type(message).__name__}")
    return message


__all__ = [
    "CLIENT_OPS",
    "JOB_SCHEMA",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_message",
    "encode_message",
    "job_hash",
    "make_job",
    "normalize_job",
    "outcome_pairs",
    "resolve_test",
    "run_config_from_spec",
    "validate_result",
]

"""Persistent content-addressed result store.

Each completed job is written once, keyed by its canonical request
hash, under ``root/objects/<sha[:2]>/<sha>.json`` — the git-style
two-level fan-out keeps directories small at millions of entries.
Entries are written atomically (temp file + ``os.replace`` in the same
directory), so a crashed server can never leave a half-written entry
a later lookup would trust.

Reads are paranoid the same way the run ledger is tolerant: an entry
whose stored ``request_sha256`` does not match its filename, whose
JSON does not parse, or whose ``outcome_digest`` no longer matches a
recomputed digest of its ``result`` is **poisoned** — counted,
quarantined out of the hit path (the job simply re-executes and the
fresh result overwrites the bad entry), never returned.  Because the
simulator is deterministic (the serial==parallel and scalar==batched
differential suites pin it), a stored result never expires: the store
has no eviction, only verification.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Mapping, Optional

from ..obs.ledger import digest_outcome

#: bump when the entry layout changes incompatibly
STORE_SCHEMA = "repro-serve-result/1"


def _tm():
    from ..obs import telemetry
    return telemetry


class ResultStore:
    """Content-addressed persistence for job results."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        os.makedirs(self.objects_dir, exist_ok=True)
        # process-lifetime counters (authoritative ones live in the
        # server; these survive a server-less library use)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.poisoned = 0

    def _path(self, sha: str) -> str:
        return os.path.join(self.objects_dir, sha[:2], f"{sha}.json")

    # -- lookup ---------------------------------------------------------

    def get(self, sha: str) -> Optional[Dict[str, object]]:
        """The stored result for a request hash, or ``None``.

        Never raises on a bad entry: corruption counts as ``poisoned``
        and reads as a miss, so the job re-executes and heals the store.
        """
        path = self._path(sha)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self.poisoned += 1
            self.misses += 1
            _tm().inc("serve/store_poisoned")
            return None
        problems = self.validate_entry(entry, sha)
        if problems:
            self.poisoned += 1
            self.misses += 1
            _tm().inc("serve/store_poisoned")
            return None
        self.hits += 1
        return entry["result"]

    @staticmethod
    def validate_entry(entry: object, sha: str) -> list:
        """Why an entry is untrustworthy (empty = ok).

        The ``outcome_digest`` check is the poisoned-entry detector: it
        recomputes the digest over the stored ``result`` with the same
        canonicalization the ledger uses, so any bit flipped in the
        result since it was written — manual edit, partial write that
        somehow parsed, disk corruption — disqualifies the entry.
        """
        if not isinstance(entry, dict):
            return ["entry must be an object"]
        problems = []
        if entry.get("schema") != STORE_SCHEMA:
            problems.append(f"schema must be {STORE_SCHEMA!r}")
        if entry.get("request_sha256") != sha:
            problems.append("request_sha256 does not match the address")
        result = entry.get("result")
        if not isinstance(result, dict):
            problems.append("result must be an object")
        elif digest_outcome(result) != entry.get("outcome_digest"):
            problems.append("outcome_digest does not match the result")
        return problems

    def contains(self, sha: str) -> bool:
        return os.path.exists(self._path(sha))

    # -- write ----------------------------------------------------------

    def put(self, sha: str, request: Mapping[str, object],
            result: Mapping[str, object]) -> str:
        """Store one result atomically; returns the entry path."""
        entry = {
            "schema": STORE_SCHEMA,
            "request_sha256": sha,
            "request": dict(request),
            "result": dict(result),
            "outcome_digest": digest_outcome(result),
        }
        path = self._path(sha)
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".put-", dir=parent)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1
        return path

    # -- accounting -----------------------------------------------------

    def object_count(self) -> int:
        count = 0
        for _dirpath, _dirs, files in os.walk(self.objects_dir):
            count += sum(1 for name in files if name.endswith(".json"))
        return count

    def clear(self) -> int:
        """Delete every stored object (bench cold-cache repeats);
        returns how many entries were removed."""
        removed = 0
        for dirpath, _dirs, files in os.walk(self.objects_dir):
            for name in files:
                if name.endswith(".json"):
                    os.unlink(os.path.join(dirpath, name))
                    removed += 1
        return removed

    def describe(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "objects": self.object_count(),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "poisoned": self.poisoned,
        }


__all__ = ["STORE_SCHEMA", "ResultStore"]

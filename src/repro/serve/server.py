"""The asyncio simulation job server.

``python -m repro.serve serve`` turns the simulator into
infrastructure: an ``asyncio`` streams front end speaking the
newline-delimited JSON protocol of :mod:`repro.serve.protocol`.  The
request path for a ``submit``:

1. **canonicalize** the job (:func:`~repro.serve.protocol.normalize_job`)
   and hash it with the same :func:`~repro.obs.ledger.request_hash`
   the run ledger uses — the ledger's dedupe-hit-rate reports were
   sizing exactly this cache before it existed;
2. **coalesce** against identical requests already in flight (many
   clients asking for the same job while it runs share one execution);
3. **look up** the persistent content-addressed
   :class:`~repro.serve.store.ResultStore` — a hit answers without
   touching the simulator, forever, because determinism is pinned;
4. on a miss, **enqueue** to the dispatcher, which drains whatever is
   queued into one executor batch (serial / process-pool / batched
   lockstep — :mod:`repro.serve.executors`), streams the sweep
   engine's :class:`~repro.sim.sweep.SweepProgress` samples to
   subscribed clients, stores the result, and resolves every waiter;
5. **append** one ledger record per completed submission, so
   ``python -m repro.obs ledger stats`` reports the server's real
   dedupe hit rate with no extra bookkeeping.

Every accepted submit also lands in a replayable request log
(``<store>/requests.jsonl``, atomic whole-line appends), so a
production traffic mix can be captured and replayed against a new
build with ``python -m repro.serve replay``.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Event as ThreadEvent
from threading import Thread
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from ..obs import ledger as ledger_mod
from ..sim.sweep import SweepProgress
from .executors import Executor, make_executor
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    normalize_job,
)
from .store import ResultStore

#: counters the stats op reports (plain ints, authoritative; the same
#: values are mirrored into repro.obs.telemetry for Prometheus)
COUNTER_NAMES = ("requests", "cache_hits", "cache_misses", "coalesced",
                 "executed", "errors", "bad_requests")

AsyncSend = Callable[[Dict[str, object]], Awaitable[None]]


def _tm():
    from ..obs import telemetry
    return telemetry


@dataclass
class _PendingJob:
    """One queued cache miss: the future every waiter shares, plus the
    progress subscriptions to notify while its batch runs."""

    sha: str
    spec: Dict[str, object]
    future: "asyncio.Future[Dict[str, object]]"
    #: (send, client message id) pairs that asked for progress events
    subscribers: List[Tuple[AsyncSend, object]] = field(default_factory=list)


class ServeServer:
    """The simulation-as-a-service front end (one asyncio loop)."""

    def __init__(self,
                 store: ResultStore,
                 executor: Optional[Executor] = None,
                 executor_kind: str = "serial",
                 executor_jobs: int = 1,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 ledger_path: Optional[str] = None,
                 ledger: bool = True,
                 request_log: bool = True,
                 max_batch: int = 256) -> None:
        self.store = store
        self.executor_kind = executor_kind
        self.executor = executor if executor is not None else make_executor(
            executor_kind, jobs=executor_jobs)
        self.host = host
        self.port = port
        self.ledger_path = ledger_path
        self.ledger_enabled = ledger
        self.request_log_path = (
            os.path.join(store.root, "requests.jsonl")
            if request_log else None)
        self.max_batch = max_batch
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self.started_at = time.time()
        self._inflight: Dict[str, _PendingJob] = {}
        self._queue: "asyncio.Queue[Optional[_PendingJob]]" = None  # type: ignore[assignment]
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._shutdown: Optional[asyncio.Event] = None
        # executor batches run on one worker thread so the asyncio loop
        # stays responsive; one thread also serializes executor access
        self._exec_threads = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-exec")
        self._prev_telemetry = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher; after
        this returns, :attr:`port` holds the real bound port."""
        tm = _tm()
        self._prev_telemetry = tm.enabled()
        tm.enable(True)
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._shutdown = asyncio.Event()
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        assert self._server is not None and self._shutdown is not None
        try:
            await self._shutdown.wait()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher is not None:
            await self._queue.put(None)
            await self._dispatcher
            self._dispatcher = None
        self._exec_threads.shutdown(wait=True)
        _tm().enable(self._prev_telemetry)

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (used by :class:`ServerThread`)."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            loop.call_soon_threadsafe(shutdown.set)

    # -- connection handling --------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks: List["asyncio.Task[None]"] = []

        async def send(message: Dict[str, object]) -> None:
            async with write_lock:
                writer.write(encode_message(message))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, OSError):
                    break
                if not line:
                    break
                try:
                    message = decode_message(line)
                except ProtocolError as exc:
                    self._count("bad_requests")
                    await self._safe_send(send, {"ok": False,
                                                 "error": str(exc)})
                    continue
                tasks[:] = [task for task in tasks if not task.done()]
                if not await self._handle_message(message, send, tasks):
                    break
        finally:
            # a disconnected client's pending submits still run to
            # completion (the result is cached for the next asker);
            # their sends fail silently via _safe_send
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _handle_message(self, message: Dict[str, object],
                              send: AsyncSend,
                              tasks: List["asyncio.Task[None]"]) -> bool:
        """Dispatch one client message; returns False to close."""
        op = message.get("op")
        msg_id = message.get("id")
        if op == "submit":
            tasks.append(asyncio.ensure_future(
                self._handle_submit(message, send)))
            return True
        if op == "ping":
            await self._safe_send(send, {
                "ok": True, "event": "pong",
                "protocol": PROTOCOL_VERSION, "id": msg_id})
            return True
        if op == "stats":
            await self._safe_send(send, {
                "ok": True, "event": "stats", "id": msg_id,
                "stats": self.stats()})
            return True
        if op == "metrics":
            await self._safe_send(send, {
                "ok": True, "event": "metrics", "id": msg_id,
                "prometheus": _tm().registry().to_prometheus()})
            return True
        if op == "shutdown":
            await self._safe_send(send, {"ok": True, "event": "shutdown",
                                         "id": msg_id})
            assert self._shutdown is not None
            self._shutdown.set()
            return False
        self._count("bad_requests")
        await self._safe_send(send, {
            "ok": False, "id": msg_id,
            "error": f"unknown op {op!r}; known: submit, stats, metrics, "
                     f"ping, shutdown"})
        return True

    @staticmethod
    async def _safe_send(send: AsyncSend,
                         message: Dict[str, object]) -> bool:
        """Send, tolerating a client that already went away."""
        try:
            await send(message)
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            return False

    # -- the submit path ------------------------------------------------

    async def _handle_submit(self, message: Dict[str, object],
                             send: AsyncSend) -> None:
        msg_id = message.get("id")
        t0 = time.perf_counter()
        try:
            spec = normalize_job(message.get("job", {}))  # type: ignore[arg-type]
        except ProtocolError as exc:
            self._count("bad_requests")
            await self._safe_send(send, {"ok": False, "id": msg_id,
                                         "error": str(exc)})
            return
        sha = ledger_mod.request_hash(spec)
        self._count("requests")
        self._log_request(sha, spec)
        await self._safe_send(send, {"ok": True, "event": "accepted",
                                     "id": msg_id, "request_sha256": sha})
        want_progress = bool(message.get("progress"))

        cached = False
        coalesced = False
        pending = self._inflight.get(sha)
        if pending is not None:
            coalesced = True
            self._count("coalesced")
            if want_progress:
                pending.subscribers.append((send, msg_id))
            result = await asyncio.shield(pending.future)
        else:
            stored = self.store.get(sha)
            if stored is not None:
                cached = True
                self._count("cache_hits")
                result = stored
            else:
                self._count("cache_misses")
                assert self._loop is not None
                pending = _PendingJob(sha=sha, spec=spec,
                                      future=self._loop.create_future())
                if want_progress:
                    pending.subscribers.append((send, msg_id))
                self._inflight[sha] = pending
                await self._queue.put(pending)
                result = await asyncio.shield(pending.future)

        wall = time.perf_counter() - t0
        if "error" in result:
            self._count("errors")
            await self._safe_send(send, {
                "ok": False, "event": "result", "id": msg_id,
                "request_sha256": sha, "cached": False,
                "coalesced": coalesced, "error": result["error"],
                "wall_seconds": round(wall, 6)})
            return
        self._append_ledger(sha, spec, result, wall, cached=cached)
        await self._safe_send(send, {
            "ok": True, "event": "result", "id": msg_id,
            "request_sha256": sha, "cached": cached,
            "coalesced": coalesced, "result": result,
            "wall_seconds": round(wall, 6)})

    # -- dispatcher -----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            entry = await self._queue.get()
            if entry is None:
                return
            batch = [entry]
            while len(batch) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    await self._run_batch(batch)
                    return
                batch.append(extra)
            await self._run_batch(batch)

    async def _run_batch(self, batch: List[_PendingJob]) -> None:
        assert self._loop is not None
        loop = self._loop
        specs = [entry.spec for entry in batch]
        tm = _tm()
        tm.inc("serve/batches")
        tm.observe("serve/batch_jobs", len(batch),
                   buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512))

        def on_progress(sample: SweepProgress) -> None:
            # called on the executor thread; hop to the loop before
            # touching any asyncio state
            loop.call_soon_threadsafe(self._emit_progress, batch, sample)

        t0 = time.perf_counter()
        try:
            results = await loop.run_in_executor(
                self._exec_threads,
                lambda: self.executor(specs, on_progress))
        except Exception as exc:  # noqa: BLE001 - batch-level containment
            results = [{"error": {"type": type(exc).__name__,
                                  "message": str(exc)}}] * len(batch)
        tm.observe("serve/batch_seconds", time.perf_counter() - t0)
        for entry, result in zip(batch, results):
            if "error" not in result:
                self._count("executed")
                self.store.put(entry.sha, entry.spec, result)
            self._inflight.pop(entry.sha, None)
            if not entry.future.done():
                entry.future.set_result(result)

    def _emit_progress(self, batch: List[_PendingJob],
                       sample: SweepProgress) -> None:
        event = {
            "ok": True,
            "event": "progress",
            "done": sample.done,
            "total": sample.total,
            "items_per_second": round(sample.items_per_second, 3),
            "eta_seconds": (round(sample.eta_seconds, 3)
                            if sample.eta_seconds is not None else None),
            "utilization": round(sample.utilization, 4),
        }
        for entry in batch:
            for send, msg_id in entry.subscribers:
                message = dict(event)
                message["id"] = msg_id
                asyncio.ensure_future(self._safe_send(send, message))

    # -- bookkeeping ----------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        _tm().inc(f"serve/{name}", amount)

    def _log_request(self, sha: str, spec: Dict[str, object]) -> None:
        if self.request_log_path is None:
            return
        ledger_mod.append_jsonl(
            {"request_sha256": sha, "job": spec,
             "received_utc": ledger_mod._utc_timestamp()},
            self.request_log_path)

    def _append_ledger(self, sha: str, spec: Dict[str, object],
                       result: Dict[str, object], wall: float,
                       cached: bool) -> None:
        """One ledger record per completed submission.

        The record's outcome is the *result itself* (small: registers +
        cycles), never the hit/miss disposition — records sharing a
        request hash must share an outcome digest, or ``ledger stats``
        would flag every cache hit as an inconsistency instead of a
        dedupe win.  Hit/miss lives in the metrics and the request log.
        """
        if not self.ledger_enabled:
            return
        record = ledger_mod.make_record(
            kind="serve",
            request=spec,
            outcome=result,
            wall_seconds=wall,
            items=1,
        )
        assert record["request_sha256"] == sha, "canonicalization drift"
        ledger_mod.append_record(record, self.ledger_path)

    def stats(self) -> Dict[str, object]:
        return {
            "protocol": PROTOCOL_VERSION,
            "executor": self.executor_kind,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "counters": dict(self.counters),
            "inflight": len(self._inflight),
            "store": self.store.describe(),
        }


class ServerThread:
    """Run a :class:`ServeServer` on a background thread's event loop.

    The in-process embedding used by tests, the load-generator
    benchmark cases, and anything else that wants a live server
    without a subprocess::

        handle = ServerThread(ServeServer(store=ResultStore(root)))
        host, port = handle.start()
        ...
        handle.stop()
    """

    def __init__(self, server: ServeServer) -> None:
        self.server = server
        self._ready = ThreadEvent()
        self._thread: Optional[Thread] = None
        self._startup_error: Optional[BaseException] = None

    def _main(self) -> None:
        async def body() -> None:
            try:
                await self.server.start()
            except BaseException as exc:  # noqa: BLE001 - reported to start()
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.server.serve_until_shutdown()

        try:
            asyncio.run(body())
        except BaseException:  # noqa: BLE001 - surfaced via startup_error
            if not self._ready.is_set():
                self._ready.set()

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        self._thread = Thread(target=self._main, name="serve-server",
                              daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start within "
                               f"{timeout}s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}")
        return self.server.host, self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        self.server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout)


__all__ = ["COUNTER_NAMES", "ServeServer", "ServerThread"]

"""Load generator for the simulation job server.

Two standard load shapes, both driving the real wire protocol:

* **closed-loop** — ``clients`` threads, each with its own connection,
  each submitting its next job only after the previous one completes.
  Throughput is latency-bound; this is the shape the
  :mod:`repro.obs.perf` bench cases use because it is deterministic
  and noise-tolerant.
* **open-loop** — jobs *arrive* on a fixed schedule (``rate`` jobs/s)
  regardless of completions, the shape real traffic has.  Latency is
  measured from the **scheduled arrival**, not the actual send, so
  queueing delay when the server falls behind is charged to the
  server — the standard coordinated-omission correction.

The job mix is deterministic (a seeded cross-product of litmus tests ×
models × technique settings), so two loadgen runs against the same
build submit byte-identical requests — which is also what makes the
warm-cache bench meaningful.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .client import ServeClient, ServeClientError
from .protocol import (
    MAX_FRAME_BYTES,
    decode_message,
    encode_message,
    make_job,
)

#: the default litmus/model/technique pools the mix is drawn from
MIX_TESTS = ("SB", "MP", "LB", "coherence", "SB+sync", "MP+sync",
             "IRIW", "WRC")
MIX_MODELS = ("SC", "PC", "WC", "RC")
MIX_TECHNIQUES = ((False, False), (True, False), (False, True), (True, True))

#: sweep-style run config for every mix job: the skew window makes each
#: simulation run for a few thousand cycles (like the race-hunting
#: sweeps that dominate real traffic) instead of the few hundred a
#: zero-skew litmus test needs — which is also what gives the cold/warm
#: cache comparison its contrast
MIX_RUN_CONFIG = {"skew": (0, 200)}


def build_job_mix(count: int,
                  seed: int = 0,
                  tests: Sequence[str] = MIX_TESTS,
                  models: Sequence[str] = MIX_MODELS,
                  techniques: Sequence[Tuple[bool, bool]] = MIX_TECHNIQUES,
                  unique: bool = False) -> List[Dict[str, object]]:
    """A deterministic, shuffled job mix of ``count`` canonical jobs.

    The full cross-product of ``tests × models × techniques`` is
    shuffled with ``seed`` and cycled to length — so any ``count``
    beyond the product size deliberately contains duplicates, which is
    what exercises coalescing and the cache.  With ``unique=True`` the
    skew knob of the run config is varied per job instead, making every
    job a distinct cache key (cold-cache benchmarks).
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    rng = random.Random(seed)
    product = [(t, m, pf, sp)
               for t in tests for m in models for pf, sp in techniques]
    rng.shuffle(product)
    jobs: List[Dict[str, object]] = []
    for i, (test, model, prefetch, speculation) in enumerate(
            itertools.islice(itertools.cycle(product), count)):
        run_config: Dict[str, object] = dict(MIX_RUN_CONFIG)
        if unique:
            # vary a result-determining knob so every job is a
            # distinct cache key even past the cross-product size
            # (201 + i never collides with the shared [0, 200] window)
            run_config["skew"] = [0, 201 + i]
        jobs.append(make_job(test={"name": test}, model=model,
                             prefetch=prefetch, speculation=speculation,
                             run_config=run_config))
    return jobs


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------

def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]) of ``samples``."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class LoadgenReport:
    """One load-generator run, summarized."""

    mode: str
    jobs: int
    completed: int
    errors: int
    cache_hits: int
    coalesced: int
    wall_seconds: float
    #: closed-loop: client thread count; open-loop: offered rate (jobs/s)
    concurrency: float
    latencies: List[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    def latency_percentiles(self) -> Dict[str, float]:
        if not self.latencies:
            return {}
        return {name: percentile(self.latencies, q)
                for name, q in (("p50", 50), ("p90", 90), ("p99", 99),
                                ("max", 100))}

    def to_dict(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "mode": self.mode,
            "jobs": self.jobs,
            "completed": self.completed,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_per_second": round(self.throughput, 3),
            "concurrency": self.concurrency,
        }
        summary["latency_seconds"] = {
            name: round(value, 6)
            for name, value in self.latency_percentiles().items()}
        return summary


# ----------------------------------------------------------------------
# Closed loop
# ----------------------------------------------------------------------

def run_closed_loop(host: str, port: int,
                    jobs: Sequence[Mapping[str, object]],
                    clients: int = 1) -> LoadgenReport:
    """``clients`` threads, one connection each, one job in flight per
    thread; jobs are dealt round-robin."""
    if clients < 1:
        raise ValueError("clients must be >= 1")
    clients = min(clients, max(1, len(jobs)))
    lanes: List[List[Mapping[str, object]]] = [[] for _ in range(clients)]
    for i, job in enumerate(jobs):
        lanes[i % clients].append(job)
    report = LoadgenReport(mode="closed", jobs=len(jobs), completed=0,
                           errors=0, cache_hits=0, coalesced=0,
                           wall_seconds=0.0, concurrency=clients)
    lock = threading.Lock()
    failures: List[BaseException] = []

    def lane_main(lane: List[Mapping[str, object]]) -> None:
        try:
            with ServeClient(host, port) as client:
                for job in lane:
                    t0 = time.perf_counter()
                    result = client.submit(job)
                    dt = time.perf_counter() - t0
                    with lock:
                        report.latencies.append(dt)
                        if result.ok:
                            report.completed += 1
                        else:
                            report.errors += 1
                        if result.cached:
                            report.cache_hits += 1
                        if result.coalesced:
                            report.coalesced += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            with lock:
                failures.append(exc)

    threads = [threading.Thread(target=lane_main, args=(lane,), daemon=True)
               for lane in lanes if lane]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - t0
    if failures:
        raise ServeClientError(f"{len(failures)} loadgen lane(s) failed; "
                               f"first: {failures[0]}") from failures[0]
    return report


# ----------------------------------------------------------------------
# Open loop
# ----------------------------------------------------------------------

async def _open_loop(host: str, port: int,
                     jobs: Sequence[Mapping[str, object]],
                     rate: float) -> LoadgenReport:
    reader, writer = await asyncio.open_connection(host, port)
    report = LoadgenReport(mode="open", jobs=len(jobs), completed=0,
                           errors=0, cache_hits=0, coalesced=0,
                           wall_seconds=0.0, concurrency=rate)
    # scheduled arrival offsets: fixed inter-arrival time 1/rate
    arrivals = [i / rate for i in range(len(jobs))]
    scheduled: Dict[object, float] = {}
    outstanding = len(jobs)
    start = time.perf_counter()

    async def submit_on_schedule() -> None:
        for i, job in enumerate(jobs):
            delay = start + arrivals[i] - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            scheduled[i] = start + arrivals[i]
            writer.write(encode_message(
                {"op": "submit", "id": i, "job": dict(job)}))
            await writer.drain()

    submitter = asyncio.ensure_future(submit_on_schedule())
    try:
        while outstanding:
            line = await reader.readline()
            if not line:
                raise ServeClientError("server closed the connection")
            if len(line) > MAX_FRAME_BYTES:
                raise ServeClientError("oversized frame")
            message = decode_message(line)
            if message.get("event") != "result":
                if message.get("event") in ("accepted", "progress"):
                    continue
                if not message.get("ok", True):
                    report.errors += 1
                    outstanding -= 1
                continue
            now = time.perf_counter()
            # latency from the *scheduled* arrival, not the send:
            # coordinated-omission-corrected
            report.latencies.append(now - scheduled[message.get("id")])
            if message.get("ok"):
                report.completed += 1
            else:
                report.errors += 1
            if message.get("cached"):
                report.cache_hits += 1
            if message.get("coalesced"):
                report.coalesced += 1
            outstanding -= 1
    finally:
        submitter.cancel()
        try:
            await submitter
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
    report.wall_seconds = time.perf_counter() - start
    return report


def run_open_loop(host: str, port: int,
                  jobs: Sequence[Mapping[str, object]],
                  rate: float) -> LoadgenReport:
    """Submit ``jobs`` at a fixed arrival ``rate`` (jobs per second)."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    return asyncio.run(_open_loop(host, port, jobs, rate))


__all__ = [
    "MIX_MODELS",
    "MIX_RUN_CONFIG",
    "MIX_TECHNIQUES",
    "MIX_TESTS",
    "LoadgenReport",
    "build_job_mix",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
]

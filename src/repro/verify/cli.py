"""``python -m repro.verify`` — the differential conformance fuzzer CLI.

Typical runs::

    python -m repro.verify --budget 200 --jobs 4 --seed 0
    python -m repro.verify --budget 2000 --oracle axiomatic   # static only
    python -m repro.verify --budget 500 --backend batched     # lockstep sim
    python -m repro.verify --suite --oracle all               # named suite
    python -m repro.verify --budget 50 --fault slb-deaf --corpus out.json
    python -m repro.verify --replay out.json

``--oracle`` picks the legs of the three-way crosscheck: ``sim``
(simulator vs interleaving enumerator — the historical check),
``axiomatic`` (enumerator vs the declarative herd-style checker, no
simulation at all), or ``all`` (default: both, plus simulator
membership in the axiomatic set).

Exit status is 0 when every check passed, 1 when any divergence,
oracle disagreement, worker error, or still-failing replay entry was
found.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..consistency.litmus import STANDARD_TESTS
from ..sim.sweep import ProgressMeter, SweepError, derive_seed, run_sweep
from .corpus import (
    Corpus,
    CorpusEntry,
    disagreement_to_dict,
    divergence_to_dict,
    litmus_to_dict,
    replay_corpus,
)
from .generator import GeneratorConfig, generate_litmus
from .harness import (
    BACKENDS,
    FAULTS,
    ORACLE_MODES,
    CheckResult,
    HarnessConfig,
    check_named,
    check_seed,
    check_seed_chunk,
)
from .minimize import minimize


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential conformance fuzzer: detailed simulator "
                    "vs reference litmus enumeration.")
    parser.add_argument("--budget", type=int, default=200,
                        help="number of random tests to check (default 200)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep (default 1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed; item seeds are derived "
                             "deterministically (default 0)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="items per sweep chunk (default: auto)")
    parser.add_argument("--corpus", default="verify-corpus.json",
                        help="where to write the JSON failure corpus "
                             "(default verify-corpus.json; only written "
                             "when something fails)")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="re-check a saved corpus instead of fuzzing")
    parser.add_argument("--oracle", choices=ORACLE_MODES, default="all",
                        help="which oracle legs to run: sim (simulator vs "
                             "enumerator), axiomatic (enumerator vs "
                             "declarative checker, no simulation), or all "
                             "(default)")
    parser.add_argument("--backend", choices=BACKENDS, default="scalar",
                        help="simulator-leg backend: scalar (one machine "
                             "per run) or batched (lockstep SoA engine; "
                             "bit-identical outcomes, much higher "
                             "throughput)")
    parser.add_argument("--server", metavar="HOST:PORT", default=None,
                        help="submit simulator legs to a running "
                             "repro.serve job server instead of running "
                             "them in-process (repeated legs answer from "
                             "its content-addressed cache)")
    parser.add_argument("--suite", action="store_true",
                        help="check the named litmus suite instead of "
                             "fuzzing (--budget/--seed are ignored)")
    parser.add_argument("--fault", choices=sorted(FAULTS), default=None,
                        help="inject a known fault in the workers "
                             "(self-test: the fuzzer must catch it)")
    parser.add_argument("--no-minimize", action="store_true",
                        help="skip test-case minimization of failures")
    parser.add_argument("--localize", action="store_true",
                        help="on failure, re-run the failing leg with "
                             "archtraces on both backends, diff against "
                             "reference runs, and attach the "
                             "DivergenceReport to the corpus entry "
                             "(paired archtraces land in "
                             "<corpus>.localize/)")
    parser.add_argument("--progress", action="store_true",
                        help="live sweep telemetry on stderr: items done, "
                             "EMA rate, ETA, worker utilization")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    parser.add_argument("--stats-json", metavar="FILE", default=None,
                        help="write the campaign metrics snapshot (legs, "
                             "compile-memo hits, fallback reasons) as JSON")
    parser.add_argument("--prometheus", metavar="FILE", default=None,
                        help="write the campaign metrics in the Prometheus "
                             "text exposition format")
    parser.add_argument("--trace-spans", metavar="FILE", default=None,
                        help="write the campaign's orchestration spans "
                             "(parent + workers, one merged timeline) as "
                             "Perfetto trace_event JSON")
    parser.add_argument("--ledger", metavar="FILE", default=None,
                        help="run-ledger JSONL path (default: "
                             "$REPRO_LEDGER or .repro/ledger.jsonl)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append this campaign to the run ledger")
    return parser


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def progress(done: int, total: int) -> None:
        print(f"\r  checked {done}/{total}", end="", file=sys.stderr)
        if done == total:
            print(file=sys.stderr)

    return progress


def _oracle_counters(failures: Sequence[CheckResult]) -> Tuple[int, int, int]:
    """(sim-vs-enumerator, sim-vs-axiomatic, axiomatic-vs-enumerator)."""
    sim_enum = sum(1 for f in failures for d in f.divergences
                   if d.oracle == "enumerator")
    sim_ax = sum(1 for f in failures for d in f.divergences
                 if d.oracle == "axiomatic")
    ax_enum = sum(len(f.oracle_disagreements) for f in failures)
    return sim_enum, sim_ax, ax_enum


def run_fuzz(budget: int, jobs: int, seed: int,
             chunk_size: Optional[int] = None,
             fault: Optional[str] = None,
             corpus_path: Optional[str] = None,
             do_minimize: bool = True,
             quiet: bool = False,
             telemetry: bool = False,
             generator: Optional[GeneratorConfig] = None,
             oracle: str = "all",
             suite: bool = False,
             backend: str = "scalar",
             server: Optional[str] = None,
             localize: bool = False,
             stats_json: Optional[str] = None,
             prometheus: Optional[str] = None,
             trace_spans: Optional[str] = None,
             ledger_path: Optional[str] = None,
             ledger: bool = True) -> int:
    """Fuzz ``budget`` seeds (or sweep the named suite); returns the
    process exit status.

    ``telemetry`` upgrades the plain ``checked n/total`` counter to the
    live sweep meter (EMA rate, ETA, worker utilization).  ``oracle``
    selects the crosscheck legs (see module docstring); ``suite``
    checks every named standard litmus test instead of fuzzing.

    Every campaign runs inside its own telemetry scope (a fresh
    campaign-scoped registry + span tracer, so two campaigns in one
    process never mix), exportable via ``stats_json`` /
    ``prometheus`` / ``trace_spans``, and — unless ``ledger`` is off —
    lands one content-addressed record in the run ledger.
    """
    from ..obs import telemetry as tm

    gen_config = generator if generator is not None else GeneratorConfig()
    options: Dict[str, object] = {"generator": gen_config.to_dict(),
                                  "oracle": oracle,
                                  "backend": backend}
    if fault is not None:
        options["fault"] = fault
    if server is not None:
        options["server"] = server
    chunk_worker = None
    if suite:
        names = sorted(STANDARD_TESTS)
        items = [(i, name, options) for i, name in enumerate(names)]
        worker = check_named
        total = len(names)
    else:
        items = [(i, derive_seed(seed, i, "fuzz"), options)
                 for i in range(budget)]
        worker = check_seed  # type: ignore[assignment]
        total = budget
        if backend == "batched" and server is None:
            # batch a whole chunk's simulator legs into one lockstep
            # engine — per-test batches are too small to amortize.
            # With --server the batching decision is the server's
            # (its dispatcher drains queued misses into one executor
            # call), so legs go through the per-item worker.
            chunk_worker = check_seed_chunk

    meter = ProgressMeter(label="verify") if telemetry and not quiet else None
    t0 = time.perf_counter()
    with tm.collect(process="verify campaign") as scope:
        with tm.span("verify/campaign",
                     {"tests": total, "oracle": oracle, "backend": backend,
                      "jobs": jobs}):
            sweep = run_sweep(worker, items, jobs=jobs, chunk_size=chunk_size,
                              progress=None if meter else
                              _progress_printer(quiet),
                              telemetry=meter, on_error="record",
                              chunk_worker=chunk_worker)
    wall = time.perf_counter() - t0
    if meter is not None:
        meter.finish()

    failures: List[CheckResult] = []
    crashes: List[SweepError] = []
    total_runs = 0
    for result in sweep.results:
        if isinstance(result, SweepError):
            crashes.append(result)
        else:
            total_runs += result.num_runs
            if not result.ok:
                failures.append(result)

    if not quiet:
        print(sweep.describe())
        print(f"  {total_runs} simulator run(s) across {total} test(s) "
              f"[oracle={oracle}, backend={backend}]")

    corpus = Corpus()
    for failure in failures:
        if suite:
            test = STANDARD_TESTS[failure.test_name]()
        else:
            test = generate_litmus(failure.seed, gen_config)
        label = (f"test {failure.test_name!r}" if suite
                 else f"seed={failure.seed}")
        print(f"FAIL {label} (item {failure.index}): "
              f"{len(failure.divergences)} divergence(s), "
              f"{len(failure.oracle_disagreements)} oracle disagreement(s)")
        for dis in failure.oracle_disagreements[:4]:
            print(f"  {dis.describe()}")
        for div in failure.divergences[:4]:
            print(f"  {div.describe()}")
        minimized_dict = None
        if do_minimize:
            shrink = minimize(test,
                              config=HarnessConfig(fault=fault, oracle=oracle,
                                                   backend=backend))
            minimized_dict = litmus_to_dict(shrink.test)
            print(f"  {shrink.describe()}")
            for tid, thread in enumerate(shrink.test.threads):
                print(f"    T{tid}: " +
                      "; ".join(op.describe() for op in thread))
        localization_dict = None
        if localize and failure.divergences:
            from .localize import localize_failure
            loc_dir = None
            if corpus_path:
                loc_dir = f"{corpus_path}.localize/item{failure.index}"
            loc = localize_failure(
                test, list(failure.divergences),
                config=HarnessConfig(fault=fault, oracle=oracle,
                                     backend=backend),
                test_name=failure.test_name if suite
                else f"seed={failure.seed}",
                out_dir=loc_dir)
            if loc is not None:
                localization_dict = loc.to_dict()
                print(loc.describe())
        corpus.add(CorpusEntry(
            master_seed=seed,
            index=failure.index,
            derived_seed=0 if suite else failure.seed,
            test=litmus_to_dict(test),
            divergences=[divergence_to_dict(d) for d in failure.divergences],
            minimized=minimized_dict,
            fault=fault,
            oracle=oracle,
            oracle_disagreements=[disagreement_to_dict(d)
                                  for d in failure.oracle_disagreements],
            localization=localization_dict,
        ))
    for crash in crashes:
        print(f"ERROR {crash.describe()}")

    if corpus.entries and corpus_path:
        corpus.save(corpus_path)
        print(f"wrote {len(corpus.entries)} corpus entr(ies) to {corpus_path}")

    sim_enum, sim_ax, ax_enum = _oracle_counters(failures)
    status = 1 if failures or crashes else 0

    artifacts: Dict[str, str] = {}
    if corpus.entries and corpus_path:
        artifacts["corpus"] = corpus_path
    if stats_json:
        scope.metrics.write_json(stats_json)
        artifacts["stats_json"] = stats_json
        if not quiet:
            print(f"campaign metrics snapshot written to {stats_json}")
    if prometheus:
        scope.metrics.write_prometheus(prometheus)
        artifacts["prometheus"] = prometheus
        if not quiet:
            print(f"Prometheus exposition written to {prometheus}")
    if trace_spans:
        scope.spans.write_perfetto(trace_spans, label="verify campaign")
        artifacts["trace_spans"] = trace_spans
        if not quiet:
            print(f"campaign span trace written to {trace_spans}")

    if ledger:
        from ..obs import ledger as ledger_mod

        # execution shape (jobs, chunking) deliberately excluded: it
        # cannot change the campaign's outcome, and this hash is the
        # future result-cache key
        request: Dict[str, object] = {
            "kind": "suite" if suite else "fuzz",
            "budget": None if suite else budget,
            "master_seed": None if suite else seed,
            "generator": gen_config.to_dict(),
            "oracle": oracle,
            "backend": backend,
            "fault": fault,
        }
        record = ledger_mod.make_record(
            kind="fuzz",
            request=request,
            outcome={
                "status": status,
                "tests": total,
                "simulator_runs": total_runs,
                "failures": len(failures),
                "crashes": len(crashes),
                "sim_vs_enumerator": sim_enum,
                "sim_vs_axiomatic": sim_ax,
                "axiomatic_vs_enumerator": ax_enum,
            },
            wall_seconds=wall,
            items=total_runs,
            artifacts=artifacts,
        )
        path = ledger_mod.append_record(record, ledger_path)
        if not quiet:
            print(f"ledger: {record['kind']} "
                  f"{str(record['request_sha256'])[:12]}.. -> {path}")

    if status:
        print(f"verify: FAILED ({len(failures)} failing test(s), "
              f"{len(crashes)} crash(es); sim-vs-enumerator {sim_enum}, "
              f"sim-vs-axiomatic {sim_ax}, "
              f"axiomatic-vs-enumerator {ax_enum})")
        return status
    if not quiet:
        print(f"verify: OK ({total} test(s), {total_runs} run(s), "
              f"0 divergences, 0 oracle disagreements)")
    return status


def run_replay(path: str, quiet: bool = False) -> int:
    still_failing = replay_corpus(path)
    if still_failing:
        for entry in still_failing:
            print(f"STILL FAILING: seed={entry.derived_seed} "
                  f"(master {entry.master_seed}, item {entry.index})")
        return 1
    if not quiet:
        print(f"replay: OK — no corpus entry reproduces")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay is not None:
        return run_replay(args.replay, quiet=args.quiet)
    if args.budget < 1 and not args.suite:
        print("--budget must be >= 1", file=sys.stderr)
        return 2
    if args.server is not None and args.fault is not None:
        print("--fault is incompatible with --server: faults monkeypatch "
              "this process, not the job server", file=sys.stderr)
        return 2
    return run_fuzz(
        budget=args.budget,
        jobs=args.jobs,
        seed=args.seed,
        chunk_size=args.chunk_size,
        fault=args.fault,
        corpus_path=args.corpus,
        do_minimize=not args.no_minimize,
        quiet=args.quiet,
        telemetry=args.progress,
        oracle=args.oracle,
        suite=args.suite,
        backend=args.backend,
        server=args.server,
        localize=args.localize,
        stats_json=args.stats_json,
        prometheus=args.prometheus,
        trace_spans=args.trace_spans,
        ledger_path=args.ledger,
        ledger=not args.no_ledger,
    )


if __name__ == "__main__":
    sys.exit(main())

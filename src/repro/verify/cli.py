"""``python -m repro.verify`` — the differential conformance fuzzer CLI.

Typical runs::

    python -m repro.verify --budget 200 --jobs 4 --seed 0
    python -m repro.verify --budget 50 --fault slb-deaf --corpus out.json
    python -m repro.verify --replay out.json

Exit status is 0 when every check passed, 1 when any divergence,
worker error, or still-failing replay entry was found.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from ..sim.sweep import ProgressMeter, SweepError, derive_seed, run_sweep
from .corpus import (
    Corpus,
    CorpusEntry,
    divergence_to_dict,
    litmus_to_dict,
    replay_corpus,
)
from .generator import GeneratorConfig, generate_litmus
from .harness import FAULTS, CheckResult, HarnessConfig, check_seed
from .minimize import minimize


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential conformance fuzzer: detailed simulator "
                    "vs reference litmus enumeration.")
    parser.add_argument("--budget", type=int, default=200,
                        help="number of random tests to check (default 200)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep (default 1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed; item seeds are derived "
                             "deterministically (default 0)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="items per sweep chunk (default: auto)")
    parser.add_argument("--corpus", default="verify-corpus.json",
                        help="where to write the JSON failure corpus "
                             "(default verify-corpus.json; only written "
                             "when something fails)")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="re-check a saved corpus instead of fuzzing")
    parser.add_argument("--fault", choices=sorted(FAULTS), default=None,
                        help="inject a known fault in the workers "
                             "(self-test: the fuzzer must catch it)")
    parser.add_argument("--no-minimize", action="store_true",
                        help="skip test-case minimization of failures")
    parser.add_argument("--progress", action="store_true",
                        help="live sweep telemetry on stderr: items done, "
                             "EMA rate, ETA, worker utilization")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    return parser


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def progress(done: int, total: int) -> None:
        print(f"\r  checked {done}/{total}", end="", file=sys.stderr)
        if done == total:
            print(file=sys.stderr)

    return progress


def run_fuzz(budget: int, jobs: int, seed: int,
             chunk_size: Optional[int] = None,
             fault: Optional[str] = None,
             corpus_path: Optional[str] = None,
             do_minimize: bool = True,
             quiet: bool = False,
             telemetry: bool = False,
             generator: Optional[GeneratorConfig] = None) -> int:
    """Fuzz ``budget`` seeds; returns the process exit status.

    ``telemetry`` upgrades the plain ``checked n/total`` counter to the
    live sweep meter (EMA rate, ETA, worker utilization).
    """
    gen_config = generator if generator is not None else GeneratorConfig()
    options: Dict[str, object] = {"generator": gen_config.to_dict()}
    if fault is not None:
        options["fault"] = fault
    items = [(i, derive_seed(seed, i, "fuzz"), options)
             for i in range(budget)]

    meter = ProgressMeter(label="verify") if telemetry and not quiet else None
    sweep = run_sweep(check_seed, items, jobs=jobs, chunk_size=chunk_size,
                      progress=None if meter else _progress_printer(quiet),
                      telemetry=meter, on_error="record")
    if meter is not None:
        meter.finish()

    failures: List[CheckResult] = []
    crashes: List[SweepError] = []
    total_runs = 0
    for result in sweep.results:
        if isinstance(result, SweepError):
            crashes.append(result)
        else:
            total_runs += result.num_runs
            if not result.ok:
                failures.append(result)

    if not quiet:
        print(sweep.describe())
        print(f"  {total_runs} simulator run(s) across {budget} test(s)")

    corpus = Corpus()
    for failure in failures:
        test = generate_litmus(failure.seed, gen_config)
        print(f"FAIL seed={failure.seed} (item {failure.index}): "
              f"{len(failure.divergences)} divergence(s)")
        for div in failure.divergences[:4]:
            print(f"  {div.describe()}")
        minimized_dict = None
        if do_minimize:
            shrink = minimize(test, config=HarnessConfig(fault=fault))
            minimized_dict = litmus_to_dict(shrink.test)
            print(f"  {shrink.describe()}")
            for tid, thread in enumerate(shrink.test.threads):
                print(f"    T{tid}: " +
                      "; ".join(op.describe() for op in thread))
        corpus.add(CorpusEntry(
            master_seed=seed,
            index=failure.index,
            derived_seed=failure.seed,
            test=litmus_to_dict(test),
            divergences=[divergence_to_dict(d) for d in failure.divergences],
            minimized=minimized_dict,
            fault=fault,
        ))
    for crash in crashes:
        print(f"ERROR {crash.describe()}")

    if corpus.entries and corpus_path:
        corpus.save(corpus_path)
        print(f"wrote {len(corpus.entries)} corpus entr(ies) to {corpus_path}")

    if failures or crashes:
        print(f"verify: FAILED ({len(failures)} divergent test(s), "
              f"{len(crashes)} crash(es))")
        return 1
    if not quiet:
        print(f"verify: OK ({budget} test(s), {total_runs} run(s), "
              f"0 divergences)")
    return 0


def run_replay(path: str, quiet: bool = False) -> int:
    still_failing = replay_corpus(path)
    if still_failing:
        for entry in still_failing:
            print(f"STILL FAILING: seed={entry.derived_seed} "
                  f"(master {entry.master_seed}, item {entry.index})")
        return 1
    if not quiet:
        print(f"replay: OK — no corpus entry reproduces")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay is not None:
        return run_replay(args.replay, quiet=args.quiet)
    if args.budget < 1:
        print("--budget must be >= 1", file=sys.stderr)
        return 2
    return run_fuzz(
        budget=args.budget,
        jobs=args.jobs,
        seed=args.seed,
        chunk_size=args.chunk_size,
        fault=args.fault,
        corpus_path=args.corpus,
        do_minimize=not args.no_minimize,
        quiet=args.quiet,
        telemetry=args.progress,
    )


if __name__ == "__main__":
    sys.exit(main())

"""Seeded random litmus-program generation.

A generated test is a :class:`~repro.consistency.litmus.LitmusTest` —
2–4 threads of loads, stores, atomic RMWs, and fences over a small
shared-address pool, with per-model-relevant synchronization
annotations (acquire loads/RMWs, release stores/RMWs) sprinkled in.
The litmus form gives the *reference* outcome set (exhaustive
enumeration under each model); :meth:`LitmusTest.to_programs` gives
the executable form the detailed simulator runs.

Generation is a pure function of the seed: the same
``(seed, GeneratorConfig)`` always yields the same test, which is what
makes corpus replay and cross-process fuzzing deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..consistency.litmus import LitmusOp, LitmusTest
from ..sim.errors import ConfigurationError

#: symbolic locations drawn from LitmusTest.ADDR_MAP
DEFAULT_ADDR_POOL: Tuple[str, ...] = ("x", "y", "data", "flag")


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape knobs for random litmus tests.

    The default caps keep exhaustive outcome enumeration affordable
    (``LitmusTest`` itself rejects more than 12 accesses) while still
    covering 2–4 CPUs and every op kind.
    """

    min_cpus: int = 2
    max_cpus: int = 4
    min_ops_per_thread: int = 1
    max_ops_per_thread: int = 4
    max_total_ops: int = 9
    addr_pool: Tuple[str, ...] = DEFAULT_ADDR_POOL
    #: number of distinct shared locations a single test draws from
    max_addrs: int = 3
    #: op-kind weights: (load, store, rmw, fence)
    op_weights: Tuple[float, float, float, float] = (4.0, 4.0, 1.0, 1.0)
    #: probability that a load/RMW is an acquire, a store/RMW a release
    sync_probability: float = 0.25
    max_value: int = 3

    def __post_init__(self) -> None:
        if not 2 <= self.min_cpus <= self.max_cpus:
            raise ConfigurationError("need 2 <= min_cpus <= max_cpus")
        if self.max_cpus * self.min_ops_per_thread > self.max_total_ops:
            raise ConfigurationError("max_total_ops too small for max_cpus")
        if not self.addr_pool:
            raise ConfigurationError("addr_pool must not be empty")

    def to_dict(self) -> Dict[str, object]:
        return {
            "min_cpus": self.min_cpus,
            "max_cpus": self.max_cpus,
            "min_ops_per_thread": self.min_ops_per_thread,
            "max_ops_per_thread": self.max_ops_per_thread,
            "max_total_ops": self.max_total_ops,
            "addr_pool": list(self.addr_pool),
            "max_addrs": self.max_addrs,
            "op_weights": list(self.op_weights),
            "sync_probability": self.sync_probability,
            "max_value": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GeneratorConfig":
        kwargs = dict(data)
        for key in ("addr_pool", "op_weights"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass
class _ThreadDraft:
    ops: List[LitmusOp] = field(default_factory=list)


def _draw_op(rng: random.Random, config: GeneratorConfig,
             addrs: Sequence[str], reg_name: str) -> LitmusOp:
    kind = rng.choices(("R", "W", "U", "F"), weights=config.op_weights)[0]
    if kind == "F":
        return LitmusOp(op="F")
    addr = rng.choice(list(addrs))
    sync = rng.random() < config.sync_probability
    if kind == "R":
        return LitmusOp(op="R", addr=addr, reg=reg_name, acquire=sync)
    value = rng.randint(1, config.max_value)
    if kind == "W":
        return LitmusOp(op="W", addr=addr, value=value, release=sync)
    # RMW: an acquire, a release, or plain — never silently both
    flavor = rng.choice(("plain", "acquire", "release"))
    return LitmusOp(op="U", addr=addr, reg=reg_name, value=value,
                    acquire=sync and flavor == "acquire",
                    release=sync and flavor == "release")


def _is_interesting(threads: Sequence[Sequence[LitmusOp]]) -> bool:
    """At least two threads touch a common address, one of them writing —
    otherwise the test cannot distinguish any two models."""
    touched: Dict[str, set] = {}
    written: Dict[str, set] = {}
    for tid, ops in enumerate(threads):
        for op in ops:
            if op.op == "F":
                continue
            touched.setdefault(op.addr, set()).add(tid)
            if op.writes:
                written.setdefault(op.addr, set()).add(tid)
    for addr, toucher_tids in touched.items():
        if len(toucher_tids) >= 2 and written.get(addr):
            return True
    return False


def generate_litmus(seed: int, config: GeneratorConfig = GeneratorConfig(),
                    name: str = "") -> LitmusTest:
    """The random litmus test for ``seed`` (pure, deterministic)."""
    rng = random.Random(seed)
    for attempt in range(64):
        num_cpus = rng.randint(config.min_cpus, config.max_cpus)
        addrs = rng.sample(list(config.addr_pool),
                           min(config.max_addrs, len(config.addr_pool),
                               1 + rng.randint(0, config.max_addrs - 1)))
        budget = config.max_total_ops - num_cpus * config.min_ops_per_thread
        threads: List[List[LitmusOp]] = []
        reg_serial = 0
        for tid in range(num_cpus):
            extra = rng.randint(
                0, min(config.max_ops_per_thread - config.min_ops_per_thread,
                       budget))
            budget -= extra
            ops: List[LitmusOp] = []
            for _ in range(config.min_ops_per_thread + extra):
                reg_serial += 1
                ops.append(_draw_op(rng, config, addrs,
                                    f"t{tid}r{reg_serial}"))
            threads.append(ops)
        if _is_interesting(threads):
            return LitmusTest(name=name or f"fuzz-{seed}", threads=threads)
    # With sane configs 64 attempts essentially never all miss; fall
    # back to a canonical store-buffering shape so callers always get
    # a usable test for any seed.
    return LitmusTest(
        name=name or f"fuzz-{seed}",
        threads=[
            [LitmusOp(op="W", addr=config.addr_pool[0], value=1),
             LitmusOp(op="R", addr=config.addr_pool[-1], reg="t0r1")],
            [LitmusOp(op="W", addr=config.addr_pool[-1], value=1),
             LitmusOp(op="R", addr=config.addr_pool[0], reg="t1r2")],
        ],
    )

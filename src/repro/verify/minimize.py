"""Automatic test-case minimization for divergent litmus tests.

When the differential harness finds an outcome the reference semantics
forbids, the raw generated test is rarely the clearest witness.  The
minimizer greedily shrinks it while the oracle ("some divergence still
reproduces under this harness config") keeps passing:

1. drop whole threads (a litmus test needs at least two);
2. drop individual operations;
3. strip acquire/release annotations from the survivors.

Each pass restarts whenever a reduction sticks, so the result is
1-minimal with respect to these three moves: removing any single
thread, op, or annotation makes the divergence disappear.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from ..consistency.litmus import LitmusOp, LitmusTest
from .harness import HarnessConfig, divergence_reproduces

#: oracle signature: does the bug still reproduce on this candidate?
Oracle = Callable[[LitmusTest], bool]


@dataclass
class MinimizationResult:
    """The shrunken test plus accounting for reporting."""

    test: LitmusTest
    oracle_calls: int
    ops_before: int
    ops_after: int

    def describe(self) -> str:
        return (f"minimized {self.ops_before} -> {self.ops_after} op(s) "
                f"in {self.oracle_calls} oracle call(s)")


def _count_ops(test: LitmusTest) -> int:
    return sum(len(thread) for thread in test.threads)


def _rebuild(test: LitmusTest, threads: List[List[LitmusOp]]) -> Optional[LitmusTest]:
    """A candidate test with the given threads, or ``None`` if invalid."""
    kept = [list(ops) for ops in threads if ops]
    if len(kept) < 2:
        return None
    try:
        return LitmusTest(name=test.name, threads=kept)
    except Exception:  # noqa: BLE001 - invalid shrink candidates are skipped
        return None


def minimize(test: LitmusTest, oracle: Optional[Oracle] = None,
             config: Optional[HarnessConfig] = None,
             max_oracle_calls: int = 200) -> MinimizationResult:
    """Greedily shrink ``test`` while ``oracle`` keeps returning True.

    The default oracle re-runs the differential harness with ``config``
    (so minimization uses the same model/technique/run-config axis that
    found the bug).  ``max_oracle_calls`` bounds total work; hitting the
    bound returns the best reduction so far.
    """
    if oracle is None:
        harness = config if config is not None else HarnessConfig()
        oracle = lambda t: divergence_reproduces(t, harness)  # noqa: E731
    calls = 0
    ops_before = _count_ops(test)

    def check(candidate: Optional[LitmusTest]) -> bool:
        nonlocal calls
        if candidate is None or calls >= max_oracle_calls:
            return False
        calls += 1
        return oracle(candidate)

    current = test
    improved = True
    while improved and calls < max_oracle_calls:
        improved = False

        # Pass 1: drop whole threads.
        for tid in range(len(current.threads)):
            threads = [list(ops) for i, ops in enumerate(current.threads)
                       if i != tid]
            candidate = _rebuild(current, threads)
            if check(candidate):
                current = candidate
                improved = True
                break
        if improved:
            continue

        # Pass 2: drop single operations.
        for tid in range(len(current.threads)):
            for oid in range(len(current.threads[tid])):
                threads = [list(ops) for ops in current.threads]
                del threads[tid][oid]
                candidate = _rebuild(current, threads)
                if check(candidate):
                    current = candidate
                    improved = True
                    break
            if improved:
                break
        if improved:
            continue

        # Pass 3: strip acquire/release annotations.
        for tid in range(len(current.threads)):
            for oid, op in enumerate(current.threads[tid]):
                if not (op.acquire or op.release):
                    continue
                threads = [list(ops) for ops in current.threads]
                threads[tid][oid] = replace(op, acquire=False, release=False)
                candidate = _rebuild(current, threads)
                if check(candidate):
                    current = candidate
                    improved = True
                    break
            if improved:
                break

    return MinimizationResult(test=current, oracle_calls=calls,
                              ops_before=ops_before,
                              ops_after=_count_ops(current))

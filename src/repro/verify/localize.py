"""First-divergence localization for verify failures.

When the fuzzer finds a :class:`~repro.verify.harness.Divergence` (or a
backend-parity failure), knowing *that* a leg diverged is the start of
triage, not the end.  This module re-runs the failing leg with the
canonical architectural event stream enabled (:mod:`repro.obs.archtrace`)
and diffs it against reference runs to pin the **first divergent
architectural event**:

* with a fault injected (the ``--fault`` self-test and any future
  in-process fault), the references are *clean* runs — faults are
  reversible (:func:`~repro.verify.harness.clear_faults`), so the
  localizer undoes them, runs a clean scalar and a clean batched
  reference, re-applies the fault, and diffs the faulted subject
  against both (``scalar-vs-scalar`` and ``scalar-vs-batched``);
* with no fault, the failure is either a genuine model bug or a
  backend-parity break, and the localizer runs the leg on both
  backends and diffs them (``scalar-vs-batched``).

Honesty note: fault legs run with ``speculation=True``, which is
outside the batched engine's envelope — the "batched" reference is then
transparently routed to the scalar kernel and its archtrace header
says so (``backend: scalar``, ``fallback_reason: ...``), exactly the
tagging the runner applies to any unsupported job.

Every archtrace is also written to ``out_dir`` (when given) so CI can
upload the paired streams next to the :class:`DivergenceReport`.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..consistency.litmus import LitmusTest
from ..obs.diff import DivergenceReport, diff_archtraces
from .harness import (
    DEFAULT_RUN_CONFIGS,
    Divergence,
    HarnessConfig,
    RunConfig,
    _legs_to_jobs,
    apply_fault,
    clear_faults,
)


@dataclass
class LocalizationResult:
    """Everything triage needs about one localized failing leg."""

    test_name: str
    model: str
    prefetch: bool
    speculation: bool
    config_name: str
    backend: str
    fault: Optional[str] = None
    #: comparison name (e.g. "scalar-vs-scalar") -> report
    reports: Dict[str, DivergenceReport] = field(default_factory=dict)
    #: comparison name -> (path_a, path_b) of the serialized archtraces
    artifacts: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "test_name": self.test_name,
            "model": self.model,
            "prefetch": self.prefetch,
            "speculation": self.speculation,
            "config_name": self.config_name,
            "backend": self.backend,
            "fault": self.fault,
            "reports": {name: rep.to_dict()
                        for name, rep in self.reports.items()},
            "artifacts": {name: list(paths)
                          for name, paths in self.artifacts.items()},
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, object]) -> "LocalizationResult":
        kwargs = dict(obj)
        kwargs["reports"] = {
            name: DivergenceReport.from_dict(rep)
            for name, rep in (obj.get("reports") or {}).items()}
        kwargs["artifacts"] = {
            name: tuple(paths)
            for name, paths in (obj.get("artifacts") or {}).items()}
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        leg = (f"{self.model} prefetch={self.prefetch} "
               f"speculation={self.speculation} config={self.config_name}")
        lines = [f"localized leg: {self.test_name} [{leg}]"
                 + (f" fault={self.fault}" if self.fault else "")]
        for name, rep in self.reports.items():
            lines.append(f"-- {name} --")
            lines.append(rep.describe())
        return "\n".join(lines)


def _resolve_run_config(config: HarnessConfig,
                        config_name: str) -> RunConfig:
    for rc in config.run_configs or DEFAULT_RUN_CONFIGS:
        if rc.name == config_name:
            return rc
    raise KeyError(f"unknown run config {config_name!r}")


def _run_leg(test: LitmusTest, model: str, prefetch: bool,
             speculation: bool, run_config: RunConfig,
             force_scalar: bool):
    """One archtrace-enabled run of the leg; returns the BatchResult."""
    from ..sim.batch import BatchRunner

    jobs, _audit = _legs_to_jobs(
        test, [(model, prefetch, speculation, run_config)])
    jobs[0].archtrace = True
    result = BatchRunner(force_scalar=force_scalar).run(jobs)[0]
    result.raise_if_error()
    return result


def localize_divergence(test: LitmusTest, divergence: Divergence,
                        config: HarnessConfig = HarnessConfig(),
                        test_name: str = "",
                        out_dir: Optional[str] = None,
                        context: int = 5) -> LocalizationResult:
    """Re-run ``divergence``'s leg with archtraces and diff it against
    reference runs (see module docstring for the comparison matrix)."""
    run_config = _resolve_run_config(config, divergence.config_name)
    leg = (divergence.model, divergence.prefetch, divergence.speculation,
           run_config)
    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="repro-localize-")
    os.makedirs(out_dir, exist_ok=True)

    loc = LocalizationResult(
        test_name=test_name or divergence.test_name,
        model=divergence.model,
        prefetch=divergence.prefetch,
        speculation=divergence.speculation,
        config_name=divergence.config_name,
        backend=config.backend,
        fault=config.fault,
    )

    def write(result, stem: str) -> str:
        path = os.path.join(out_dir, f"{stem}.archtrace.jsonl")
        result.write_archtrace(path, label=f"{loc.test_name} {stem}")
        return path

    if config.fault:
        # the subject must actually carry the fault in this process
        apply_fault(config.fault)
        faults = clear_faults()
        try:
            ref_scalar = _run_leg(test, *leg[:3], run_config,
                                  force_scalar=True)
            ref_batched = _run_leg(test, *leg[:3], run_config,
                                   force_scalar=False)
        finally:
            for name in faults:
                apply_fault(name)
        subject = _run_leg(test, *leg[:3], run_config, force_scalar=True)
        p_subject = write(subject, "faulted-scalar")
        p_ref_s = write(ref_scalar, "clean-scalar")
        p_ref_b = write(ref_batched, "clean-batched")
        pairs = [("scalar-vs-scalar", p_ref_s, p_subject),
                 ("scalar-vs-batched", p_ref_b, p_subject)]
    else:
        subject_scalar = _run_leg(test, *leg[:3], run_config,
                                  force_scalar=True)
        subject_batched = _run_leg(test, *leg[:3], run_config,
                                   force_scalar=False)
        p_s = write(subject_scalar, "scalar")
        p_b = write(subject_batched, "batched")
        pairs = [("scalar-vs-batched", p_s, p_b)]

    for name, path_a, path_b in pairs:
        loc.reports[name] = diff_archtraces(
            path_a, path_b,
            label_a=os.path.basename(path_a).replace(".archtrace.jsonl", ""),
            label_b=os.path.basename(path_b).replace(".archtrace.jsonl", ""),
            context=context)
        loc.artifacts[name] = (path_a, path_b)
    return loc


def localize_failure(test: LitmusTest, divergences: List[Divergence],
                     config: HarnessConfig = HarnessConfig(),
                     test_name: str = "",
                     out_dir: Optional[str] = None) -> Optional[LocalizationResult]:
    """Localize the first divergence of a failing check (or None when
    the failure carried no Divergence, e.g. pure oracle disagreement)."""
    if not divergences:
        return None
    return localize_divergence(test, divergences[0], config=config,
                               test_name=test_name, out_dir=out_dir)

"""Differential conformance verification (``python -m repro.verify``).

The fuzzer ties the repo's *three* semantics together: random litmus
tests from :mod:`.generator`, the reference outcome sets from
exhaustive enumeration, the declarative outcome sets from the
axiomatic checker (:mod:`repro.analysis.axiomatic`), and the observed
outcomes from the detailed simulator — checked against each other
across models, techniques, and machine configurations by
:mod:`.harness` (``HarnessConfig.oracle`` selects the legs), with
failures minimized (:mod:`.minimize`) and recorded for replay
(:mod:`.corpus`).
"""

from .corpus import (
    Corpus,
    CorpusEntry,
    disagreement_to_dict,
    divergence_to_dict,
    litmus_from_dict,
    litmus_to_dict,
    replay_corpus,
)
from .generator import DEFAULT_ADDR_POOL, GeneratorConfig, generate_litmus
from .harness import (
    DEFAULT_RUN_CONFIGS,
    FAULTS,
    MODEL_NAMES,
    ORACLE_MODES,
    TECHNIQUE_COMBOS,
    CheckResult,
    Divergence,
    HarnessConfig,
    OracleDisagreement,
    RunConfig,
    apply_fault,
    check_named,
    check_seed,
    check_test,
    divergence_reproduces,
    observed_outcome,
)
from .minimize import MinimizationResult, minimize

__all__ = [
    "Corpus",
    "CorpusEntry",
    "CheckResult",
    "DEFAULT_ADDR_POOL",
    "DEFAULT_RUN_CONFIGS",
    "Divergence",
    "FAULTS",
    "GeneratorConfig",
    "HarnessConfig",
    "MODEL_NAMES",
    "MinimizationResult",
    "ORACLE_MODES",
    "OracleDisagreement",
    "RunConfig",
    "TECHNIQUE_COMBOS",
    "apply_fault",
    "check_named",
    "check_seed",
    "check_test",
    "disagreement_to_dict",
    "divergence_reproduces",
    "divergence_to_dict",
    "generate_litmus",
    "litmus_from_dict",
    "litmus_to_dict",
    "minimize",
    "observed_outcome",
    "replay_corpus",
]

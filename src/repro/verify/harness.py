"""Differential conformance checking: a three-way oracle.

The paper's central claim is that prefetching and speculative loads
are *invisible* to the consistency model.  The harness checks exactly
that, mechanically, against **three independent semantics**:

1. the *interleaving enumerator* (:meth:`LitmusTest.outcomes`):
   exhaustive linearization under the model's delay arcs, Section 2's
   write-atomicity assumption;
2. the *axiomatic checker* (:mod:`repro.analysis.axiomatic`):
   herd-style candidate executions accepted by per-model acyclicity
   axioms — no simulation, no interleaving, just relations;
3. the *detailed simulator*: what the machine actually does.

The first two must produce **identical** outcome sets for every
(test, model); every outcome the simulator produces — under any
technique combination, cache geometry, or thread-start skew — must be
a member of both.  ``HarnessConfig.oracle`` selects the legs: ``sim``
(simulator vs enumerator, the historical check), ``axiomatic``
(enumerator vs axioms, purely static and therefore cheap enough for
huge fuzz slices), or ``all`` (the default three-way).

``check_seed`` is the sweep-engine worker: a picklable item in, a
picklable :class:`CheckResult` out, so fuzzing parallelizes across
processes.  ``check_named`` is its sibling for the named litmus suite.
A small **fault registry** can deliberately break the speculative-load
buffer inside the worker process; the fuzzer finding those mutations
proves the harness has teeth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..consistency.litmus import LitmusTest, Outcome
from ..consistency.models import get_model
from ..memory.types import CacheConfig
from ..sim.errors import ConfigurationError
from ..system.machine import run_workload

#: the four models the paper discusses, by name (names pickle smaller
#: and more robustly than model instances)
MODEL_NAMES: Tuple[str, ...] = ("SC", "PC", "WC", "RC")


def _tm():
    """Campaign telemetry, imported lazily (cycle-safe, stdlib-only)."""
    from ..obs import telemetry
    return telemetry

#: which oracle legs the harness runs — see the module docstring
ORACLE_MODES: Tuple[str, ...] = ("sim", "axiomatic", "all")

#: how the simulator leg executes: one scalar machine per run, or the
#: lockstep batched engine stepping every (model, technique, config)
#: leg of a test at once (``repro.sim.batch``).  The batched engine is
#: bit-exact within its envelope and falls back to the scalar kernel
#: per job outside it, so the observed outcomes are identical either
#: way — the differential suite pins that down.
BACKENDS: Tuple[str, ...] = ("scalar", "batched")

#: (prefetch, speculation) combinations the harness drives
TECHNIQUE_COMBOS: Tuple[Tuple[bool, bool], ...] = (
    (False, False),
    (True, False),
    (False, True),
    (True, True),
)


@dataclass(frozen=True)
class RunConfig:
    """One machine/environment configuration for a litmus run."""

    name: str
    miss_latency: int = 40
    #: per-thread start-time skews (indexed modulo thread count)
    skew: Tuple[int, ...] = (0,)
    #: pre-install every shared litmus line SHARED in every cache, so
    #: loads hit (and perform early) while stores still pay the
    #: ownership latency — the widest reordering window
    warm_shared: bool = True
    line_size: int = 4
    max_cycles: int = 400_000


#: default configuration axis: contention windows of different shapes,
#: plus a false-sharing geometry (footnote 2: litmus locations x/y/data
#: share one 32-word line, so conservative line-granular detection fires)
DEFAULT_RUN_CONFIGS: Tuple[RunConfig, ...] = (
    RunConfig(name="warm-tight", miss_latency=40, skew=(0, 0), warm_shared=True),
    RunConfig(name="warm-skewed", miss_latency=40, skew=(0, 40, 7, 23),
              warm_shared=True),
    RunConfig(name="cold-skewed", miss_latency=20, skew=(13, 0, 29, 5),
              warm_shared=False),
    RunConfig(name="false-sharing", miss_latency=40, skew=(0, 11, 3, 17),
              warm_shared=True, line_size=32),
)


@dataclass
class HarnessConfig:
    """What the differential harness sweeps per test."""

    models: Tuple[str, ...] = MODEL_NAMES
    techniques: Tuple[Tuple[bool, bool], ...] = TECHNIQUE_COMBOS
    run_configs: Tuple[RunConfig, ...] = DEFAULT_RUN_CONFIGS
    #: name of a registered fault to apply in the worker (tests only)
    fault: Optional[str] = None
    #: which oracle legs to run: "sim", "axiomatic", or "all"
    oracle: str = "all"
    #: simulator-leg execution backend: "scalar" or "batched"
    backend: str = "scalar"
    #: ``"host:port"`` of a running ``repro.serve`` job server; when
    #: set, the simulator legs are submitted there (and answered from
    #: its content-addressed cache) instead of running in-process
    server: Optional[str] = None


@dataclass(frozen=True)
class Divergence:
    """One observed outcome outside an oracle's permitted set.

    ``oracle`` names the reference set the outcome fell outside:
    ``"enumerator"`` (also outside the axiomatic set when both legs
    agree) or ``"axiomatic"`` (inside the enumerator's set but outside
    the axiomatic one — only possible while the static oracles
    themselves disagree).
    """

    test_name: str
    model: str
    prefetch: bool
    speculation: bool
    config_name: str
    observed: Outcome
    permitted_count: int
    oracle: str = "enumerator"

    def describe(self) -> str:
        tech = (f"prefetch={'on' if self.prefetch else 'off'} "
                f"speculation={'on' if self.speculation else 'off'}")
        obs = ", ".join(f"{reg}={val}" for reg, val in self.observed)
        return (f"{self.test_name} under {self.model} [{tech}, "
                f"{self.config_name}]: observed ({obs}) is outside the "
                f"{self.permitted_count} permitted outcome(s) "
                f"of the {self.oracle} oracle")


@dataclass(frozen=True)
class OracleDisagreement:
    """The two static oracles disagree on one (test, model).

    ``missing`` outcomes are permitted by the interleaving enumerator
    but rejected by the axioms; ``extra`` outcomes are admitted by the
    axioms but never reached by the enumerator.  Either is a bug in
    one of the two implementations — the sets are provably equal.
    """

    test_name: str
    model: str
    missing: Tuple[Outcome, ...]
    extra: Tuple[Outcome, ...]

    def describe(self) -> str:
        def fmt(outcomes: Tuple[Outcome, ...]) -> str:
            return "; ".join(
                "(" + ", ".join(f"{r}={v}" for r, v in o) + ")"
                for o in outcomes) or "none"
        return (f"{self.test_name} under {self.model}: axiomatic and "
                f"enumerated outcome sets differ — missing {fmt(self.missing)}"
                f" / extra {fmt(self.extra)}")


@dataclass
class CheckResult:
    """Everything one fuzz item produced (picklable)."""

    index: int
    seed: int
    test_name: str
    num_runs: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    oracle_disagreements: List[OracleDisagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.oracle_disagreements


# ----------------------------------------------------------------------
# Fault injection (the fuzzer's self-test)
# ----------------------------------------------------------------------

def _fault_slb_deaf() -> Callable[[], None]:
    """The speculative-load buffer ignores every coherence snoop.

    Speculative loads then retire stale values: the exact bug class
    Section 4.2's detection mechanism exists to prevent.
    """
    from ..core.speculation import SpeculativeLoadBuffer

    original = SpeculativeLoadBuffer.on_snoop
    SpeculativeLoadBuffer.on_snoop = (  # type: ignore[method-assign]
        lambda self, kind, line_addr: [])

    def undo() -> None:
        SpeculativeLoadBuffer.on_snoop = original  # type: ignore[method-assign]
    return undo


def _fault_slb_forgets_acquires() -> Callable[[], None]:
    """SLB entries never carry the ``acq`` bit, so loads retire before
    the ordering constraint they stand for is satisfied."""
    from ..core.speculation import SlbEntry

    original_init = SlbEntry.__init__

    def init(self, *args, **kwargs):  # type: ignore[no-untyped-def]
        original_init(self, *args, **kwargs)
        self.acq = False

    SlbEntry.__init__ = init  # type: ignore[method-assign]

    def undo() -> None:
        SlbEntry.__init__ = original_init  # type: ignore[method-assign]
    return undo


#: each fault applies a monkeypatch and returns an undo callable, so
#: the localizer can run clean reference legs in the same process
FAULTS = {
    "slb-deaf": _fault_slb_deaf,
    "slb-forgets-acquires": _fault_slb_forgets_acquires,
}

_applied_faults: Dict[str, Callable[[], None]] = {}


def apply_fault(name: str) -> None:
    """Apply a registered fault (idempotent, per-process)."""
    if name not in FAULTS:
        raise ConfigurationError(
            f"unknown fault {name!r}; available: {sorted(FAULTS)}")
    if name not in _applied_faults:
        _applied_faults[name] = FAULTS[name]()


def clear_faults() -> List[str]:
    """Undo every applied fault; returns their names (so a caller can
    re-apply after running clean reference legs)."""
    names = list(_applied_faults)
    for name in names:
        _applied_faults.pop(name)()
    return names


# ----------------------------------------------------------------------
# The differential check
# ----------------------------------------------------------------------

def observed_outcome(test: LitmusTest, model_name: str, prefetch: bool,
                     speculation: bool, run_config: RunConfig) -> Outcome:
    """Run the detailed machine once and read back the final registers."""
    model = get_model(model_name)
    addresses = test.addresses()
    skew = tuple(run_config.skew[t % len(run_config.skew)]
                 for t in range(len(test.threads)))
    programs, audit_map = test.to_programs(delays=skew)
    warm = []
    if run_config.warm_shared:
        warm = [(cpu, addr, False)
                for cpu in range(len(test.threads))
                for addr in addresses.values()]
    result = run_workload(
        programs,
        model=model,
        prefetch=prefetch,
        speculation=speculation,
        miss_latency=run_config.miss_latency,
        initial_memory={addr: 0 for addr in addresses.values()},
        warm_lines=warm,
        cache=CacheConfig(line_size=run_config.line_size),
        max_cycles=run_config.max_cycles,
    )
    return tuple(sorted(
        (reg, result.machine.read_word(slot))
        for reg, slot in audit_map.items()
    ))


def check_test(test: LitmusTest, config: HarnessConfig = HarnessConfig(),
               index: int = 0, seed: int = 0) -> CheckResult:
    """Differentially check one litmus test across the whole config axis.

    Depending on ``config.oracle`` this runs the static
    axiomatic-vs-enumerator crosscheck (``"axiomatic"``/``"all"``) and
    the simulator sweep (``"sim"``/``"all"``).  Pure-axiomatic mode
    never touches the simulator, so it fuzzes orders of magnitude more
    tests per second.
    """
    _validate(config)
    if config.fault is not None:
        apply_fault(config.fault)
    _tm().inc("verify/tests")
    out = CheckResult(index=index, seed=seed, test_name=test.name)
    reference, axiomatic = _static_oracles(test, config, out)
    if config.oracle in ("sim", "all"):
        legs = _sim_legs(config)
        if config.server is not None:
            outcomes = _server_outcomes(test, legs, config.server)
        else:
            outcomes = _observed_outcomes(test, legs, config.backend)
        _classify_outcomes(test, out, legs, outcomes, reference, axiomatic)
    return out


def _validate(config: HarnessConfig) -> None:
    if config.oracle not in ORACLE_MODES:
        raise ConfigurationError(
            f"unknown oracle mode {config.oracle!r}; "
            f"available: {ORACLE_MODES}")
    if config.backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {config.backend!r}; available: {BACKENDS}")
    if config.server is not None and config.fault is not None:
        # faults are in-process monkeypatches; a remote server never
        # sees them, so the combination would silently test nothing
        raise ConfigurationError(
            "fault injection is incompatible with --server: faults "
            "monkeypatch this process, not the job server")


def _static_oracles(
        test: LitmusTest, config: HarnessConfig, out: CheckResult,
) -> Tuple[Dict[str, FrozenSet[Outcome]], Dict[str, FrozenSet[Outcome]]]:
    """Run the static legs: enumerator always, axioms when selected.

    Returns the per-model permitted sets and appends any
    :class:`OracleDisagreement` onto ``out``.
    """
    reference: Dict[str, FrozenSet[Outcome]] = {}
    for model_name in config.models:
        reference[model_name] = test.outcomes(get_model(model_name))

    axiomatic: Dict[str, FrozenSet[Outcome]] = {}
    if config.oracle in ("axiomatic", "all"):
        from ..analysis.axiomatic import axiomatic_outcomes

        for model_name in config.models:
            axiomatic[model_name] = axiomatic_outcomes(
                test, get_model(model_name))
            if axiomatic[model_name] != reference[model_name]:
                out.oracle_disagreements.append(OracleDisagreement(
                    test_name=test.name,
                    model=model_name,
                    missing=tuple(sorted(
                        reference[model_name] - axiomatic[model_name])),
                    extra=tuple(sorted(
                        axiomatic[model_name] - reference[model_name])),
                ))
    return reference, axiomatic


def _sim_legs(config: HarnessConfig) -> List[Tuple[str, bool, bool, RunConfig]]:
    """The simulator sweep's (model, prefetch, speculation, config) axis."""
    return [(model_name, prefetch, speculation, run_config)
            for model_name in config.models
            for prefetch, speculation in config.techniques
            for run_config in config.run_configs]


def _classify_outcomes(test: LitmusTest, out: CheckResult,
                       legs: Sequence[Tuple[str, bool, bool, RunConfig]],
                       outcomes: Sequence[Outcome],
                       reference: Dict[str, FrozenSet[Outcome]],
                       axiomatic: Dict[str, FrozenSet[Outcome]]) -> None:
    """Check each observed outcome against the oracle sets."""
    tm = _tm()
    for (model_name, prefetch, speculation, run_config), observed in zip(
            legs, outcomes):
        permitted = reference[model_name]
        ax_permitted = axiomatic.get(model_name)
        out.num_runs += 1
        tm.inc("verify/legs")
        if observed not in permitted:
            tm.inc("verify/divergences", labels={"oracle": "enumerator"})
            out.divergences.append(Divergence(
                test_name=test.name,
                model=model_name,
                prefetch=prefetch,
                speculation=speculation,
                config_name=run_config.name,
                observed=observed,
                permitted_count=len(permitted),
                oracle="enumerator",
            ))
        elif ax_permitted is not None and observed not in ax_permitted:
            # only reachable while the static oracles disagree:
            # the simulator sided with the enumerator
            tm.inc("verify/divergences", labels={"oracle": "axiomatic"})
            out.divergences.append(Divergence(
                test_name=test.name,
                model=model_name,
                prefetch=prefetch,
                speculation=speculation,
                config_name=run_config.name,
                observed=observed,
                permitted_count=len(ax_permitted),
                oracle="axiomatic",
            ))


def _observed_outcomes(
        test: LitmusTest,
        legs: Sequence[Tuple[str, bool, bool, RunConfig]],
        backend: str) -> List[Outcome]:
    """Observed outcome per leg, in leg order, on the chosen backend.

    The batched path turns every leg into a :class:`BatchJob` and lets
    the :class:`~repro.sim.batch.runner.BatchRunner` step them in
    lockstep; legs outside the batch envelope (techniques on) fall back
    to the scalar kernel inside the runner, so the returned outcomes
    are identical to the scalar path's — only faster.  A lane that
    deadlocks raises the same :class:`~repro.sim.errors.DeadlockError`
    a scalar run would.
    """
    if backend == "scalar":
        return [observed_outcome(test, model_name, prefetch, speculation,
                                 run_config)
                for model_name, prefetch, speculation, run_config in legs]
    if backend != "batched":
        raise ConfigurationError(
            f"unknown backend {backend!r}; available: {BACKENDS}")
    from ..sim.batch import BatchRunner

    jobs, audit_maps = _legs_to_jobs(test, legs)
    return [_job_outcome(res, audit_map)
            for res, audit_map in zip(BatchRunner().run(jobs), audit_maps)]


def _legs_to_jobs(
        test: LitmusTest,
        legs: Sequence[Tuple[str, bool, bool, RunConfig]],
) -> Tuple[List[object], List[Dict[str, int]]]:
    """One :class:`~repro.sim.batch.jobs.BatchJob` (plus its audit map)
    per leg, mirroring :func:`observed_outcome`'s setup exactly."""
    from ..sim.batch import BatchJob

    addresses = test.addresses()
    nthreads = len(test.threads)
    initial_memory = {addr: 0 for addr in addresses.values()}
    programs_by_skew: Dict[Tuple[int, ...], tuple] = {}
    jobs: List[object] = []
    audit_maps: List[Dict[str, int]] = []
    for model_name, prefetch, speculation, run_config in legs:
        skew = tuple(run_config.skew[t % len(run_config.skew)]
                     for t in range(nthreads))
        cached = programs_by_skew.get(skew)
        if cached is None:
            # program objects are shared across models/techniques so the
            # runner's per-program compile memoization can kick in
            cached = programs_by_skew[skew] = test.to_programs(delays=skew)
        programs, audit_map = cached
        warm: Tuple[Tuple[int, int, bool], ...] = ()
        if run_config.warm_shared:
            warm = tuple((cpu, addr, False)
                         for cpu in range(nthreads)
                         for addr in addresses.values())
        jobs.append(BatchJob(
            programs=programs,
            model_name=model_name,
            prefetch=prefetch,
            speculation=speculation,
            miss_latency=run_config.miss_latency,
            initial_memory=initial_memory,
            warm_lines=warm,
            cache=CacheConfig(line_size=run_config.line_size),
            max_cycles=run_config.max_cycles,
        ))
        audit_maps.append(audit_map)
    return jobs, audit_maps


def _server_outcomes(
        test: LitmusTest,
        legs: Sequence[Tuple[str, bool, bool, RunConfig]],
        server: str) -> List[Outcome]:
    """Observed outcome per leg, submitted to a ``repro.serve`` server.

    Each leg becomes one protocol job carrying the test inline (the
    corpus serialization), so the server needs no shared filesystem.
    The server's executors mirror :func:`observed_outcome`'s setup
    exactly and determinism is pinned, so these outcomes are
    bit-identical to in-process runs — repeated legs (the fuzzer
    resubmitting a seed, overlapping sweeps) come back from the
    content-addressed cache without touching a simulator.  The client
    connection is cached per (process, endpoint): sweep worker
    processes each dial their own.
    """
    from ..serve.client import parse_endpoint, shared_client
    from .corpus import litmus_to_dict

    host, port = parse_endpoint(server)
    client = shared_client(host, port)
    litmus = litmus_to_dict(test)
    jobs = [{
        "test": {"litmus": litmus},
        "model": model_name,
        "prefetch": prefetch,
        "speculation": speculation,
        "run_config": {
            "miss_latency": run_config.miss_latency,
            "skew": list(run_config.skew),
            "warm_shared": run_config.warm_shared,
            "line_size": run_config.line_size,
            "max_cycles": run_config.max_cycles,
        },
    } for model_name, prefetch, speculation, run_config in legs]
    outcomes: List[Outcome] = []
    for result in client.submit_many(jobs):
        if not result.ok:
            raise RuntimeError(f"server-side leg failed: {result.error}")
        outcomes.append(result.outcome())
    return outcomes


def _job_outcome(res, audit_map: Dict[str, int]) -> Outcome:
    """Read one job's final registers (raising what a scalar run would)."""
    res.raise_if_error()
    return tuple(sorted(
        (reg, res.read_word(slot)) for reg, slot in audit_map.items()))


def divergence_reproduces(test: LitmusTest,
                          config: HarnessConfig = HarnessConfig()) -> bool:
    """Does *any* divergence show up for this test?  (Minimizer oracle.)"""
    return not check_test(test, config).ok


# ----------------------------------------------------------------------
# Sweep-engine worker
# ----------------------------------------------------------------------

def check_seed(item: Tuple[int, int, Dict[str, object]]) -> CheckResult:
    """Fuzz one derived seed: generate, then differentially check.

    ``item`` is ``(index, derived_seed, options)`` where ``options``
    may carry ``"generator"`` (a :class:`GeneratorConfig` dict) and
    ``"fault"`` (a registered fault name).  Everything is plain data so
    the sweep engine can ship items to worker processes.
    """
    from .generator import GeneratorConfig, generate_litmus

    index, seed, options = item
    gen_config = GeneratorConfig.from_dict(
        dict(options.get("generator", {})))  # type: ignore[arg-type]
    harness = HarnessConfig(
        fault=options.get("fault"),  # type: ignore[arg-type]
        oracle=str(options.get("oracle", "all")),
        backend=str(options.get("backend", "scalar")),
        server=options.get("server"),  # type: ignore[arg-type]
    )
    test = generate_litmus(seed, gen_config)
    return check_test(test, harness, index=index, seed=seed)


def check_seed_chunk(
        items: Sequence[Tuple[int, int, Dict[str, object]]]) -> List[object]:
    """Chunk-level fuzz worker: one lockstep batch across *every* test.

    :func:`check_seed` with ``backend="batched"`` only batches the legs
    of a single test (typically 16 lanes) — too few for the SoA engine
    to amortize its per-step vector cost.  This worker instead collects
    the simulator legs of an entire sweep chunk into **one**
    :class:`~repro.sim.batch.runner.BatchRunner` call (hundreds to
    thousands of lanes), which is where the batched engine's throughput
    comes from.  Results are per-item :class:`CheckResult` objects in
    item order, with per-item failures recorded as
    :class:`~repro.sim.sweep.SweepError` slots — exactly what
    ``run_sweep(..., chunk_worker=check_seed_chunk, on_error="record")``
    expects.
    """
    from ..sim.batch import BatchRunner
    from ..sim.sweep import SweepError
    from .generator import GeneratorConfig, generate_litmus

    tm = _tm()
    results: List[object] = []
    all_jobs: List[object] = []
    # (slot, test, out, legs, audit_maps, reference, axiomatic, job_lo)
    pending: List[tuple] = []
    with tm.span("verify/seed_chunk", {"items": len(items)}) as chunk_args:
        for item in items:
            index, seed, options = item
            try:
                gen_config = GeneratorConfig.from_dict(
                    dict(options.get("generator", {})))  # type: ignore[arg-type]
                harness = HarnessConfig(
                    fault=options.get("fault"),  # type: ignore[arg-type]
                    oracle=str(options.get("oracle", "all")),
                    backend="batched",
                )
                _validate(harness)
                if harness.fault is not None:
                    apply_fault(harness.fault)
                test = generate_litmus(seed, gen_config)
                tm.inc("verify/tests")
                out = CheckResult(index=index, seed=seed, test_name=test.name)
                reference, axiomatic = _static_oracles(test, harness, out)
                results.append(out)
                if harness.oracle in ("sim", "all"):
                    legs = _sim_legs(harness)
                    jobs, audit_maps = _legs_to_jobs(test, legs)
                    pending.append((len(results) - 1, test, out, legs,
                                    audit_maps, reference, axiomatic,
                                    len(all_jobs)))
                    all_jobs.extend(jobs)
            except Exception as exc:  # noqa: BLE001 - mirrors _run_chunk
                results.append(SweepError(item_index=index,
                                          error_type=type(exc).__name__,
                                          message=str(exc)))
        chunk_args["lanes"] = len(all_jobs)

        batch_results = BatchRunner().run(all_jobs) if all_jobs else []
    for (slot, test, out, legs, audit_maps, reference, axiomatic,
         job_lo) in pending:
        try:
            outcomes = [
                _job_outcome(res, audit_map)
                for res, audit_map in zip(
                    batch_results[job_lo:job_lo + len(legs)], audit_maps)]
            _classify_outcomes(test, out, legs, outcomes, reference,
                               axiomatic)
        except Exception as exc:  # noqa: BLE001 - per-item containment
            results[slot] = SweepError(item_index=out.index,
                                       error_type=type(exc).__name__,
                                       message=str(exc))
    return results


def check_named(item: Tuple[int, str, Dict[str, object]]) -> CheckResult:
    """Check one *named* suite test: ``(index, test_name, options)``.

    The sweep-engine sibling of :func:`check_seed` for
    ``python -m repro.verify --suite`` — same options dict, but the
    test comes from :data:`STANDARD_TESTS` instead of the generator.
    """
    from ..consistency.litmus import STANDARD_TESTS

    index, name, options = item
    if name not in STANDARD_TESTS:
        raise ConfigurationError(
            f"unknown litmus test {name!r}; available: "
            f"{sorted(STANDARD_TESTS)}")
    harness = HarnessConfig(
        fault=options.get("fault"),  # type: ignore[arg-type]
        oracle=str(options.get("oracle", "all")),
        backend=str(options.get("backend", "scalar")),
        server=options.get("server"),  # type: ignore[arg-type]
    )
    return check_test(STANDARD_TESTS[name](), harness, index=index, seed=0)

"""Differential conformance checking: detailed machine vs litmus reference.

The paper's central claim is that prefetching and speculative loads
are *invisible* to the consistency model.  The harness checks exactly
that, mechanically: for a litmus test the reference semantics
(exhaustive linearization under the model's delay arcs, Section 2's
write-atomicity assumption) yields the set of permitted final register
states; every outcome the detailed simulator actually produces — under
any technique combination, cache geometry, or thread-start skew —
must be a member of that set.

``check_seed`` is the sweep-engine worker: a picklable item in, a
picklable :class:`CheckResult` out, so fuzzing parallelizes across
processes.  A small **fault registry** can deliberately break the
speculative-load buffer inside the worker process; the fuzzer finding
those mutations proves the harness has teeth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..consistency.litmus import LitmusTest, Outcome
from ..consistency.models import get_model
from ..memory.types import CacheConfig
from ..sim.errors import ConfigurationError
from ..system.machine import run_workload

#: the four models the paper discusses, by name (names pickle smaller
#: and more robustly than model instances)
MODEL_NAMES: Tuple[str, ...] = ("SC", "PC", "WC", "RC")

#: (prefetch, speculation) combinations the harness drives
TECHNIQUE_COMBOS: Tuple[Tuple[bool, bool], ...] = (
    (False, False),
    (True, False),
    (False, True),
    (True, True),
)


@dataclass(frozen=True)
class RunConfig:
    """One machine/environment configuration for a litmus run."""

    name: str
    miss_latency: int = 40
    #: per-thread start-time skews (indexed modulo thread count)
    skew: Tuple[int, ...] = (0,)
    #: pre-install every shared litmus line SHARED in every cache, so
    #: loads hit (and perform early) while stores still pay the
    #: ownership latency — the widest reordering window
    warm_shared: bool = True
    line_size: int = 4
    max_cycles: int = 400_000


#: default configuration axis: contention windows of different shapes,
#: plus a false-sharing geometry (footnote 2: litmus locations x/y/data
#: share one 32-word line, so conservative line-granular detection fires)
DEFAULT_RUN_CONFIGS: Tuple[RunConfig, ...] = (
    RunConfig(name="warm-tight", miss_latency=40, skew=(0, 0), warm_shared=True),
    RunConfig(name="warm-skewed", miss_latency=40, skew=(0, 40, 7, 23),
              warm_shared=True),
    RunConfig(name="cold-skewed", miss_latency=20, skew=(13, 0, 29, 5),
              warm_shared=False),
    RunConfig(name="false-sharing", miss_latency=40, skew=(0, 11, 3, 17),
              warm_shared=True, line_size=32),
)


@dataclass
class HarnessConfig:
    """What the differential harness sweeps per test."""

    models: Tuple[str, ...] = MODEL_NAMES
    techniques: Tuple[Tuple[bool, bool], ...] = TECHNIQUE_COMBOS
    run_configs: Tuple[RunConfig, ...] = DEFAULT_RUN_CONFIGS
    #: name of a registered fault to apply in the worker (tests only)
    fault: Optional[str] = None


@dataclass(frozen=True)
class Divergence:
    """One observed outcome outside the model's permitted set."""

    test_name: str
    model: str
    prefetch: bool
    speculation: bool
    config_name: str
    observed: Outcome
    permitted_count: int

    def describe(self) -> str:
        tech = (f"prefetch={'on' if self.prefetch else 'off'} "
                f"speculation={'on' if self.speculation else 'off'}")
        obs = ", ".join(f"{reg}={val}" for reg, val in self.observed)
        return (f"{self.test_name} under {self.model} [{tech}, "
                f"{self.config_name}]: observed ({obs}) is outside the "
                f"{self.permitted_count} permitted outcome(s)")


@dataclass
class CheckResult:
    """Everything one fuzz item produced (picklable)."""

    index: int
    seed: int
    test_name: str
    num_runs: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


# ----------------------------------------------------------------------
# Fault injection (the fuzzer's self-test)
# ----------------------------------------------------------------------

def _fault_slb_deaf() -> None:
    """The speculative-load buffer ignores every coherence snoop.

    Speculative loads then retire stale values: the exact bug class
    Section 4.2's detection mechanism exists to prevent.
    """
    from ..core.speculation import SpeculativeLoadBuffer

    SpeculativeLoadBuffer.on_snoop = (  # type: ignore[method-assign]
        lambda self, kind, line_addr: [])


def _fault_slb_forgets_acquires() -> None:
    """SLB entries never carry the ``acq`` bit, so loads retire before
    the ordering constraint they stand for is satisfied."""
    from ..core.speculation import SlbEntry

    original_init = SlbEntry.__init__

    def init(self, *args, **kwargs):  # type: ignore[no-untyped-def]
        original_init(self, *args, **kwargs)
        self.acq = False

    SlbEntry.__init__ = init  # type: ignore[method-assign]


FAULTS = {
    "slb-deaf": _fault_slb_deaf,
    "slb-forgets-acquires": _fault_slb_forgets_acquires,
}

_applied_faults: set = set()


def apply_fault(name: str) -> None:
    """Apply a registered fault (idempotent, per-process)."""
    if name not in FAULTS:
        raise ConfigurationError(
            f"unknown fault {name!r}; available: {sorted(FAULTS)}")
    if name not in _applied_faults:
        FAULTS[name]()
        _applied_faults.add(name)


# ----------------------------------------------------------------------
# The differential check
# ----------------------------------------------------------------------

def observed_outcome(test: LitmusTest, model_name: str, prefetch: bool,
                     speculation: bool, run_config: RunConfig) -> Outcome:
    """Run the detailed machine once and read back the final registers."""
    model = get_model(model_name)
    addresses = test.addresses()
    skew = tuple(run_config.skew[t % len(run_config.skew)]
                 for t in range(len(test.threads)))
    programs, audit_map = test.to_programs(delays=skew)
    warm = []
    if run_config.warm_shared:
        warm = [(cpu, addr, False)
                for cpu in range(len(test.threads))
                for addr in addresses.values()]
    result = run_workload(
        programs,
        model=model,
        prefetch=prefetch,
        speculation=speculation,
        miss_latency=run_config.miss_latency,
        initial_memory={addr: 0 for addr in addresses.values()},
        warm_lines=warm,
        cache=CacheConfig(line_size=run_config.line_size),
        max_cycles=run_config.max_cycles,
    )
    return tuple(sorted(
        (reg, result.machine.read_word(slot))
        for reg, slot in audit_map.items()
    ))


def check_test(test: LitmusTest, config: HarnessConfig = HarnessConfig(),
               index: int = 0, seed: int = 0) -> CheckResult:
    """Differentially check one litmus test across the whole config axis."""
    if config.fault is not None:
        apply_fault(config.fault)
    out = CheckResult(index=index, seed=seed, test_name=test.name)
    reference: Dict[str, FrozenSet[Outcome]] = {}
    for model_name in config.models:
        reference[model_name] = test.outcomes(get_model(model_name))
    for model_name in config.models:
        permitted = reference[model_name]
        for prefetch, speculation in config.techniques:
            for run_config in config.run_configs:
                observed = observed_outcome(test, model_name, prefetch,
                                            speculation, run_config)
                out.num_runs += 1
                if observed not in permitted:
                    out.divergences.append(Divergence(
                        test_name=test.name,
                        model=model_name,
                        prefetch=prefetch,
                        speculation=speculation,
                        config_name=run_config.name,
                        observed=observed,
                        permitted_count=len(permitted),
                    ))
    return out


def divergence_reproduces(test: LitmusTest,
                          config: HarnessConfig = HarnessConfig()) -> bool:
    """Does *any* divergence show up for this test?  (Minimizer oracle.)"""
    return not check_test(test, config).ok


# ----------------------------------------------------------------------
# Sweep-engine worker
# ----------------------------------------------------------------------

def check_seed(item: Tuple[int, int, Dict[str, object]]) -> CheckResult:
    """Fuzz one derived seed: generate, then differentially check.

    ``item`` is ``(index, derived_seed, options)`` where ``options``
    may carry ``"generator"`` (a :class:`GeneratorConfig` dict) and
    ``"fault"`` (a registered fault name).  Everything is plain data so
    the sweep engine can ship items to worker processes.
    """
    from .generator import GeneratorConfig, generate_litmus

    index, seed, options = item
    gen_config = GeneratorConfig.from_dict(
        dict(options.get("generator", {})))  # type: ignore[arg-type]
    harness = HarnessConfig(fault=options.get("fault"))  # type: ignore[arg-type]
    test = generate_litmus(seed, gen_config)
    return check_test(test, harness, index=index, seed=seed)

"""JSON corpus of fuzzing failures — serialization and replay.

Every divergence the fuzzer finds is recorded with enough information
to reproduce it without the generator: the master seed and item index
(for provenance), the full generated test, the minimized test, and the
divergences themselves.  ``python -m repro.verify --replay corpus.json``
re-checks every entry, so a fixed bug can be pinned as a regression.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..consistency.litmus import LitmusOp, LitmusTest
from .harness import Divergence, OracleDisagreement

#: bumped when the on-disk schema changes incompatibly; version-1
#: corpora (no oracle fields) and version-2 corpora (no localization)
#: still load — the new fields default
CORPUS_VERSION = 3


def litmus_to_dict(test: LitmusTest) -> Dict[str, object]:
    """Plain-data form of a litmus test (inverse of :func:`litmus_from_dict`)."""
    return {
        "name": test.name,
        "threads": [
            [{"op": op.op, "addr": op.addr, "reg": op.reg,
              "value": op.value, "acquire": op.acquire,
              "release": op.release}
             for op in thread]
            for thread in test.threads
        ],
        "initial": dict(test.initial),
    }


def litmus_from_dict(data: Dict[str, object]) -> LitmusTest:
    threads = [
        [LitmusOp(**op) for op in thread]  # type: ignore[arg-type]
        for thread in data["threads"]  # type: ignore[union-attr]
    ]
    initial = {str(k): int(v)  # type: ignore[call-overload]
               for k, v in dict(data.get("initial", {})).items()}  # type: ignore[arg-type]
    return LitmusTest(name=str(data.get("name", "corpus")), threads=threads,
                      initial=initial)


@dataclass
class CorpusEntry:
    """One recorded failure, replayable without the generator."""

    master_seed: int
    index: int
    derived_seed: int
    test: Dict[str, object]
    divergences: List[Dict[str, object]]
    minimized: Optional[Dict[str, object]] = None
    fault: Optional[str] = None
    oracle: str = "all"
    oracle_disagreements: List[Dict[str, object]] = field(default_factory=list)
    #: serialized LocalizationResult (verify --localize): archtrace
    #: diff reports pinning the first divergent architectural event
    localization: Optional[Dict[str, object]] = None

    def litmus(self) -> LitmusTest:
        return litmus_from_dict(self.test)

    def minimized_litmus(self) -> LitmusTest:
        return litmus_from_dict(self.minimized or self.test)


def divergence_to_dict(div: Divergence) -> Dict[str, object]:
    data = asdict(div)
    data["observed"] = [list(pair) for pair in div.observed]
    return data


def disagreement_to_dict(dis: OracleDisagreement) -> Dict[str, object]:
    data = asdict(dis)
    data["missing"] = [[list(pair) for pair in o] for o in dis.missing]
    data["extra"] = [[list(pair) for pair in o] for o in dis.extra]
    return data


@dataclass
class Corpus:
    """A versioned collection of :class:`CorpusEntry` records."""

    entries: List[CorpusEntry] = field(default_factory=list)
    version: int = CORPUS_VERSION

    def add(self, entry: CorpusEntry) -> None:
        self.entries.append(entry)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": self.version,
            "entries": [asdict(entry) for entry in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Corpus":
        payload = json.loads(Path(path).read_text())
        entries = [CorpusEntry(**raw) for raw in payload.get("entries", [])]
        return cls(entries=entries, version=payload.get("version", 0))


def replay_corpus(path: Union[str, Path],
                  minimized: bool = True) -> Sequence["CorpusEntry"]:
    """Re-check every corpus entry; returns the entries that still fail.

    ``minimized`` picks which recorded form to replay.  Faults recorded
    with an entry are re-applied, so a corpus captured against a fault
    injection replays faithfully.
    """
    from .harness import HarnessConfig, divergence_reproduces

    corpus = Corpus.load(path)
    still_failing: List[CorpusEntry] = []
    for entry in corpus.entries:
        test = entry.minimized_litmus() if minimized else entry.litmus()
        config = HarnessConfig(fault=entry.fault, oracle=entry.oracle)
        if divergence_reproduces(test, config):
            still_failing.append(entry)
    return still_failing

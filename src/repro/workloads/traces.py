"""Memory-access traces: capture, storage, and trace-driven analysis.

Trace-driven simulation was the era's standard methodology (the
authors' companion paper [7] evaluates the techniques on traces of
parallel applications).  This module provides:

* :class:`TraceRecord` / :class:`AccessTrace` — a per-processor stream
  of shared-memory accesses with acquire/release annotations and value
  dependences;
* a plain-text serialization format (one record per line) so traces
  can be shipped and diffed;
* :func:`trace_from_program` — capture a trace by running the
  reference interpreter (addresses resolved, branches followed);
* :func:`trace_to_segment` — feed a trace to the analytical timing
  model, with hit/miss classification supplied by a simple
  direct-mapped filter model (or by the trace itself).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple, Union

from ..consistency.access_class import AccessClass
from ..core.timing import AccessSpec
from ..isa.instructions import Load, Rmw, Store
from ..isa.program import Program
from ..isa.registers import RegisterFile
from ..sim.errors import SimulationError


@dataclass(frozen=True)
class TraceRecord:
    """One shared-memory access in a trace."""

    op: str          # "R" (read), "W" (write), or "U" (read-modify-write)
    addr: int
    acquire: bool = False
    release: bool = False
    #: index of an earlier record whose *value* this access's address
    #: depends on (-1: none) — preserves pointer-chase structure
    depends_on: int = -1

    def __post_init__(self) -> None:
        if self.op not in ("R", "W", "U"):
            raise SimulationError(f"trace op must be R/W/U, got {self.op!r}")

    def access_class(self) -> AccessClass:
        return AccessClass(
            is_load=self.op in ("R", "U"),
            is_store=self.op in ("W", "U"),
            acquire=self.acquire,
            release=self.release,
        )

    def to_line(self) -> str:
        flags = ("a" if self.acquire else "") + ("r" if self.release else "")
        dep = f" @{self.depends_on}" if self.depends_on >= 0 else ""
        return f"{self.op} {self.addr:#x} {flags or '-'}{dep}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        parts = line.split()
        if len(parts) < 3:
            raise SimulationError(f"malformed trace line {line!r}")
        op, addr_text, flags = parts[0], parts[1], parts[2]
        depends_on = -1
        if len(parts) > 3:
            if not parts[3].startswith("@"):
                raise SimulationError(f"malformed dependence in {line!r}")
            depends_on = int(parts[3][1:])
        return cls(
            op=op,
            addr=int(addr_text, 0),
            acquire="a" in flags,
            release="r" in flags,
            depends_on=depends_on,
        )


@dataclass
class AccessTrace:
    """A named, ordered stream of :class:`TraceRecord`."""

    name: str
    records: List[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def append(self, record: TraceRecord) -> None:
        if record.depends_on >= len(self.records):
            raise SimulationError(
                f"record depends on future index {record.depends_on}"
            )
        self.records.append(record)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def dump(self, fh: TextIO) -> None:
        fh.write(f"# trace {self.name}\n")
        for record in self.records:
            fh.write(record.to_line() + "\n")

    def dumps(self) -> str:
        buf = io.StringIO()
        self.dump(buf)
        return buf.getvalue()

    @classmethod
    def load(cls, fh: Union[TextIO, str]) -> "AccessTrace":
        if isinstance(fh, str):
            fh = io.StringIO(fh)
        name = "trace"
        records: List[TraceRecord] = []
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# trace "):
                    name = line[len("# trace "):].strip()
                continue
            records.append(TraceRecord.from_line(line))
        trace = cls(name=name)
        for record in records:
            trace.append(record)
        return trace

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "accesses": len(self.records),
            "reads": sum(1 for r in self.records if r.op == "R"),
            "writes": sum(1 for r in self.records if r.op == "W"),
            "rmws": sum(1 for r in self.records if r.op == "U"),
            "acquires": sum(1 for r in self.records if r.acquire),
            "releases": sum(1 for r in self.records if r.release),
            "dependent": sum(1 for r in self.records if r.depends_on >= 0),
        }


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------

def trace_from_program(
    program: Program,
    initial_memory: Optional[Dict[int, int]] = None,
    name: str = "trace",
    max_steps: int = 200_000,
) -> AccessTrace:
    """Execute ``program`` with the reference semantics and record every
    shared-memory access, with resolved addresses.

    Address dependences are recovered by tracking which load most
    recently produced each register value used in an address.
    """
    memory: Dict[int, int] = dict(initial_memory or {})
    regs = RegisterFile()
    #: register -> trace index of the load that produced its value
    producer: Dict[str, int] = {}
    trace = AccessTrace(name=name)
    pc = 0
    steps = 0
    while True:
        instr = program.at(pc)
        if instr is None:
            break
        steps += 1
        if steps > max_steps:
            raise SimulationError("trace capture exceeded max_steps")
        kind = type(instr).__name__
        if kind == "Halt":
            break
        if isinstance(instr, Load):
            addr = regs.read(instr.base) + instr.offset
            dep = producer.get(instr.base, -1) if instr.base != "r0" else -1
            trace.append(TraceRecord("R", addr, acquire=instr.acquire,
                                     depends_on=dep))
            regs.write(instr.dst, memory.get(addr, 0))
            producer[instr.dst] = len(trace.records) - 1
            pc += 1
        elif isinstance(instr, Store):
            addr = regs.read(instr.base) + instr.offset
            dep = producer.get(instr.base, -1) if instr.base != "r0" else -1
            trace.append(TraceRecord("W", addr, release=instr.release,
                                     depends_on=dep))
            memory[addr] = regs.read(instr.src)
            pc += 1
        elif isinstance(instr, Rmw):
            addr = regs.read(instr.base) + instr.offset
            dep = producer.get(instr.base, -1) if instr.base != "r0" else -1
            trace.append(TraceRecord("U", addr, acquire=instr.acquire,
                                     release=instr.release, depends_on=dep))
            old = memory.get(addr, 0)
            memory[addr] = instr.new_value(old, regs.read(instr.src))
            regs.write(instr.dst, old)
            producer[instr.dst] = len(trace.records) - 1
            pc += 1
        else:
            # compute / control flow: execute via the shared semantics
            from ..isa.instructions import Alu, Branch, Jump

            if isinstance(instr, Alu):
                a = regs.read(instr.src1)
                b = (regs.read(instr.src2) if instr.src2 is not None
                     else (instr.imm or 0))
                regs.write(instr.dst, instr.compute(a, b))
                # a value derived from a load keeps its dependence
                if instr.src1 in producer:
                    producer[instr.dst] = producer[instr.src1]
                elif instr.src2 in producer:
                    producer[instr.dst] = producer[instr.src2]
                else:
                    producer.pop(instr.dst, None)
                pc += 1
            elif isinstance(instr, Branch):
                taken = instr.outcome(regs.read(instr.cond))
                pc = program.target_pc(instr.target) if taken else pc + 1
            elif isinstance(instr, Jump):
                pc = program.target_pc(instr.target)
            else:  # Nop, SoftwarePrefetch
                pc += 1
    return trace


# ----------------------------------------------------------------------
# Trace-driven analysis
# ----------------------------------------------------------------------

class DirectMappedFilter:
    """A tiny direct-mapped cache filter classifying hits vs misses."""

    def __init__(self, num_sets: int = 64, line_size: int = 4) -> None:
        self.num_sets = num_sets
        self.line_size = line_size
        self._tags: Dict[int, int] = {}

    def access(self, addr: int) -> bool:
        """Record the access; return True on a hit."""
        line = addr // self.line_size
        idx = line % self.num_sets
        hit = self._tags.get(idx) == line
        self._tags[idx] = line
        return hit


def trace_to_segment(
    trace: AccessTrace,
    hit_filter: Optional[DirectMappedFilter] = None,
) -> List[AccessSpec]:
    """Convert a trace into an analytical-model segment.

    Hits/misses come from replaying the trace through ``hit_filter``
    (default: a fresh 64-set direct-mapped filter — i.e. a cold cache).
    """
    if hit_filter is None:
        hit_filter = DirectMappedFilter()
    labels: List[str] = []
    segment: List[AccessSpec] = []
    for i, record in enumerate(trace.records):
        label = f"t{i}"
        labels.append(label)
        deps: Tuple[str, ...] = ()
        if record.depends_on >= 0:
            deps = (labels[record.depends_on],)
        segment.append(AccessSpec(
            label=label,
            klass=record.access_class(),
            hit=hit_filter.access(record.addr),
            deps=deps,
        ))
    return segment

"""Mini-application kernels.

The authors' companion evaluation (Gharachorloo, Gupta & Hennessy,
ASPLOS 1991 — reference [7]) measured the techniques on parallel
applications.  These are miniature kernels in that spirit, written in
the repository's ISA and fully checkable against the reference
interpreter:

* **grid relaxation** — each CPU sweeps a strip of a 1-D grid,
  averaging neighbours, with barrier-separated phases (the boundary
  exchange makes consistency visible);
* **work queue** — a lock-protected shared queue: a producer enqueues
  task indices, consumers dequeue and process them (lock hand-off +
  irregular sharing);
* **reduction tree** — each CPU computes a local sum, then pairwise
  combination up a tree using flag synchronization (release/acquire
  chains of increasing span).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..isa.program import Program, ProgramBuilder
from .synthetic import MultiprocessorWorkload

GRID_BASE = 0x2000
GRID_SCRATCH = 0x3000
QUEUE_BASE = 0x4000
REDUCE_BASE = 0x5000
SYNC_BASE = 0x6000


# ----------------------------------------------------------------------
# Grid relaxation
# ----------------------------------------------------------------------

def grid_relaxation_workload(
    num_cpus: int = 2,
    cells_per_cpu: int = 3,
    phases: int = 2,
) -> MultiprocessorWorkload:
    """Jacobi-style averaging over a shared 1-D grid.

    Each phase: every CPU reads its strip plus the neighbouring halo
    cells, writes ``(left + right) // 1`` (sum, to stay integral) into
    a scratch strip, crosses a barrier, copies scratch back, and
    crosses a second barrier.  Expected results are computed with the
    same arithmetic in plain Python.
    """
    n = num_cpus * cells_per_cpu

    def cell(i: int) -> int:
        return GRID_BASE + 4 * i

    def scratch(i: int) -> int:
        return GRID_SCRATCH + 4 * i

    count_addr, gen_addr = SYNC_BASE, SYNC_BASE + 4

    programs: List[Program] = []
    for cpu in range(num_cpus):
        lo = cpu * cells_per_cpu
        hi = lo + cells_per_cpu
        b = ProgramBuilder()
        for _phase in range(phases):
            for i in range(lo, hi):
                left = cell((i - 1) % n)
                right = cell((i + 1) % n)
                b.load("r1", addr=left, tag=f"ld L{i}")
                b.load("r2", addr=right, tag=f"ld R{i}")
                b.add("r3", "r1", "r2")
                b.store("r3", addr=scratch(i), tag=f"st S{i}")
            b.barrier(count_addr=count_addr, gen_addr=gen_addr,
                      num_cpus=num_cpus)
            for i in range(lo, hi):
                b.load("r1", addr=scratch(i))
                b.store("r1", addr=cell(i), tag=f"st G{i}")
            b.barrier(count_addr=count_addr, gen_addr=gen_addr,
                      num_cpus=num_cpus)
        programs.append(b.build())

    # reference computation
    grid = [i + 1 for i in range(n)]
    memory: Dict[int, int] = {cell(i): grid[i] for i in range(n)}
    memory[count_addr] = 0
    memory[gen_addr] = 0
    ref = list(grid)
    for _ in range(phases):
        ref = [ref[(i - 1) % n] + ref[(i + 1) % n] for i in range(n)]
    return MultiprocessorWorkload(
        name=f"grid-{num_cpus}x{cells_per_cpu}x{phases}",
        programs=programs,
        initial_memory=memory,
        expectations=[(cell(i), ref[i]) for i in range(n)],
    )


# ----------------------------------------------------------------------
# Work queue
# ----------------------------------------------------------------------

def work_queue_workload(
    num_consumers: int = 2,
    num_tasks: int = 4,
) -> MultiprocessorWorkload:
    """A lock-protected shared work queue.

    The queue is pre-filled with task values; ``head`` indexes the next
    task.  Each consumer loops: lock; ``i = head``; if ``i >= tasks``
    unlock and exit, else ``head = i + 1``; unlock; process task ``i``
    (write ``task_value * 2`` into the result slot).  Every task must
    be processed exactly once, whichever consumer wins it.
    """
    lock = QUEUE_BASE
    head = QUEUE_BASE + 4
    task = lambda i: QUEUE_BASE + 8 + 4 * i
    result = lambda i: QUEUE_BASE + 8 + 4 * (num_tasks + i)

    programs: List[Program] = []
    for _cpu in range(num_consumers):
        b = ProgramBuilder()
        b.label("loop")
        b.lock(addr=lock)
        b.load("r1", addr=head, tag="head")
        b.alu("slt", "r2", "r1", imm=num_tasks)   # r2 = head < tasks
        b.branch_zero("r2", "drained", predict_taken=False)
        b.add_imm("r3", "r1", 1)
        b.store("r3", addr=head, tag="bump head")
        b.unlock(addr=lock)
        # process task r1: result[r1] = task[r1] * 2
        b.alu("mul", "r4", "r1", imm=4)
        b.load("r5", base="r4", addr=task(0), tag="task")
        b.alu("mul", "r5", "r5", imm=2)
        b.store("r5", base="r4", addr=result(0), tag="result")
        b.jump("loop")
        b.label("drained")
        b.unlock(addr=lock)
        programs.append(b.build())

    memory: Dict[int, int] = {lock: 0, head: 0}
    for i in range(num_tasks):
        memory[task(i)] = 10 + i
        memory[result(i)] = 0
    return MultiprocessorWorkload(
        name=f"workqueue-{num_consumers}x{num_tasks}",
        programs=programs,
        initial_memory=memory,
        expectations=[(result(i), 2 * (10 + i)) for i in range(num_tasks)]
                     + [(head, num_tasks)],
    )


# ----------------------------------------------------------------------
# Reduction tree
# ----------------------------------------------------------------------

def reduction_workload(
    num_cpus: int = 4,
    values_per_cpu: int = 2,
) -> MultiprocessorWorkload:
    """A binary combining tree with flag-based hand-offs.

    Each CPU sums ``values_per_cpu`` private inputs into its slot and
    releases a flag.  At level k, CPU ``i`` (multiple of 2^(k+1))
    acquires its partner's flag, adds the partner's partial sum, and
    releases the next-level flag.  CPU 0 publishes the grand total.
    """
    if num_cpus & (num_cpus - 1):
        raise ValueError("reduction tree needs a power-of-two CPU count")

    value = lambda cpu, j: REDUCE_BASE + 4 * (cpu * values_per_cpu + j)
    partial = lambda cpu: REDUCE_BASE + 0x100 + 4 * cpu
    flag = lambda cpu, level: REDUCE_BASE + 0x200 + 4 * (level * num_cpus + cpu)
    total_addr = REDUCE_BASE + 0x300

    levels = num_cpus.bit_length() - 1
    programs: List[Program] = []
    for cpu in range(num_cpus):
        b = ProgramBuilder()
        b.mov_imm("r1", 0)
        for j in range(values_per_cpu):
            b.load("r2", addr=value(cpu, j), tag=f"in{j}")
            b.add("r1", "r1", "r2")
        b.store("r1", addr=partial(cpu), tag="partial")
        b.release_store_imm(1, addr=flag(cpu, 0), tag="flag0")
        for level in range(levels):
            stride = 1 << level
            if cpu % (2 * stride) == 0:
                partner = cpu + stride
                b.spin_until_set(addr=flag(partner, level),
                                 tag=f"wait p{partner} l{level}")
                b.load("r2", addr=partial(partner), tag=f"peer l{level}")
                b.add("r1", "r1", "r2")
                b.store("r1", addr=partial(cpu))
                b.release_store_imm(1, addr=flag(cpu, level + 1),
                                    tag=f"flag{level + 1}")
            else:
                break  # this CPU's job ended at its last release
        if cpu == 0:
            b.store("r1", addr=total_addr, tag="total")
        programs.append(b.build())

    memory: Dict[int, int] = {total_addr: 0}
    expected_total = 0
    for cpu in range(num_cpus):
        for j in range(values_per_cpu):
            v = cpu * 10 + j + 1
            memory[value(cpu, j)] = v
            expected_total += v
        memory[partial(cpu)] = 0
        for level in range(levels + 1):
            memory[flag(cpu, level)] = 0
    return MultiprocessorWorkload(
        name=f"reduction-{num_cpus}x{values_per_cpu}",
        programs=programs,
        initial_memory=memory,
        expectations=[(total_addr, expected_total)],
    )

"""The Figure 5 scenario: speculative loads in action, with rollback.

Section 4.3 steps through ``read A; write B; write C; read D; read
E[D]`` under sequential consistency with speculative loads and store
prefetching, and shows the buffer contents at nine events — including
an invalidation for location D arriving after its (speculative) value
was consumed, which forces the load of D and everything after it to be
discarded and re-executed.

:func:`run_figure5` reproduces the scenario on the detailed simulator:
a scripted agent writes D at a configurable cycle, and the returned
:class:`Figure5Result` carries the recorded trace plus a digest of the
nine paper events found in it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..consistency.models import SC, ConsistencyModel
from ..memory.types import CacheConfig, LatencyConfig
from ..sim.trace import TraceRecorder
from ..system.machine import MachineConfig, Multiprocessor
from .paper_examples import A, B, C, D, E_BASE, figure5_program


@dataclass
class Figure5Result:
    cycles: int
    trace: TraceRecorder
    machine: Multiprocessor
    #: the paper's event digest, in order of occurrence
    events: List[str] = field(default_factory=list)

    def has_event(self, name: str) -> bool:
        return name in self.events

    def describe(self) -> str:
        lines = [f"Figure 5 scenario completed in {self.cycles} cycles."]
        lines.append("Events observed (paper's Section 4.3 sequence):")
        for i, ev in enumerate(self.events, 1):
            lines.append(f"  {i}. {ev}")
        return "\n".join(lines)


def run_figure5(
    inval_cycle: int = 5,
    new_d_value: int = 1,
    model: ConsistencyModel = SC,
    miss_latency: int = 100,
    max_cycles: int = 100_000,
) -> Figure5Result:
    """Run the Figure 5 code segment with a scripted invalidation of D.

    ``inval_cycle`` is when the remote write to D is launched; with the
    default latencies the invalidation reaches the processor after the
    speculative value of D has been consumed but while store C is still
    pending — exactly the window the paper illustrates.
    """
    wl = figure5_program()
    trace = TraceRecorder()
    config = MachineConfig(
        model=model,
        enable_prefetch=True,
        enable_speculation=True,
        latencies=LatencyConfig.from_miss_latency(miss_latency),
        cache=CacheConfig(),
    )
    machine = Multiprocessor([wl.program], config, trace=trace, extra_agents=1)
    memory = dict(wl.initial_memory)
    memory.setdefault(E_BASE + 0, 500)          # E[0]
    memory.setdefault(E_BASE + new_d_value, 700)  # E[new D]
    machine.init_memory(memory)
    for cpu, addr, exclusive in wl.warm_lines:
        machine.warm(cpu, addr, exclusive=exclusive)

    machine.agents[0].write_at(inval_cycle, D, new_d_value)
    cycles = machine.run(max_cycles=max_cycles)

    return Figure5Result(
        cycles=cycles,
        trace=trace,
        machine=machine,
        events=_digest_events(trace),
    )


def _digest_events(trace: TraceRecorder) -> List[str]:
    """Map the raw trace onto the paper's nine-event narrative."""
    events: List[str] = []

    def add(name: str) -> None:
        events.append(name)

    seen_prefetch = 0
    squashed = False
    d_reissued = False
    for ev in trace.events:
        if ev.kind == "prefetch" and ev.detail.get("exclusive"):
            seen_prefetch += 1
            if seen_prefetch == 2:
                add("exclusive prefetches issued for stores B and C")
        elif ev.kind == "load_issue" and ev.detail.get("tag") == "read A":
            add("speculative loads issued (read A first)")
        elif ev.kind == "load_complete" and ev.detail.get("tag") == "read A":
            add("value for A arrives")
        elif ev.kind == "store_complete" and ev.detail.get("tag") == "write B":
            add("write to B completes")
        elif ev.kind == "slb_squash" and not squashed:
            squashed = True
            add("invalidation for D arrives; load D and following discarded")
        elif (squashed and not d_reissued and ev.kind == "load_issue"
              and ev.detail.get("tag") == "read D"):
            d_reissued = True
            add("read of D is reissued")
        elif (d_reissued and ev.kind == "load_complete"
              and ev.detail.get("tag") == "read D"):
            add("new value for D arrives")
        elif (d_reissued and ev.kind == "load_complete"
              and ev.detail.get("tag") == "read E[D]"):
            add("value for E[D] arrives")
        elif ev.kind == "store_complete" and ev.detail.get("tag") == "write C":
            add("ownership for C arrives; write C completes")
        elif ev.kind == "finished":
            add("execution completes")
    return events

"""The paper's example code segments (Figure 2 and Figure 5).

Each example exists in two forms:

* an **access segment** (:class:`~repro.core.timing.AccessSpec` list)
  for the analytical timing model — this mirrors the paper's abstract
  accounting, where e.g. ``lock L`` is a single 100-cycle access;
* an **ISA program** plus warm-up / memory-image metadata for the
  detailed simulator.

Address map (word addresses, one location per cache line with the
default 4-word lines)::

    LOCK = 16,  A = 32,  B = 48,  C = 64,  D = 80,  E_BASE = 96

``read E[D]`` loads ``MEM[E_BASE + MEM[D]]``.  ``MEM[D]`` is initialized
to 0, so ``E[D]`` is word 96 — its own line, distinct from all others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..consistency.access_class import (
    ACQUIRE,
    ACQUIRE_RMW,
    PLAIN_LOAD,
    PLAIN_STORE,
    RELEASE,
)
from ..core.timing import AccessSpec
from ..isa.program import Program, ProgramBuilder

LOCK = 16
A = 32
B = 48
C = 64
D = 80
E_BASE = 96


@dataclass
class PaperWorkload:
    """A program plus the environment the paper assumes around it."""

    name: str
    program: Program
    #: (cpu, addr, exclusive) lines to pre-install so the paper's
    #: declared cache hits actually hit
    warm_lines: List[Tuple[int, int, bool]] = field(default_factory=list)
    initial_memory: Dict[int, int] = field(default_factory=dict)
    #: labels of the timed accesses, in program order
    access_tags: List[str] = field(default_factory=list)


# ----------------------------------------------------------------------
# Example 1 (Section 3.3, left): producer inside a critical section
# ----------------------------------------------------------------------

def example1_segment() -> List[AccessSpec]:
    """lock L (miss); write A (miss); write B (miss); unlock L (hit)."""
    return [
        AccessSpec("lock L", ACQUIRE, hit=False),
        AccessSpec("write A", PLAIN_STORE, hit=False),
        AccessSpec("write B", PLAIN_STORE, hit=False),
        AccessSpec("unlock L", RELEASE, hit=True),
    ]


def example1_program(realistic_lock: bool = False) -> PaperWorkload:
    b = ProgramBuilder()
    if realistic_lock:
        b.lock(addr=LOCK, tag="lock L")
    else:
        b.lock_optimistic(addr=LOCK, tag="lock L")
    b.store_imm(1, addr=A, tag="write A")
    b.store_imm(1, addr=B, tag="write B")
    b.unlock(addr=LOCK, tag="unlock L")
    return PaperWorkload(
        name="example1",
        program=b.build(),
        # the unlock hits "due to the fact that exclusive ownership was
        # gained by the previous lock access" — the lock RMW brings the
        # line in exclusively, so no warm-up is needed for the lock.
        warm_lines=[],
        initial_memory={LOCK: 0},
        access_tags=["lock L", "write A", "write B", "unlock L"],
    )


# ----------------------------------------------------------------------
# Example 2 (Sections 3.3/4.1, right): consumer reading locations
# ----------------------------------------------------------------------

def example2_segment() -> List[AccessSpec]:
    """lock L (miss); read C (miss); read D (hit); read E[D] (miss,
    address depends on D); unlock L (hit)."""
    return [
        AccessSpec("lock L", ACQUIRE, hit=False),
        AccessSpec("read C", PLAIN_LOAD, hit=False),
        AccessSpec("read D", PLAIN_LOAD, hit=True),
        AccessSpec("read E[D]", PLAIN_LOAD, hit=False, deps=("read D",)),
        AccessSpec("unlock L", RELEASE, hit=True),
    ]


def example2_program(realistic_lock: bool = False) -> PaperWorkload:
    b = ProgramBuilder()
    if realistic_lock:
        b.lock(addr=LOCK, tag="lock L")
    else:
        b.lock_optimistic(addr=LOCK, tag="lock L")
    b.load("r1", addr=C, tag="read C")
    b.load("r2", addr=D, tag="read D")
    b.load("r3", base="r2", addr=E_BASE, tag="read E[D]")
    b.unlock(addr=LOCK, tag="unlock L")
    return PaperWorkload(
        name="example2",
        program=b.build(),
        warm_lines=[(0, D, False)],
        initial_memory={LOCK: 0, D: 0},
        access_tags=["lock L", "read C", "read D", "read E[D]", "unlock L"],
    )


# ----------------------------------------------------------------------
# Figure 5 code segment (Section 4.3)
# ----------------------------------------------------------------------

def figure5_segment() -> List[AccessSpec]:
    """read A (miss); write B (miss); write C (miss); read D (hit);
    read E[D] (miss, depends on D)."""
    return [
        AccessSpec("read A", PLAIN_LOAD, hit=False),
        AccessSpec("write B", PLAIN_STORE, hit=False),
        AccessSpec("write C", PLAIN_STORE, hit=False),
        AccessSpec("read D", PLAIN_LOAD, hit=True),
        AccessSpec("read E[D]", PLAIN_LOAD, hit=False, deps=("read D",)),
    ]


def figure5_program() -> PaperWorkload:
    b = ProgramBuilder()
    b.load("r1", addr=A, tag="read A")
    b.store_imm(1, addr=B, tag="write B")
    b.store_imm(1, addr=C, tag="write C")
    b.load("r2", addr=D, tag="read D")
    b.load("r3", base="r2", addr=E_BASE, tag="read E[D]")
    return PaperWorkload(
        name="figure5",
        program=b.build(),
        warm_lines=[(0, D, False)],
        initial_memory={D: 0},
        access_tags=["read A", "write B", "write C", "read D", "read E[D]"],
    )


#: Expected totals from the paper, keyed (example, model, technique).
PAPER_CYCLE_COUNTS: Dict[Tuple[str, str, str], int] = {
    ("example1", "SC", "baseline"): 301,
    ("example1", "RC", "baseline"): 202,
    ("example1", "SC", "prefetch"): 103,
    ("example1", "RC", "prefetch"): 103,
    ("example2", "SC", "baseline"): 302,
    ("example2", "RC", "baseline"): 203,
    ("example2", "SC", "prefetch"): 203,
    ("example2", "RC", "prefetch"): 202,
    ("example2", "SC", "prefetch+speculation"): 104,
    ("example2", "RC", "prefetch+speculation"): 104,
}

"""Synthetic workload generators.

The paper defers "extensive simulation experiments" to future work; the
equalization claim (Section 5) is exercised here with parameterized
synthetic workloads in two forms:

* **segments** — :class:`~repro.core.timing.AccessSpec` lists for the
  analytical model, cheap enough for wide parameter sweeps;
* **programs** — ISA programs for the detailed simulator, including
  multi-processor critical-section and producer/consumer workloads
  with real lock contention and coherence traffic.

All generators take an explicit ``random.Random`` (or a seed) so every
experiment is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..consistency.access_class import (
    ACQUIRE,
    PLAIN_LOAD,
    PLAIN_STORE,
    RELEASE,
    AccessClass,
)
from ..core.timing import AccessSpec
from ..isa.program import Program, ProgramBuilder

RngLike = Union[int, random.Random]


def _rng(seed_or_rng: RngLike) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


# ----------------------------------------------------------------------
# Segment generators (analytical model)
# ----------------------------------------------------------------------

def critical_section_segment(
    reads: int = 2,
    writes: int = 2,
    hit_fraction: float = 0.0,
    dependent_reads: int = 0,
    rng: RngLike = 0,
) -> List[AccessSpec]:
    """A lock / body / unlock segment like the paper's Figure 2.

    ``dependent_reads`` of the reads form a pointer-chase chain (each
    depends on the previous read's value), which is the pattern where
    prefetching fails and speculation shines (Section 3.3).
    """
    r = _rng(rng)
    segment: List[AccessSpec] = [AccessSpec("lock", ACQUIRE, hit=False)]
    prev_read: Optional[str] = None
    for i in range(reads):
        hit = r.random() < hit_fraction
        deps: Tuple[str, ...] = ()
        if prev_read is not None and i <= dependent_reads:
            deps = (prev_read,)
        label = f"read{i}"
        segment.append(AccessSpec(label, PLAIN_LOAD, hit=hit, deps=deps))
        prev_read = label
    for i in range(writes):
        hit = r.random() < hit_fraction
        segment.append(AccessSpec(f"write{i}", PLAIN_STORE, hit=hit))
    segment.append(AccessSpec("unlock", RELEASE, hit=True))
    return segment


def random_segment(
    length: int = 20,
    write_fraction: float = 0.4,
    hit_fraction: float = 0.5,
    dependence_fraction: float = 0.2,
    sync_period: int = 0,
    rng: RngLike = 0,
) -> List[AccessSpec]:
    """A random straight-line access segment.

    ``sync_period`` > 0 inserts an acquire/release pair around every
    ``sync_period`` accesses, turning the segment into a sequence of
    critical sections.
    """
    r = _rng(rng)
    segment: List[AccessSpec] = []
    read_labels: List[str] = []
    lock_count = 0
    in_section = False
    for i in range(length):
        if sync_period > 0 and i % sync_period == 0:
            if in_section:
                segment.append(AccessSpec(f"rel{lock_count}", RELEASE, hit=True))
            lock_count += 1
            segment.append(AccessSpec(f"acq{lock_count}", ACQUIRE, hit=False))
            in_section = True
        hit = r.random() < hit_fraction
        if r.random() < write_fraction:
            segment.append(AccessSpec(f"w{i}", PLAIN_STORE, hit=hit))
        else:
            deps: Tuple[str, ...] = ()
            if read_labels and r.random() < dependence_fraction:
                deps = (r.choice(read_labels[-3:]),)
            label = f"r{i}"
            segment.append(AccessSpec(label, PLAIN_LOAD, hit=hit, deps=deps))
            read_labels.append(label)
    if in_section:
        segment.append(AccessSpec(f"rel{lock_count}", RELEASE, hit=True))
    return segment


def pointer_chase_segment(length: int = 6, hit_fraction: float = 0.0,
                          rng: RngLike = 0) -> List[AccessSpec]:
    """A chain of dependent loads — the speculation-critical pattern."""
    r = _rng(rng)
    segment: List[AccessSpec] = []
    prev: Optional[str] = None
    for i in range(length):
        label = f"chase{i}"
        deps = (prev,) if prev is not None else ()
        segment.append(AccessSpec(label, PLAIN_LOAD,
                                  hit=r.random() < hit_fraction, deps=deps))
        prev = label
    return segment


def producer_segment(writes: int = 4, hit_fraction: float = 0.0,
                     rng: RngLike = 0) -> List[AccessSpec]:
    """Produce data, then release a flag (Example-1 generalization)."""
    r = _rng(rng)
    segment = [AccessSpec(f"w{i}", PLAIN_STORE, hit=r.random() < hit_fraction)
               for i in range(writes)]
    segment.append(AccessSpec("flag", RELEASE, hit=True))
    return segment


# ----------------------------------------------------------------------
# Program generators (detailed simulator)
# ----------------------------------------------------------------------

#: address map used by the multiprocessor workloads (word addresses);
#: one location per line with the default 4-word lines
LOCK_BASE = 0x100
DATA_BASE = 0x200
FLAG_BASE = 0x400


@dataclass
class MultiprocessorWorkload:
    """Programs plus their memory image and a final-state validator."""

    name: str
    programs: List[Program]
    initial_memory: Dict[int, int]
    #: (addr, expected final value) checks
    expectations: List[Tuple[int, int]]


def critical_section_workload(
    num_cpus: int = 2,
    iterations: int = 2,
    shared_counters: int = 1,
    optimistic: bool = False,
    private: bool = False,
) -> MultiprocessorWorkload:
    """Every CPU repeatedly locks, increments counters, unlocks.

    The canonical mutual-exclusion workload: the final counter values
    must equal ``num_cpus * iterations`` each, under every model and
    technique combination — this is the repository's strongest
    end-to-end correctness check for the speculation machinery.

    With ``private=True`` each CPU gets its own lock and counters (no
    contention): the regime the paper's Section 5 argues is common —
    "the time at which one process releases a synchronization is long
    before the time another process tries to acquire" — and where the
    techniques equalize the models fully.
    """
    def addrs_for(cpu: int) -> Tuple[int, List[int]]:
        if private:
            lock = LOCK_BASE + 4 * cpu
            counters = [DATA_BASE + 4 * (cpu * shared_counters + i)
                        for i in range(shared_counters)]
        else:
            lock = LOCK_BASE
            counters = [DATA_BASE + 4 * i for i in range(shared_counters)]
        return lock, counters

    def program(cpu: int) -> Program:
        lock, counters = addrs_for(cpu)
        b = ProgramBuilder()
        b.mov_imm("r9", iterations)
        b.label("again")
        if optimistic:
            b.lock_optimistic(addr=lock)
        else:
            b.lock(addr=lock)
        for i, counter in enumerate(counters):
            reg = f"r{i + 1}"
            b.load(reg, addr=counter, tag=f"ld c{i}")
            b.add_imm(reg, reg, 1)
            b.store(reg, addr=counter, tag=f"st c{i}")
        b.unlock(addr=lock)
        b.alu("sub", "r9", "r9", imm=1)
        b.branch_nonzero("r9", "again", predict_taken=True)
        return b.build()

    memory: Dict[int, int] = {}
    expectations: List[Tuple[int, int]] = []
    per_counter = iterations if private else num_cpus * iterations
    for cpu in range(num_cpus):
        lock, counters = addrs_for(cpu)
        memory[lock] = 0
        for c in counters:
            memory[c] = 0
            if (c, per_counter) not in expectations:
                expectations.append((c, per_counter))

    kind = "private" if private else "shared"
    return MultiprocessorWorkload(
        name=f"critical-section-{kind}-{num_cpus}x{iterations}",
        programs=[program(cpu) for cpu in range(num_cpus)],
        initial_memory=memory,
        expectations=expectations,
    )


def producer_consumer_workload(
    values: Sequence[int] = (7, 11, 13),
    chain: int = 2,
) -> MultiprocessorWorkload:
    """A hand-off pipeline: CPU i produces for CPU i+1 through flags.

    CPU 0 writes data then releases a flag; each consumer acquires the
    flag, reads the data, transforms it (+1), and hands it onward.
    """
    if chain < 2:
        raise ValueError("need at least a producer and a consumer")
    programs: List[Program] = []
    n = len(values)

    def data_addr(stage: int, i: int) -> int:
        return DATA_BASE + 4 * (stage * n + i)

    def flag_addr(stage: int) -> int:
        return FLAG_BASE + 4 * stage

    # producer
    b = ProgramBuilder()
    for i, v in enumerate(values):
        b.store_imm(v, addr=data_addr(0, i), tag=f"produce{i}")
    b.release_store_imm(1, addr=flag_addr(0), tag="flag0")
    programs.append(b.build())

    # middle stages and final consumer
    for stage in range(1, chain):
        b = ProgramBuilder()
        b.spin_until_set(addr=flag_addr(stage - 1), tag=f"wait{stage - 1}")
        for i in range(n):
            reg = f"r{i + 1}"
            b.load(reg, addr=data_addr(stage - 1, i), tag=f"consume{i}")
            b.add_imm(reg, reg, 1)
            b.store(reg, addr=data_addr(stage, i), tag=f"forward{i}")
        if stage < chain:  # last stage also raises a flag for validation
            b.release_store_imm(1, addr=flag_addr(stage), tag=f"flag{stage}")
        programs.append(b.build())

    expectations = [(data_addr(chain - 1, i), v + chain - 1)
                    for i, v in enumerate(values)]
    return MultiprocessorWorkload(
        name=f"producer-consumer-x{chain}",
        programs=programs,
        initial_memory={flag_addr(s): 0 for s in range(chain)},
        expectations=expectations,
    )


def random_sharing_workload(
    num_cpus: int = 2,
    ops_per_cpu: int = 16,
    shared_lines: int = 4,
    write_fraction: float = 0.4,
    rng: RngLike = 0,
) -> MultiprocessorWorkload:
    """Straight-line random loads/stores over a small shared region.

    There is no synchronization, so no value expectations are possible
    beyond type-safety; used for stress and performance comparisons.
    """
    r = _rng(rng)
    addrs = [DATA_BASE + 4 * i + r.randrange(4) for i in range(shared_lines)]
    programs = []
    for cpu in range(num_cpus):
        b = ProgramBuilder()
        for i in range(ops_per_cpu):
            addr = r.choice(addrs)
            if r.random() < write_fraction:
                b.store_imm(cpu * 1000 + i, addr=addr, tag=f"st{i}")
            else:
                b.load(f"r{1 + (i % 8)}", addr=addr, tag=f"ld{i}")
        programs.append(b.build())
    return MultiprocessorWorkload(
        name=f"random-sharing-{num_cpus}x{ops_per_cpu}",
        programs=programs,
        initial_memory={a: 0 for a in addrs},
        expectations=[],
    )


def false_sharing_workload(
    num_cpus: int = 2,
    updates: int = 4,
    padded: bool = False,
    line_size: int = 4,
) -> MultiprocessorWorkload:
    """Per-CPU counters, packed into one line or padded apart.

    Each CPU repeatedly increments a *private* counter.  With
    ``padded=False`` all counters share one cache line, so the line
    ping-pongs and — under speculation — the conservative line-granular
    detection (paper, footnote 2) squashes loads whose *word* was never
    touched.  With ``padded=True`` each counter has its own line and
    the interference disappears.
    """
    if num_cpus > line_size and not padded:
        raise ValueError("packed counters need num_cpus <= words per line")

    def counter(cpu: int) -> int:
        stride = line_size if padded else 1
        return DATA_BASE + 4 * 16 + stride * cpu  # clear of other workloads

    programs: List[Program] = []
    for cpu in range(num_cpus):
        b = ProgramBuilder()
        b.mov_imm("r9", updates)
        b.label("again")
        b.load("r1", addr=counter(cpu), tag=f"ld c{cpu}")
        b.add_imm("r1", "r1", 1)
        b.store("r1", addr=counter(cpu), tag=f"st c{cpu}")
        b.alu("sub", "r9", "r9", imm=1)
        b.branch_nonzero("r9", "again", predict_taken=True)
        programs.append(b.build())

    return MultiprocessorWorkload(
        name=f"false-sharing-{'padded' if padded else 'packed'}",
        programs=programs,
        initial_memory={counter(c): 0 for c in range(num_cpus)},
        expectations=[(counter(c), updates) for c in range(num_cpus)],
    )


BARRIER_COUNT = 0x600
BARRIER_GEN = 0x604


def barrier_workload(
    num_cpus: int = 2,
    phases: int = 2,
    slots_base: int = 0x700,
) -> MultiprocessorWorkload:
    """A barrier-phased SPMD kernel.

    In each phase, CPU ``i`` publishes ``phase * 100 + i`` into its
    slot, everyone crosses a sense-reversing barrier, and each CPU
    reads its left neighbour's slot into an accumulator it finally
    publishes.  The final accumulators are fully determined, so this
    checks cross-processor synchronization end to end under any model
    and technique combination.
    """
    if num_cpus < 2:
        raise ValueError("a barrier needs at least two participants")

    def slot(cpu: int) -> int:
        return slots_base + 4 * cpu

    def result_addr(cpu: int) -> int:
        return slots_base + 4 * (num_cpus + cpu)

    programs: List[Program] = []
    for cpu in range(num_cpus):
        left = (cpu - 1) % num_cpus
        b = ProgramBuilder()
        b.mov_imm("r10", 0)  # accumulator
        for phase in range(phases):
            b.mov_imm("r1", phase * 100 + cpu)
            b.store("r1", addr=slot(cpu), tag=f"publish p{phase}")
            b.barrier(count_addr=BARRIER_COUNT, gen_addr=BARRIER_GEN,
                      num_cpus=num_cpus, tag=f"bar p{phase}")
            b.load("r2", addr=slot(left), tag=f"neighbour p{phase}")
            b.add("r10", "r10", "r2")
            # a second barrier keeps the next phase's publish from
            # racing this phase's neighbour reads
            b.barrier(count_addr=BARRIER_COUNT, gen_addr=BARRIER_GEN,
                      num_cpus=num_cpus, tag=f"bar2 p{phase}")
        b.store("r10", addr=result_addr(cpu), tag="result")
        programs.append(b.build())

    def expected(cpu: int) -> int:
        left = (cpu - 1) % num_cpus
        return sum(phase * 100 + left for phase in range(phases))

    memory = {BARRIER_COUNT: 0, BARRIER_GEN: 0}
    memory.update({slot(c): 0 for c in range(num_cpus)})
    return MultiprocessorWorkload(
        name=f"barrier-{num_cpus}x{phases}",
        programs=programs,
        initial_memory=memory,
        expectations=[(result_addr(c), expected(c)) for c in range(num_cpus)],
    )


def delayed_store_chain(
    num_stores: int = 8,
    software_prefetch: bool = False,
    data_base: int = DATA_BASE,
    lock_addr: int = LOCK_BASE,
) -> Program:
    """A critical section writing ``num_stores`` independent lines.

    Under SC every store is delayed behind the previous one, making
    this the canonical prefetch showcase.  With
    ``software_prefetch=True`` all the stores' lines are prefetched
    exclusively *before* the lock — a window no hardware lookahead
    buffer can match once ``num_stores`` exceeds the reservation
    station size (paper, Section 6: "the prefetching window is limited
    to the size of the instruction lookahead buffer, while ...
    software-controlled non-binding prefetching has an arbitrarily
    large window").
    """
    b = ProgramBuilder()
    addrs = [data_base + 4 * i for i in range(num_stores)]
    if software_prefetch:
        for addr in addrs:
            b.software_prefetch(addr=addr, exclusive=True, tag=f"pf {addr:#x}")
    b.lock_optimistic(addr=lock_addr, tag="lock")
    for i, addr in enumerate(addrs):
        b.store_imm(i + 1, addr=addr, tag=f"w{i}")
    b.unlock(addr=lock_addr, tag="unlock")
    return b.build()


def private_streaming_program(ops: int = 24, stride_lines: int = 1,
                              base: int = 0x1000, write_fraction: float = 0.5,
                              rng: RngLike = 0) -> Program:
    """A single-CPU streaming kernel over private data (no sharing).

    Useful for measuring raw consistency-model overhead without any
    coherence interference.
    """
    r = _rng(rng)
    b = ProgramBuilder()
    for i in range(ops):
        addr = base + 4 * stride_lines * i
        if r.random() < write_fraction:
            b.store_imm(i, addr=addr, tag=f"st{i}")
        else:
            b.load(f"r{1 + (i % 8)}", addr=addr, tag=f"ld{i}")
    return b.build()

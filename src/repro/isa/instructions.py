"""Instruction definitions.

A deliberately small RISC-flavoured instruction set, rich enough to
express the paper's examples and realistic synchronization idioms:

* memory: ``Load`` / ``Store`` / ``Rmw`` (atomic read-modify-write),
  each optionally tagged *acquire* or *release* for the WC/RC models;
* compute: ``Alu`` with a handful of integer ops and an immediate form;
* control: ``Branch`` (conditional, with an optional static prediction
  hint) and ``Jump``;
* ``Nop`` and ``Halt``.

Addresses are word-granular: ``address = registers[base] + offset``.
Every instruction may carry a human-readable ``tag`` (e.g. ``"ld A"``)
used by traces and the Figure 5 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..sim.errors import IsaError
from .registers import check_register

#: ALU operations understood by the functional units.
ALU_OPS = frozenset(
    ["add", "sub", "and", "or", "xor", "mul", "mov", "seq", "sne", "slt", "sgt"]
)

#: Read-modify-write flavours. ``ts`` = test-and-set (writes 1, returns the
#: old value), ``swap`` exchanges, ``add`` is fetch-and-add.
RMW_OPS = frozenset(["ts", "swap", "add"])


@dataclass
class Instruction:
    """Base class; carries the optional trace tag."""

    tag: Optional[str] = field(default=None, kw_only=True)

    @property
    def is_memory(self) -> bool:
        return isinstance(self, (Load, Store, Rmw))

    @property
    def is_load(self) -> bool:
        return isinstance(self, Load)

    @property
    def is_store(self) -> bool:
        return isinstance(self, Store)

    @property
    def is_rmw(self) -> bool:
        return isinstance(self, Rmw)

    @property
    def is_branch(self) -> bool:
        return isinstance(self, (Branch, Jump))

    @property
    def is_acquire(self) -> bool:
        return bool(getattr(self, "acquire", False))

    @property
    def is_release(self) -> bool:
        return bool(getattr(self, "release", False))

    def describe(self) -> str:
        return self.tag or type(self).__name__.lower()


@dataclass
class Load(Instruction):
    """``dst <- MEM[regs[base] + offset]``."""

    dst: str = "r0"
    base: str = "r0"
    offset: int = 0
    acquire: bool = False

    def __post_init__(self) -> None:
        check_register(self.dst)
        check_register(self.base)


@dataclass
class Store(Instruction):
    """``MEM[regs[base] + offset] <- regs[src]``."""

    src: str = "r0"
    base: str = "r0"
    offset: int = 0
    release: bool = False

    def __post_init__(self) -> None:
        check_register(self.src)
        check_register(self.base)


@dataclass
class Rmw(Instruction):
    """Atomic read-modify-write on ``MEM[regs[base] + offset]``.

    ``dst`` receives the *old* memory value.  The new value depends on
    ``op``: ``ts`` writes 1, ``swap`` writes ``regs[src]``, ``add``
    writes ``old + regs[src]``.
    """

    dst: str = "r0"
    base: str = "r0"
    offset: int = 0
    op: str = "ts"
    src: str = "r0"
    acquire: bool = False
    release: bool = False

    def __post_init__(self) -> None:
        check_register(self.dst)
        check_register(self.base)
        check_register(self.src)
        if self.op not in RMW_OPS:
            raise IsaError(f"unknown RMW op {self.op!r} (expected one of {sorted(RMW_OPS)})")

    def new_value(self, old: int, operand: int) -> int:
        if self.op == "ts":
            return 1
        if self.op == "swap":
            return operand
        return old + operand  # "add"


@dataclass
class Alu(Instruction):
    """``dst <- op(regs[src1], regs[src2] | imm)`` with a unit latency.

    ``mov`` uses only ``src2``/``imm``. Comparison ops produce 0/1.
    ``latency`` lets workloads model multi-cycle compute (e.g. ``mul``).
    """

    op: str = "add"
    dst: str = "r0"
    src1: str = "r0"
    src2: Optional[str] = None
    imm: Optional[int] = None
    latency: int = 1

    def __post_init__(self) -> None:
        if self.op not in ALU_OPS:
            raise IsaError(f"unknown ALU op {self.op!r} (expected one of {sorted(ALU_OPS)})")
        check_register(self.dst)
        check_register(self.src1)
        if self.src2 is not None:
            check_register(self.src2)
        if (self.src2 is None) == (self.imm is None) and self.op != "mov":
            raise IsaError(f"ALU op {self.op!r} needs exactly one of src2/imm")
        if self.latency < 1:
            raise IsaError(f"ALU latency must be >= 1, got {self.latency}")

    def compute(self, a: int, b: int) -> int:
        op = self.op
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "mul":
            return a * b
        if op == "mov":
            return b
        if op == "seq":
            return int(a == b)
        if op == "sne":
            return int(a != b)
        if op == "slt":
            return int(a < b)
        if op == "sgt":
            return int(a > b)
        raise IsaError(f"unhandled ALU op {op!r}")  # pragma: no cover


@dataclass
class Branch(Instruction):
    """Conditional branch on a register.

    Branches to ``target`` (a label) when ``regs[cond] != 0`` if
    ``when_nonzero`` else when ``regs[cond] == 0``.  ``predict_taken``
    is an optional static hint consumed by the branch predictor; the
    paper's lock-spin idiom relies on predicting the exit path so that
    lookahead proceeds past an un-acquired lock.
    """

    cond: str = "r0"
    target: str = ""
    when_nonzero: bool = True
    predict_taken: Optional[bool] = None

    def __post_init__(self) -> None:
        check_register(self.cond)
        if not self.target:
            raise IsaError("branch requires a target label")

    def outcome(self, cond_value: int) -> bool:
        taken = cond_value != 0
        return taken if self.when_nonzero else not taken


@dataclass
class Jump(Instruction):
    """Unconditional jump to a label."""

    target: str = ""

    def __post_init__(self) -> None:
        if not self.target:
            raise IsaError("jump requires a target label")


@dataclass
class SoftwarePrefetch(Instruction):
    """A software-controlled non-binding prefetch (paper, Section 6).

    Brings ``MEM[regs[base] + offset]``'s line toward the cache —
    read-shared, or exclusive when ``exclusive`` — without binding any
    value, so it never interacts with the consistency model.  The
    instruction completes as soon as the prefetch is handed to the
    memory system.  Contrast with the hardware prefetcher: software
    prefetching costs an instruction slot but has an arbitrarily large
    lookahead window (Porterfield; Mowry & Gupta; Gharachorloo et al.).
    """

    base: str = "r0"
    offset: int = 0
    exclusive: bool = False

    def __post_init__(self) -> None:
        check_register(self.base)


@dataclass
class Nop(Instruction):
    """Does nothing for one cycle."""


@dataclass
class Halt(Instruction):
    """Terminates the processor's program."""


def destination_register(instr: Instruction) -> Optional[str]:
    """The register written by ``instr``, or ``None``."""
    if isinstance(instr, (Load, Rmw, Alu)):
        return instr.dst
    return None


def source_registers(instr: Instruction) -> Tuple[str, ...]:
    """Registers read by ``instr`` (excluding the hardwired zero)."""
    if isinstance(instr, Load):
        return (instr.base,)
    if isinstance(instr, Store):
        return (instr.base, instr.src)
    if isinstance(instr, Rmw):
        return (instr.base, instr.src)
    if isinstance(instr, Alu):
        return (instr.src1,) if instr.src2 is None else (instr.src1, instr.src2)
    if isinstance(instr, Branch):
        return (instr.cond,)
    if isinstance(instr, SoftwarePrefetch):
        return (instr.base,)
    return ()

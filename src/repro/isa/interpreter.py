"""Reference interpreter: architecturally-correct sequential execution.

Executes a :class:`~repro.isa.program.Program` instruction by
instruction against a flat memory, with no timing model.  Two uses:

* a **differential oracle** for the detailed simulator — on a single
  processor, every consistency model and technique combination must
  produce exactly the interpreter's architectural results;
* a convenient way for workload generators to compute expected final
  values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim.errors import SimulationError
from .instructions import (
    Alu,
    Branch,
    Halt,
    Jump,
    Load,
    Nop,
    Rmw,
    SoftwarePrefetch,
    Store,
)
from .program import Program
from .registers import RegisterFile


@dataclass
class InterpreterResult:
    registers: Dict[str, int]
    memory: Dict[int, int]
    instructions_executed: int

    def reg(self, name: str) -> int:
        return self.registers.get(name, 0)

    def word(self, addr: int) -> int:
        return self.memory.get(addr, 0)


def interpret(
    program: Program,
    initial_memory: Optional[Dict[int, int]] = None,
    max_steps: int = 1_000_000,
) -> InterpreterResult:
    """Run ``program`` to its Halt (or off the end) and return the
    final architectural state."""
    memory: Dict[int, int] = dict(initial_memory or {})
    regs = RegisterFile()
    pc = 0
    steps = 0
    while True:
        instr = program.at(pc)
        if instr is None or isinstance(instr, Halt):
            break
        steps += 1
        if steps > max_steps:
            raise SimulationError(
                f"interpreter exceeded {max_steps} steps (infinite loop?)"
            )
        if isinstance(instr, (Nop, SoftwarePrefetch)):
            pc += 1  # prefetches are architecturally invisible
        elif isinstance(instr, Alu):
            a = regs.read(instr.src1)
            b = regs.read(instr.src2) if instr.src2 is not None else (instr.imm or 0)
            regs.write(instr.dst, instr.compute(a, b))
            pc += 1
        elif isinstance(instr, Load):
            addr = regs.read(instr.base) + instr.offset
            regs.write(instr.dst, memory.get(addr, 0))
            pc += 1
        elif isinstance(instr, Store):
            addr = regs.read(instr.base) + instr.offset
            memory[addr] = regs.read(instr.src)
            pc += 1
        elif isinstance(instr, Rmw):
            addr = regs.read(instr.base) + instr.offset
            old = memory.get(addr, 0)
            memory[addr] = instr.new_value(old, regs.read(instr.src))
            regs.write(instr.dst, old)
            pc += 1
        elif isinstance(instr, Branch):
            taken = instr.outcome(regs.read(instr.cond))
            pc = program.target_pc(instr.target) if taken else pc + 1
        elif isinstance(instr, Jump):
            pc = program.target_pc(instr.target)
        else:  # pragma: no cover
            raise SimulationError(f"interpreter cannot execute {instr!r}")
    return InterpreterResult(
        registers=regs.snapshot(),
        memory=memory,
        instructions_executed=steps,
    )

"""A tiny textual assembler for the ISA.

Syntax (one instruction per line; ``#`` starts a comment)::

    start:
        ld      r1, 0x100           # plain load
        ld.acq  r2, 0x200           # acquire load
        ld      r3, 8(r1)           # base + offset
        st      r1, 0x104
        st.rel  r0, 0x200           # release store
        rmw.ts  r4, 0x200 acq       # test&set, acquire
        movi    r5, 42
        add     r6, r5, r1
        addi    r6, r5, 4
        bnez    r6, start
        beqz    r6, start !taken    # static predict-not-taken hint
        jmp     start
        nop
        halt

The assembler exists so workloads and tests can be written as readable
text; the :class:`~repro.isa.program.ProgramBuilder` DSL remains the
primary programmatic interface.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..sim.errors import AssemblerError
from .instructions import (
    Alu,
    Branch,
    Halt,
    Instruction,
    Jump,
    Load,
    Nop,
    Rmw,
    SoftwarePrefetch,
    Store,
)
from .program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_MEMREF_RE = re.compile(r"^(-?(?:0[xX][0-9a-fA-F]+|\d+))\((r\d+)\)$")


def _parse_int(text: str, line_no: int, line: str) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(line_no, line, f"expected an integer, got {text!r}") from None


def _parse_memref(text: str, line_no: int, line: str) -> Tuple[str, int]:
    """Parse ``addr`` or ``offset(base)`` into (base_reg, offset)."""
    m = _MEMREF_RE.match(text)
    if m:
        return m.group(2), int(m.group(1), 0)
    return "r0", _parse_int(text, line_no, line)


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()]


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a :class:`Program`."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            name = label_match.group(1)
            if name in labels:
                raise AssemblerError(line_no, raw, f"duplicate label {name!r}")
            labels[name] = len(instructions)
            continue

        # optional trailing static-prediction hint on branches
        predict: Optional[bool] = None
        if line.endswith("!taken"):
            predict = False
            line = line[: -len("!taken")].strip()
        elif line.endswith("!fall"):
            # legacy alias for !taken ("predict fall-through")
            predict = False
            line = line[: -len("!fall")].strip()
        elif line.endswith("?taken"):
            predict = True
            line = line[: -len("?taken")].strip()

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []

        try:
            instructions.append(
                _assemble_one(mnemonic, operands, predict, line_no, raw)
            )
        except AssemblerError:
            raise
        except Exception as exc:  # re-wrap ISA validation errors with location
            raise AssemblerError(line_no, raw, str(exc)) from exc

    return Program(instructions, labels)


def _assemble_one(
    mnemonic: str,
    operands: List[str],
    predict: Optional[bool],
    line_no: int,
    raw: str,
) -> Instruction:
    def need(n: int) -> None:
        if len(operands) != n:
            raise AssemblerError(line_no, raw, f"{mnemonic} expects {n} operands, got {len(operands)}")

    if mnemonic in ("ld", "ld.acq"):
        need(2)
        base, offset = _parse_memref(operands[1], line_no, raw)
        return Load(dst=operands[0], base=base, offset=offset, acquire=mnemonic.endswith(".acq"))

    if mnemonic in ("st", "st.rel"):
        need(2)
        base, offset = _parse_memref(operands[1], line_no, raw)
        return Store(src=operands[0], base=base, offset=offset, release=mnemonic.endswith(".rel"))

    if mnemonic.startswith("rmw."):
        op = mnemonic.split(".", 1)[1]
        flags = [o for o in operands[2:] if o in ("acq", "rel")]
        args = [o for o in operands if o not in ("acq", "rel")]
        if len(args) < 2 or len(args) > 3:
            raise AssemblerError(line_no, raw, f"rmw expects dst, memref[, src], got {operands!r}")
        base, offset = _parse_memref(args[1], line_no, raw)
        src = args[2] if len(args) == 3 else "r0"
        return Rmw(dst=args[0], base=base, offset=offset, op=op, src=src,
                   acquire="acq" in flags, release="rel" in flags)

    if mnemonic == "fence":
        # full fence: an acquire+release test&set on a (private) line;
        # `fence` alone uses the conventional scratch address 0xF000
        if len(operands) > 1:
            raise AssemblerError(line_no, raw, "fence expects at most one operand")
        if operands:
            base, offset = _parse_memref(operands[0], line_no, raw)
        else:
            base, offset = "r0", 0xF000
        return Rmw(dst="r31", base=base, offset=offset, op="ts",
                   acquire=True, release=True, tag="fence")

    if mnemonic in ("pf", "pf.x"):
        need(1)
        base, offset = _parse_memref(operands[0], line_no, raw)
        return SoftwarePrefetch(base=base, offset=offset,
                                exclusive=mnemonic.endswith(".x"))

    if mnemonic == "movi":
        need(2)
        return Alu(op="mov", dst=operands[0], src1="r0", imm=_parse_int(operands[1], line_no, raw))

    if mnemonic in ("add", "sub", "and", "or", "xor", "mul", "seq", "sne", "slt", "sgt"):
        need(3)
        return Alu(op=mnemonic, dst=operands[0], src1=operands[1], src2=operands[2])

    if mnemonic in ("addi", "subi", "andi", "ori", "xori", "muli"):
        need(3)
        return Alu(op=mnemonic[:-1], dst=operands[0], src1=operands[1],
                   imm=_parse_int(operands[2], line_no, raw))

    if mnemonic == "bnez":
        need(2)
        return Branch(cond=operands[0], target=operands[1], when_nonzero=True,
                      predict_taken=predict)

    if mnemonic == "beqz":
        need(2)
        return Branch(cond=operands[0], target=operands[1], when_nonzero=False,
                      predict_taken=predict)

    if mnemonic == "jmp":
        need(1)
        return Jump(target=operands[0])

    if mnemonic == "nop":
        need(0)
        return Nop()

    if mnemonic == "halt":
        need(0)
        return Halt()

    raise AssemblerError(line_no, raw, f"unknown mnemonic {mnemonic!r}")

"""Programs: instruction sequences with labels, plus a builder DSL.

A :class:`Program` is an immutable-ish list of instructions with a label
table.  :class:`ProgramBuilder` offers a fluent API for constructing
programs, including the synchronization macros the paper's examples use
(``lock`` / ``unlock``) in both their realistic spin-loop form and the
"optimistic" single-access form the paper's cycle arithmetic assumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..sim.errors import IsaError
from .instructions import (
    Alu,
    Branch,
    Halt,
    Instruction,
    Jump,
    Load,
    Nop,
    Rmw,
    SoftwarePrefetch,
    Store,
)


class Program:
    """A finished program: instructions plus a label table."""

    def __init__(self, instructions: Sequence[Instruction], labels: Optional[Dict[str, int]] = None):
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self._validate()

    def _validate(self) -> None:
        n = len(self.instructions)
        for name, pc in self.labels.items():
            if not 0 <= pc <= n:
                raise IsaError(f"label {name!r} points outside the program ({pc} of {n})")
        for i, instr in enumerate(self.instructions):
            target = getattr(instr, "target", None)
            if target is not None and target not in self.labels:
                raise IsaError(f"instruction {i} ({instr.describe()}) targets unknown label {target!r}")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def at(self, pc: int) -> Optional[Instruction]:
        """Instruction at ``pc``, or ``None`` past the end."""
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        return None

    def target_pc(self, label: str) -> int:
        if label not in self.labels:
            raise IsaError(f"unknown label {label!r}")
        return self.labels[label]

    def memory_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if i.is_memory]

    def describe(self) -> str:
        pc_labels: Dict[int, List[str]] = {}
        for name, pc in self.labels.items():
            pc_labels.setdefault(pc, []).append(name)
        lines: List[str] = []
        for pc, instr in enumerate(self.instructions):
            for name in pc_labels.get(pc, []):
                lines.append(f"{name}:")
            lines.append(f"  {pc:>3}  {instr.describe()}")
        return "\n".join(lines)


class ProgramBuilder:
    """Fluent builder for :class:`Program`.

    Example::

        prog = (
            ProgramBuilder()
            .acquire_load("r1", addr=LOCK, tag="lock L")
            .store_imm(1, addr=A, tag="write A")
            .store_imm(1, addr=B, tag="write B")
            .release_store_imm(0, addr=LOCK, tag="unlock L")
            .halt()
            .build()
        )
    """

    #: scratch registers reserved by the macros; user code should avoid them.
    SCRATCH = ("r30", "r31")

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._auto_label = 0

    # ------------------------------------------------------------------
    # Core emitters
    # ------------------------------------------------------------------
    def emit(self, instr: Instruction) -> "ProgramBuilder":
        self._instructions.append(instr)
        return self

    def label(self, name: str) -> "ProgramBuilder":
        if name in self._labels:
            raise IsaError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def _fresh_label(self, hint: str) -> str:
        self._auto_label += 1
        return f"__{hint}_{self._auto_label}"

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(self, dst: str, *, base: str = "r0", addr: int = 0,
             acquire: bool = False, tag: Optional[str] = None) -> "ProgramBuilder":
        """Load ``MEM[regs[base] + addr]`` into ``dst``."""
        return self.emit(Load(dst=dst, base=base, offset=addr, acquire=acquire, tag=tag))

    def acquire_load(self, dst: str, *, base: str = "r0", addr: int = 0,
                     tag: Optional[str] = None) -> "ProgramBuilder":
        return self.load(dst, base=base, addr=addr, acquire=True, tag=tag)

    def store(self, src: str, *, base: str = "r0", addr: int = 0,
              release: bool = False, tag: Optional[str] = None) -> "ProgramBuilder":
        return self.emit(Store(src=src, base=base, offset=addr, release=release, tag=tag))

    def store_imm(self, value: int, *, base: str = "r0", addr: int = 0,
                  release: bool = False, tag: Optional[str] = None) -> "ProgramBuilder":
        """Store an immediate: materialize into a scratch register, then store."""
        scratch = self.SCRATCH[0]
        self.mov_imm(scratch, value)
        return self.store(scratch, base=base, addr=addr, release=release, tag=tag)

    def release_store(self, src: str, *, base: str = "r0", addr: int = 0,
                      tag: Optional[str] = None) -> "ProgramBuilder":
        return self.store(src, base=base, addr=addr, release=True, tag=tag)

    def release_store_imm(self, value: int, *, base: str = "r0", addr: int = 0,
                          tag: Optional[str] = None) -> "ProgramBuilder":
        return self.store_imm(value, base=base, addr=addr, release=True, tag=tag)

    def software_prefetch(self, *, base: str = "r0", addr: int = 0,
                          exclusive: bool = False,
                          tag: Optional[str] = None) -> "ProgramBuilder":
        """Emit a software non-binding prefetch (read or read-exclusive)."""
        return self.emit(SoftwarePrefetch(base=base, offset=addr,
                                          exclusive=exclusive, tag=tag))

    def rmw(self, dst: str, *, base: str = "r0", addr: int = 0, op: str = "ts",
            src: str = "r0", acquire: bool = False, release: bool = False,
            tag: Optional[str] = None) -> "ProgramBuilder":
        return self.emit(Rmw(dst=dst, base=base, offset=addr, op=op, src=src,
                             acquire=acquire, release=release, tag=tag))

    # ------------------------------------------------------------------
    # Compute and control
    # ------------------------------------------------------------------
    def alu(self, op: str, dst: str, src1: str, src2: Optional[str] = None,
            imm: Optional[int] = None, latency: int = 1,
            tag: Optional[str] = None) -> "ProgramBuilder":
        return self.emit(Alu(op=op, dst=dst, src1=src1, src2=src2, imm=imm,
                             latency=latency, tag=tag))

    def mov_imm(self, dst: str, value: int, tag: Optional[str] = None) -> "ProgramBuilder":
        return self.emit(Alu(op="mov", dst=dst, src1="r0", imm=value, tag=tag))

    def add(self, dst: str, src1: str, src2: str, tag: Optional[str] = None) -> "ProgramBuilder":
        return self.alu("add", dst, src1, src2=src2, tag=tag)

    def add_imm(self, dst: str, src1: str, imm: int, tag: Optional[str] = None) -> "ProgramBuilder":
        return self.alu("add", dst, src1, imm=imm, tag=tag)

    def branch_nonzero(self, cond: str, target: str, predict_taken: Optional[bool] = None,
                       tag: Optional[str] = None) -> "ProgramBuilder":
        return self.emit(Branch(cond=cond, target=target, when_nonzero=True,
                                predict_taken=predict_taken, tag=tag))

    def branch_zero(self, cond: str, target: str, predict_taken: Optional[bool] = None,
                    tag: Optional[str] = None) -> "ProgramBuilder":
        return self.emit(Branch(cond=cond, target=target, when_nonzero=False,
                                predict_taken=predict_taken, tag=tag))

    def jump(self, target: str, tag: Optional[str] = None) -> "ProgramBuilder":
        return self.emit(Jump(target=target, tag=tag))

    def nop(self, count: int = 1) -> "ProgramBuilder":
        for _ in range(count):
            self.emit(Nop())
        return self

    def halt(self) -> "ProgramBuilder":
        return self.emit(Halt())

    # ------------------------------------------------------------------
    # Synchronization macros
    # ------------------------------------------------------------------
    def lock(self, *, addr: int, tag: Optional[str] = None) -> "ProgramBuilder":
        """A realistic test-and-set spin lock.

        The exit path is statically predicted (``predict_taken=False`` on
        the retry branch), matching the paper's assumption that "the
        branch predictor takes the path that assumes the lock
        synchronization succeeds", which is what lets hardware lookahead
        reach the accesses inside the critical section early.
        """
        scratch = self.SCRATCH[1]
        spin = self._fresh_label("spin")
        self.label(spin)
        self.rmw(scratch, addr=addr, op="ts", acquire=True, tag=tag or f"lock@{addr}")
        self.branch_nonzero(scratch, spin, predict_taken=False,
                            tag=(tag or f"lock@{addr}") + " retry?")
        return self

    def lock_optimistic(self, *, addr: int, tag: Optional[str] = None) -> "ProgramBuilder":
        """The paper's abstract lock: a single acquire access that succeeds.

        Sections 3.3 and 4.1 count the lock as one 100-cycle access that
        gains exclusive ownership of the lock line (which is why the
        later unlock hits).  This macro emits exactly one acquire
        test-and-set with no retry loop — the paper's "we assume ...
        the lock synchronizations succeed (i.e., the lock is free)".
        """
        scratch = self.SCRATCH[1]
        return self.rmw(scratch, addr=addr, op="ts", acquire=True,
                        tag=tag or f"lock@{addr}")

    def unlock(self, *, addr: int, tag: Optional[str] = None) -> "ProgramBuilder":
        """Release the lock: a release store of zero."""
        return self.release_store_imm(0, addr=addr, tag=tag or f"unlock@{addr}")

    def fence(self, *, addr: int = 0xF000, tag: Optional[str] = None) -> "ProgramBuilder":
        """A full memory fence.

        The ISA has no dedicated fence instruction; an RMW labeled both
        acquire *and* release orders everything before it against
        everything after it under every model (WC treats it as a sync
        access, RC as acquire+release).  ``addr`` should be a line
        private to this processor so the fence itself never contends.
        """
        scratch = self.SCRATCH[1]
        return self.rmw(scratch, addr=addr, op="ts", acquire=True,
                        release=True, tag=tag or "fence")

    #: additional scratch registers used by the barrier macro
    BARRIER_SCRATCH = ("r24", "r25", "r26", "r27", "r28")

    def barrier(self, *, count_addr: int, gen_addr: int, num_cpus: int,
                tag: Optional[str] = None) -> "ProgramBuilder":
        """A centralized sense-reversing barrier.

        Arrivals fetch-and-add a shared counter; the last arrival
        resets the counter and bumps a generation word with a release
        store, which the waiters observe with acquire loads.  Uses the
        ``BARRIER_SCRATCH`` registers.
        """
        name = tag or f"barrier@{count_addr}"
        r_gen, r_newgen, r_cmp, r_one, r_old = self.BARRIER_SCRATCH
        wait = self._fresh_label("bar_wait")
        last = self._fresh_label("bar_last")
        end = self._fresh_label("bar_end")

        self.load(r_gen, addr=gen_addr, tag=f"{name} gen")
        self.mov_imm(r_one, 1)
        self.rmw(r_old, addr=count_addr, op="add", src=r_one,
                 acquire=True, tag=f"{name} arrive")
        self.alu("seq", r_cmp, r_old, imm=num_cpus - 1)
        self.branch_nonzero(r_cmp, last, predict_taken=False,
                            tag=f"{name} last?")
        self.label(wait)
        self.acquire_load(r_newgen, addr=gen_addr, tag=f"{name} poll")
        self.alu("sne", r_cmp, r_newgen, src2=r_gen)
        self.branch_zero(r_cmp, wait, predict_taken=False,
                         tag=f"{name} spin")
        self.jump(end)
        self.label(last)
        self.store("r0", addr=count_addr, tag=f"{name} reset")
        self.add_imm(r_newgen, r_gen, 1)
        self.release_store(r_newgen, addr=gen_addr, tag=f"{name} release")
        self.label(end)
        return self

    def spin_until_set(self, *, addr: int, tag: Optional[str] = None) -> "ProgramBuilder":
        """Spin on a flag until it becomes non-zero (an acquire idiom)."""
        scratch = self.SCRATCH[1]
        spin = self._fresh_label("flagspin")
        self.label(spin)
        self.acquire_load(scratch, addr=addr, tag=tag or f"spin@{addr}")
        self.branch_zero(scratch, spin, predict_taken=False,
                         tag=(tag or f"spin@{addr}") + " retry?")
        return self

    # ------------------------------------------------------------------
    def build(self, append_halt: bool = True) -> Program:
        instrs = list(self._instructions)
        if append_halt and (not instrs or not isinstance(instrs[-1], Halt)):
            instrs.append(Halt())
        return Program(instrs, self._labels)


def program_from_instructions(accesses: Iterable[Instruction]) -> Program:
    """Convenience: a program from bare instructions plus a final Halt."""
    b = ProgramBuilder()
    for instr in accesses:
        b.emit(instr)
    return b.build()

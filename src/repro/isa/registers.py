"""Architectural register file description.

The ISA exposes 32 integer registers ``r0`` .. ``r31``.  ``r0`` is
hard-wired to zero, as in MIPS — writes to it are discarded, which lets
programs use it as a handy zero source and as a sink for unwanted RMW
results.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.errors import IsaError

NUM_REGS = 32
ZERO_REG = "r0"

REGISTER_NAMES: List[str] = [f"r{i}" for i in range(NUM_REGS)]
_REGISTER_SET = frozenset(REGISTER_NAMES)


def check_register(name: str) -> str:
    """Validate a register name, returning it unchanged."""
    if name not in _REGISTER_SET:
        raise IsaError(f"unknown register {name!r} (expected r0..r{NUM_REGS - 1})")
    return name


class RegisterFile:
    """Committed architectural register state.

    The out-of-order core keeps *speculative* values in the reorder
    buffer; this object only ever holds committed state, which is what
    makes precise interrupts (and speculation rollback) work.
    """

    def __init__(self) -> None:
        self._values: Dict[str, int] = {name: 0 for name in REGISTER_NAMES}

    def read(self, name: str) -> int:
        check_register(name)
        return self._values[name]

    def write(self, name: str, value: int) -> None:
        check_register(name)
        if name == ZERO_REG:
            return
        self._values[name] = int(value)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._values)

    def load_snapshot(self, values: Dict[str, int]) -> None:
        for name, value in values.items():
            self.write(name, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        nonzero = {k: v for k, v in self._values.items() if v}
        return f"RegisterFile({nonzero})"

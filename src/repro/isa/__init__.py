"""Instruction set: instructions, registers, programs, and the assembler."""

from .assembler import assemble
from .interpreter import InterpreterResult, interpret
from .instructions import (
    ALU_OPS,
    RMW_OPS,
    Alu,
    Branch,
    Halt,
    Instruction,
    Jump,
    Load,
    Nop,
    Rmw,
    SoftwarePrefetch,
    Store,
    destination_register,
    source_registers,
)
from .program import Program, ProgramBuilder, program_from_instructions
from .registers import NUM_REGS, REGISTER_NAMES, ZERO_REG, RegisterFile, check_register

__all__ = [
    "ALU_OPS",
    "Alu",
    "Branch",
    "Halt",
    "Instruction",
    "InterpreterResult",
    "Jump",
    "Load",
    "NUM_REGS",
    "Nop",
    "Program",
    "ProgramBuilder",
    "REGISTER_NAMES",
    "RMW_OPS",
    "RegisterFile",
    "Rmw",
    "SoftwarePrefetch",
    "Store",
    "ZERO_REG",
    "assemble",
    "check_register",
    "destination_register",
    "interpret",
    "program_from_instructions",
    "source_registers",
]

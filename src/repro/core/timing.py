"""Analytical timing model for straight-line access segments.

This is an executable version of the cycle arithmetic the paper uses in
Sections 3.3 and 4.1.  A *segment* is a list of :class:`AccessSpec`
(program-ordered shared-memory accesses with hit/miss classification and
value dependences).  The model schedules the segment under a consistency
model with the two techniques optionally enabled and reports per-access
issue/complete times plus the total.

Timing conventions (DESIGN.md, Section 6):

* an access issued at cycle ``t`` with latency ``L`` completes at
  ``t + L - 1``;
* a dependent access issues no earlier than ``completion + 1``;
* one access (demand or prefetch) begins cache service per cycle;
* demand accesses have port priority over prefetches; among ready
  demand accesses the scheduler picks the one heading the longest
  remaining dependence chain (ties: program order) — accesses the
  consistency model leaves unordered may issue out of program order.

Technique semantics:

* **prefetch** (Section 3): an access that would miss and is currently
  *delayed by a consistency arc* gets a non-binding prefetch as soon as
  its address is known and the port is free; the demand access later
  merges with it (completes at ``max(issue, prefetch_complete)``).
* **speculative loads** (Section 4): pure loads ignore consistency arcs
  at issue; they wait only for their address operands and the port.
  Stores (and the store half of RMWs) never speculate.

The model assumes speculation always succeeds (no invalidations), which
is exactly the assumption in the paper's examples ("we also assume no
other processes are writing to the locations used in the examples").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..consistency.access_class import AccessClass
from ..consistency.models import ConsistencyModel
from ..sim.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class AccessSpec:
    """One access of a segment.

    ``deps`` are labels of earlier accesses whose *values* this access
    needs before it can issue (address or store-value dependences) —
    e.g. ``read E[D]`` depends on ``read D``.
    """

    label: str
    klass: AccessClass
    hit: bool = False
    deps: Tuple[str, ...] = ()


@dataclass(frozen=True)
class TimingConfig:
    hit_latency: int = 1
    miss_latency: int = 100

    def __post_init__(self) -> None:
        if self.hit_latency < 1 or self.miss_latency < self.hit_latency:
            raise ConfigurationError("need miss_latency >= hit_latency >= 1")


@dataclass
class AccessTiming:
    label: str
    issue: int
    complete: int
    prefetch_issue: Optional[int] = None
    prefetch_complete: Optional[int] = None
    speculative: bool = False


@dataclass
class ScheduleResult:
    """Outcome of scheduling one segment."""

    model_name: str
    prefetch: bool
    speculation: bool
    timings: List[AccessTiming]
    total_cycles: int

    def timing(self, label: str) -> AccessTiming:
        for t in self.timings:
            if t.label == label:
                return t
        raise KeyError(f"no access labelled {label!r}")

    def describe(self) -> str:
        tech = []
        if self.prefetch:
            tech.append("prefetch")
        if self.speculation:
            tech.append("speculative loads")
        header = f"{self.model_name} ({' + '.join(tech) if tech else 'baseline'}): " \
                 f"{self.total_cycles} cycles"
        lines = [header]
        for t in self.timings:
            extra = ""
            if t.prefetch_issue is not None:
                extra = f"  [prefetch {t.prefetch_issue}->{t.prefetch_complete}]"
            spec = "  (speculative)" if t.speculative else ""
            lines.append(f"  {t.label:<12} issue {t.issue:>4}  complete {t.complete:>4}{extra}{spec}")
        return "\n".join(lines)


class AnalyticalTimingModel:
    """List scheduler implementing the conventions above."""

    def __init__(self, config: Optional[TimingConfig] = None) -> None:
        self.config = config or TimingConfig()

    # ------------------------------------------------------------------
    def schedule(
        self,
        segment: Sequence[AccessSpec],
        model: ConsistencyModel,
        prefetch: bool = False,
        speculation: bool = False,
    ) -> ScheduleResult:
        specs = list(segment)
        self._validate(specs)
        n = len(specs)
        label_to_idx = {s.label: i for i, s in enumerate(specs)}
        dep_idx: List[List[int]] = [
            [label_to_idx[d] for d in s.deps] for s in specs
        ]

        def speculates(i: int) -> bool:
            s = specs[i]
            return speculation and s.klass.is_load and not s.klass.is_store

        # consistency-arc predecessors (dropped for speculative loads)
        arc_preds: List[List[int]] = [[] for _ in range(n)]
        for b in range(n):
            if speculates(b):
                continue
            for a in range(b):
                if model.delay_arc(specs[a].klass, specs[b].klass):
                    arc_preds[b].append(a)

        # successor graph for critical-chain weights
        succs: List[List[int]] = [[] for _ in range(n)]
        for b in range(n):
            for a in dep_idx[b]:
                succs[a].append(b)
            for a in arc_preds[b]:
                succs[a].append(b)

        issue: List[Optional[int]] = [None] * n
        complete: List[Optional[int]] = [None] * n
        pf_issue: List[Optional[int]] = [None] * n
        pf_complete: List[Optional[int]] = [None] * n
        hit_lat, miss_lat = self.config.hit_latency, self.config.miss_latency

        def eff_latency(i: int, t: int) -> int:
            """Expected service time of access ``i`` if issued at ``t``."""
            if specs[i].hit:
                return hit_lat
            if pf_complete[i] is not None:
                return max(hit_lat, pf_complete[i] - t + 1)
            return miss_lat

        def chain_weights(t: int) -> List[int]:
            """Critical-chain weight of every unissued access at cycle
            ``t``.  Dependences and arcs only point forward in program
            order, so a reverse-order DP suffices (no recursion)."""
            w = [0] * n
            for i in range(n - 1, -1, -1):
                best_succ = 0
                for s in succs[i]:
                    if issue[s] is None and w[s] > best_succ:
                        best_succ = w[s]
                w[i] = eff_latency(i, t) + best_succ
            return w

        def deps_ready(i: int, t: int) -> bool:
            return all(complete[d] is not None and complete[d] < t for d in dep_idx[i])

        def arcs_ready(i: int, t: int) -> bool:
            return all(complete[a] is not None and complete[a] < t for a in arc_preds[i])

        def arc_blocked(i: int, t: int) -> bool:
            """Is the access currently delayed *by a consistency arc*?
            (The prefetcher's trigger condition, Section 3.2.)"""
            return deps_ready(i, t) and not arcs_ready(i, t)

        t = 0
        limit = (n + 1) * (miss_lat + 1) * 4 + 16
        while any(c is None for c in complete):
            t += 1
            if t > limit:
                raise SimulationError(
                    "analytical schedule did not converge (dependence deadlock?)"
                )
            # demand accesses first
            ready = [i for i in range(n)
                     if issue[i] is None and deps_ready(i, t) and arcs_ready(i, t)]
            if ready:
                weights = chain_weights(t)
                best = max(ready, key=lambda i: (weights[i], -i))
                issue[best] = t
                if specs[best].hit:
                    complete[best] = t + hit_lat - 1
                elif pf_complete[best] is not None:
                    complete[best] = max(t + hit_lat - 1, pf_complete[best])
                else:
                    complete[best] = t + miss_lat - 1
                continue
            # otherwise one prefetch may use the port
            if prefetch:
                pf_ready = [i for i in range(n)
                            if issue[i] is None and pf_issue[i] is None
                            and not specs[i].hit and not speculates(i)
                            and arc_blocked(i, t)]
                if pf_ready:
                    i = pf_ready[0]  # program order
                    pf_issue[i] = t
                    pf_complete[i] = t + miss_lat - 1

        timings = [
            AccessTiming(
                label=specs[i].label,
                issue=issue[i],
                complete=complete[i],
                prefetch_issue=pf_issue[i],
                prefetch_complete=pf_complete[i] if pf_issue[i] is not None else None,
                speculative=speculates(i),
            )
            for i in range(n)
        ]
        return ScheduleResult(
            model_name=model.name,
            prefetch=prefetch,
            speculation=speculation,
            timings=timings,
            total_cycles=max(c for c in complete if c is not None),
        )

    # ------------------------------------------------------------------
    def _validate(self, specs: List[AccessSpec]) -> None:
        labels = [s.label for s in specs]
        if len(labels) != len(set(labels)):
            raise ConfigurationError("segment labels must be unique")
        seen: set = set()
        for s in specs:
            for d in s.deps:
                if d not in seen:
                    raise ConfigurationError(
                        f"{s.label!r} depends on {d!r}, which is not an earlier access"
                    )
            seen.add(s.label)


def compare_configurations(
    segment: Sequence[AccessSpec],
    models: Sequence[ConsistencyModel],
    config: Optional[TimingConfig] = None,
) -> Dict[Tuple[str, str], int]:
    """Total cycles for every (model, technique) combination.

    Keys are ``(model_name, technique)`` with technique one of
    ``"baseline"``, ``"prefetch"``, ``"speculation"``,
    ``"prefetch+speculation"``.
    """
    engine = AnalyticalTimingModel(config)
    out: Dict[Tuple[str, str], int] = {}
    for model in models:
        for tech, (pf, sp) in {
            "baseline": (False, False),
            "prefetch": (True, False),
            "speculation": (False, True),
            "prefetch+speculation": (True, True),
        }.items():
            res = engine.schedule(segment, model, prefetch=pf, speculation=sp)
            out[(model.name, tech)] = res.total_cycles
    return out

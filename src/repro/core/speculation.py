"""The speculative-load buffer (paper, Section 4.2 and Appendix A).

Loads issue as soon as their address is known, regardless of the
consistency model; each issued load also enters this buffer, which
implements the paper's **detection mechanism**:

* every entry has the four fields of Figure 4 — *load address*, *acq*,
  *done*, and *store tag* (generalized here to a tag **set**, of which
  the paper's single tag is the SC specialization, since SC retires
  stores in order);
* coherence transactions (invalidations, updates, replacements) are
  associatively checked against buffered load addresses;
* entries retire in FIFO order once their store tags are null and, for
  acquire-like entries, once the load has performed.

On a match the buffer reports a **correction action**:

* load already done → the value may have been consumed: discard the
  load and everything after it and re-execute (``squash_from``);
* load still in flight → reissue just the load (``reissue``); the stale
  response is dropped by a generation check;
* RMW not yet issued by the store buffer → discard the RMW and
  everything after (Appendix A);
* RMW already issued → the atomic's own return value is authoritative:
  discard only the computation after it (``squash_after``).

Per footnote 2 the detection is conservative: false sharing within a
line and silent same-value writes also squash.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from ..memory.types import SnoopKind
from ..sim.stats import StatsRegistry


class CorrectionKind(enum.Enum):
    REISSUE = "reissue"            # redo the load only
    SQUASH_FROM = "squash_from"    # discard the load and everything after
    SQUASH_AFTER = "squash_after"  # keep the access, discard what follows


@dataclass(frozen=True)
class Correction:
    kind: CorrectionKind
    seq: int


@dataclass
class SlbEntry:
    """One speculative load (Figure 4's four fields, plus RMW state)."""

    seq: int
    addr: int
    line_addr: int
    acq: bool
    store_tags: Set[int] = field(default_factory=set)
    done: bool = False
    is_rmw: bool = False
    rmw_issued: bool = False
    tag: str = ""

    def retirable(self) -> bool:
        """Figure 4's retirement conditions."""
        return not self.store_tags and (self.done or not self.acq)

    def describe(self) -> str:
        tags = ",".join(str(t) for t in sorted(self.store_tags)) or "null"
        return (f"{self.tag or self.addr:}: acq={int(self.acq)} "
                f"done={int(self.done)} st_tag={tags}")


class SpeculativeLoadBuffer:
    """FIFO buffer of in-window speculative loads for one processor."""

    def __init__(self, size: int, stats: StatsRegistry, name: str = "slb") -> None:
        self.size = size
        self._entries: "OrderedDict[int, SlbEntry]" = OrderedDict()
        self.stat_inserted = stats.counter(f"{name}/inserted")
        self.stat_retired = stats.counter(f"{name}/retired")
        self.stat_squashes = stats.counter(f"{name}/squashes")
        self.stat_reissues = stats.counter(f"{name}/reissues")
        self.stat_matches = stats.counter(f"{name}/snoop_matches")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.size

    @property
    def empty(self) -> bool:
        return not self._entries

    def entries(self) -> List[SlbEntry]:
        return list(self._entries.values())

    def get(self, seq: int) -> Optional[SlbEntry]:
        return self._entries.get(seq)

    def is_cleared(self, seq: int) -> bool:
        """True once ``seq`` is no longer speculative (retired or absent)."""
        return seq not in self._entries

    # ------------------------------------------------------------------
    # Insertion / progress
    # ------------------------------------------------------------------
    def insert(self, entry: SlbEntry) -> None:
        assert not self.full, "caller must check .full"
        assert entry.seq not in self._entries
        if self._entries:
            last = next(reversed(self._entries))
            assert entry.seq > last, (
                f"SLB entries must arrive in program order "
                f"(got {entry.seq} after {last})"
            )
        self._entries[entry.seq] = entry
        self.stat_inserted.inc()

    def mark_done(self, seq: int) -> None:
        entry = self._entries.get(seq)
        if entry is not None:
            entry.done = True

    def mark_rmw_issued(self, seq: int) -> None:
        entry = self._entries.get(seq)
        if entry is not None:
            entry.rmw_issued = True

    def store_performed(self, store_seq: int) -> None:
        """Nullify ``store_seq`` wherever it appears as a store tag."""
        for entry in self._entries.values():
            entry.store_tags.discard(store_seq)

    def head_retirable(self) -> bool:
        """True when :meth:`retire_ready` would retire at least one entry."""
        if not self._entries:
            return False
        return next(iter(self._entries.values())).retirable()

    def retire_ready(self) -> List[int]:
        """Retire eligible entries from the head; return their seqs."""
        retired: List[int] = []
        while self._entries:
            head = next(iter(self._entries.values()))
            if not head.retirable():
                break
            self._entries.popitem(last=False)
            retired.append(head.seq)
            self.stat_retired.inc()
        return retired

    def squash(self, seqs: Iterable[int]) -> None:
        for seq in seqs:
            self._entries.pop(seq, None)

    # ------------------------------------------------------------------
    # Detection (Section 4.2)
    # ------------------------------------------------------------------
    def on_snoop(self, kind: SnoopKind, line_addr: int) -> List[Correction]:
        """Check a coherence event against the buffer.

        Returns the corrections the core must apply.  All three event
        kinds are treated identically (a replaced line can no longer be
        monitored, so its value is conservatively assumed stale).
        """
        matches = [e for e in self._entries.values() if e.line_addr == line_addr]
        if not matches:
            return []
        # footnote 4: the head entry may be ignored if its constraints
        # are already satisfied — the model would have allowed the
        # access to perform at this time.
        head = next(iter(self._entries.values()))
        matches = [e for e in matches if not (e.seq == head.seq and e.retirable())]
        if not matches:
            return []
        self.stat_matches.inc()

        corrections: List[Correction] = []
        squash_at: Optional[int] = None
        squash_kind = CorrectionKind.SQUASH_FROM
        for entry in matches:  # FIFO order (insertion-ordered dict)
            if entry.is_rmw:
                squash_at = entry.seq
                squash_kind = (CorrectionKind.SQUASH_AFTER if entry.rmw_issued
                               else CorrectionKind.SQUASH_FROM)
                break
            if entry.done:
                squash_at = entry.seq
                squash_kind = CorrectionKind.SQUASH_FROM
                break
            corrections.append(Correction(CorrectionKind.REISSUE, entry.seq))
            self.stat_reissues.inc()
        if squash_at is not None:
            corrections.append(Correction(squash_kind, squash_at))
            self.stat_squashes.inc()
        return corrections

    def describe(self) -> str:
        return "\n".join(e.describe() for e in self._entries.values())

"""The paper's contribution: prefetch, speculative loads, analytic timing."""

from .prefetch import HardwarePrefetcher, PrefetchCandidate
from .sc_detection import PotentialViolation, ScViolationDetector
from .speculation import (
    Correction,
    CorrectionKind,
    SlbEntry,
    SpeculativeLoadBuffer,
)
from .timing import (
    AccessSpec,
    AccessTiming,
    AnalyticalTimingModel,
    ScheduleResult,
    TimingConfig,
    compare_configurations,
)

__all__ = [
    "AccessSpec",
    "AccessTiming",
    "AnalyticalTimingModel",
    "Correction",
    "CorrectionKind",
    "HardwarePrefetcher",
    "PotentialViolation",
    "PrefetchCandidate",
    "ScViolationDetector",
    "ScheduleResult",
    "SlbEntry",
    "SpeculativeLoadBuffer",
    "TimingConfig",
    "compare_configurations",
]

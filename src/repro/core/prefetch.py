"""Hardware-controlled non-binding prefetch (paper, Section 3).

The prefetcher watches the load/store unit's buffers for accesses that
are *delayed due to consistency constraints* but whose addresses are
already computable, and issues non-binding prefetches for them:

* **read prefetch** for delayed loads — brings the line in read-shared
  state;
* **read-exclusive prefetch** for delayed stores and RMWs — acquires
  ownership early, so the write completes quickly once the consistency
  model allows it to issue.  Only meaningful under an invalidation
  protocol (Section 3.2), so it is disabled under the update protocol.

A prefetch probes the cache first and is discarded if the line is
already present or already being fetched (that logic lives in
:meth:`LockupFreeCache.prefetch`).  Prefetches only consume cache
bandwidth left over by demand accesses: the LSU ticks before the
prefetcher, and the cache port check arbitrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..memory.cache import LockupFreeCache
from ..sim.stats import StatsRegistry


@dataclass(frozen=True)
class PrefetchCandidate:
    """A delayed access the LSU exposes to the prefetcher."""

    addr: int
    exclusive: bool
    tag: str = ""


class HardwarePrefetcher:
    def __init__(
        self,
        cache: LockupFreeCache,
        per_cycle: int,
        stats: StatsRegistry,
        name: str = "prefetcher",
    ) -> None:
        self.cache = cache
        self.per_cycle = per_cycle
        self.allow_exclusive = cache.config.protocol == "invalidate"
        self.stat_issued = stats.counter(f"{name}/issued")
        self.stat_exclusive = stats.counter(f"{name}/exclusive")

    def tick(self, candidates: Iterable[PrefetchCandidate]) -> int:
        """Issue prefetches for a prefix of ``candidates`` (bounded by
        ``per_cycle`` and cache port availability); returns how many of
        the candidates were consumed, so the caller only marks those as
        handled and re-offers the rest next cycle."""
        issued = 0
        for cand in candidates:
            if issued >= self.per_cycle:
                break
            if not self.cache.can_accept():
                break
            exclusive = cand.exclusive and self.allow_exclusive
            # Under the update protocol a write cannot be partially
            # serviced (Section 3.2); fall back to a read prefetch,
            # which at least brings the line near.
            if not self.cache.prefetch(cand.addr, exclusive=exclusive):
                break
            issued += 1
            self.stat_issued.inc()
            if exclusive:
                self.stat_exclusive.inc()
        return issued

"""Detecting potential SC violations on relaxed hardware (Section 6).

The paper observes that the speculative-load buffer's detection
mechanism "can be extended to detect violations of sequential
consistency in architectures that implement more relaxed models such
as release consistency", citing the authors' companion work
(Gharachorloo & Gibbons, SPAA 1991): a release-consistent machine is
sequentially consistent for data-race-free programs, so flagging the
executions where an access performed *outside its SC window* was hit
by a coherence event identifies the executions that may expose a race.

This module implements that monitor.  Unlike the speculative-load
buffer it has **no correction mechanism** — it only reports:

* every memory access enters the monitor in program order (when its
  address is known), initially unperformed;
* an entry leaves the monitor once it *and every program-earlier
  access* has performed — i.e. when SC itself would have allowed it;
* a coherence event (invalidation / update / replacement) matching an
  entry that already performed — but whose SC window is still open —
  means another processor touched the line in exactly the interval
  where the early perform could be observed: a **potential SC
  violation** is counted and recorded.

As the paper notes, the version used for race detection must be less
conservative than the rollback mechanism; this implementation keeps
the conservative line-granular check (false positives possible, no
false negatives under write atomicity), which is sufficient to flag
racy executions while staying silent on race-free ones in practice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..memory.types import SnoopKind
from ..sim.stats import StatsRegistry


@dataclass
class MonitorEntry:
    seq: int
    addr: int
    line_addr: int
    is_store: bool
    performed: bool = False
    tag: str = ""


@dataclass(frozen=True)
class PotentialViolation:
    cycle: int
    seq: int
    addr: int
    snoop: SnoopKind
    tag: str = ""

    def describe(self) -> str:
        kind = self.snoop.value
        return (f"cycle {self.cycle}: access #{self.seq} "
                f"({self.tag or hex(self.addr)}) saw a remote {kind} "
                f"while outside its SC window")


class ScViolationDetector:
    """Per-processor monitor flagging potentially-SC-violating accesses."""

    def __init__(self, stats: StatsRegistry, name: str = "sc_detector",
                 max_recorded: int = 64) -> None:
        self._entries: "OrderedDict[int, MonitorEntry]" = OrderedDict()
        #: secondary index so a snoop only scans entries on its line;
        #: each bucket keeps the window's insertion (program) order
        self._by_line: Dict[int, "OrderedDict[int, MonitorEntry]"] = {}
        self.violations: List[PotentialViolation] = []
        self.max_recorded = max_recorded
        self.stat_monitored = stats.counter(f"{name}/accesses_monitored")
        self.stat_violations = stats.counter(f"{name}/potential_violations")
        self._clock: Callable[[], int] = lambda: 0

    def set_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    # ------------------------------------------------------------------
    def monitor(self, seq: int, addr: int, line_addr: int,
                is_store: bool, tag: str = "") -> None:
        """Begin monitoring an access (called in program order)."""
        if seq in self._entries:
            return
        entry = MonitorEntry(seq=seq, addr=addr, line_addr=line_addr,
                             is_store=is_store, tag=tag)
        self._entries[seq] = entry
        self._by_line.setdefault(line_addr, OrderedDict())[seq] = entry
        self.stat_monitored.inc()

    def mark_performed(self, seq: int) -> None:
        entry = self._entries.get(seq)
        if entry is not None:
            entry.performed = True
        self._retire_window()

    def discard(self, seq: int) -> None:
        """The access was squashed; it never architecturally happened."""
        entry = self._entries.pop(seq, None)
        if entry is not None:
            self._unindex(entry)

    def _unindex(self, entry: MonitorEntry) -> None:
        bucket = self._by_line.get(entry.line_addr)
        if bucket is not None:
            bucket.pop(entry.seq, None)
            if not bucket:
                del self._by_line[entry.line_addr]

    def _retire_window(self) -> None:
        """Pop entries whose SC window has closed: an access leaves once
        it and every earlier monitored access have performed."""
        while self._entries:
            head = next(iter(self._entries.values()))
            if not head.performed:
                break
            _, entry = self._entries.popitem(last=False)
            self._unindex(entry)

    # ------------------------------------------------------------------
    def on_snoop(self, kind: SnoopKind, line_addr: int) -> None:
        for entry in self._by_line.get(line_addr, {}).values():
            if not entry.performed:
                # the access has not bound a value yet; whatever it
                # eventually returns will be current — not a violation
                continue
            self.stat_violations.inc()
            if len(self.violations) < self.max_recorded:
                self.violations.append(PotentialViolation(
                    cycle=self._clock(),
                    seq=entry.seq,
                    addr=entry.addr,
                    snoop=kind,
                    tag=entry.tag,
                ))

    # ------------------------------------------------------------------
    @property
    def flagged(self) -> bool:
        return self.stat_violations.value > 0

    def report(self) -> str:
        if not self.flagged:
            return ("no potential SC violations detected "
                    "(the execution is sequentially consistent)")
        lines = [f"{self.stat_violations.value} potential SC violation(s):"]
        lines += ["  " + v.describe() for v in self.violations]
        if self.stat_violations.value > len(self.violations):
            lines.append(f"  ... and "
                         f"{self.stat_violations.value - len(self.violations)} more")
        return "\n".join(lines)

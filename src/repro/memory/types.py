"""Shared memory-system types: line states, access requests, configs.

Addresses are word-granular integers.  A cache line covers
``line_size`` consecutive words; ``line_addr = addr // line_size``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from ..sim.errors import ConfigurationError


class LineState(enum.Enum):
    """Cache line states (MSI; read-exclusive fills install MODIFIED).

    The DASH-style protocol the paper assumes grants *dirty exclusive*
    ownership on a read-exclusive, so a plain E state is unnecessary:
    ownership always arrives with intent to write.
    """

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


class AccessKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    RMW = "rmw"

    @property
    def needs_exclusive(self) -> bool:
        return self is not AccessKind.LOAD


class SnoopKind(enum.Enum):
    """Coherence events forwarded to snoop listeners.

    The speculative-load buffer treats all three identically: a matching
    buffered load's value may be stale (paper, Section 4.2 — including
    replacements, whose future coherence traffic would be lost).
    """

    INVALIDATION = "inval"
    UPDATE = "update"
    REPLACEMENT = "replacement"


#: Callback invoked when an access completes: (request, value) -> None.
AccessCallback = Callable[["AccessRequest", int], None]

#: Callback invoked on a coherence snoop event: (kind, line_addr) -> None.
SnoopListener = Callable[[SnoopKind, int], None]


@dataclass
class AccessRequest:
    """A demand memory access presented to the cache by the processor.

    ``req_id`` is unique per processor and lets the LSU match responses
    (and drop stale responses after a speculative reissue, which bumps
    ``generation``).
    """

    req_id: int
    kind: AccessKind
    addr: int
    value: Optional[int] = None           # store/rmw operand
    rmw_op: Optional[str] = None          # "ts" | "swap" | "add" for RMW
    callback: Optional[AccessCallback] = None
    generation: int = 0
    issued_cycle: int = -1
    tag: str = ""                         # human-readable, for traces
    #: a LOAD that should acquire exclusive ownership (the speculative
    #: read-exclusive half of an RMW, Appendix A)
    exclusive_hint: bool = False

    def __post_init__(self) -> None:
        if self.kind is not AccessKind.LOAD and self.value is None:
            raise ConfigurationError(f"{self.kind.value} access requires a value")
        if self.kind is AccessKind.RMW and self.rmw_op is None:
            raise ConfigurationError("RMW access requires rmw_op")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one processor's cache."""

    num_sets: int = 64
    assoc: int = 4
    line_size: int = 4            # words per line
    hit_latency: int = 1
    mshr_entries: int = 16
    ports: int = 1                # demand/prefetch accesses accepted per cycle
    #: "invalidate" (DASH-style, default) or "update" (Dragon-style).
    #: The update protocol supports LOAD/STORE only and disables
    #: read-exclusive prefetching (paper, Section 3.2).
    protocol: str = "invalidate"
    #: word-address ranges [lo, hi) that are never cached (Appendix A's
    #: non-cached read-modify-write locations).  Accesses go straight
    #: to the home node; they are never prefetched or speculated.
    uncached_ranges: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("num_sets", "assoc", "line_size", "hit_latency", "mshr_entries", "ports"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"CacheConfig.{name} must be >= 1")
        if self.protocol not in ("invalidate", "update"):
            raise ConfigurationError(
                f"CacheConfig.protocol must be 'invalidate' or 'update', got {self.protocol!r}"
            )

    def is_uncached(self, addr: int) -> bool:
        return any(lo <= addr < hi for lo, hi in self.uncached_ranges)

    def line_addr(self, addr: int) -> int:
        return addr // self.line_size

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def word_index(self, addr: int) -> int:
        return addr % self.line_size


@dataclass(frozen=True)
class LatencyConfig:
    """Interconnect and memory latencies, in cycles.

    A clean (two-hop) miss costs ``request + memory + response`` cycles
    end to end; a dirty-remote (three-hop) miss adds
    ``recall + recall_response``.  :meth:`from_miss_latency` builds a
    config whose clean-miss total matches the paper's abstract number
    (100 cycles in Sections 3.3/4.1).
    """

    request: int = 40
    memory: int = 20
    response: int = 40
    recall: int = 30
    recall_response: int = 30
    inval: int = 30
    inval_ack: int = 30

    def __post_init__(self) -> None:
        for name in ("request", "memory", "response", "recall",
                     "recall_response", "inval", "inval_ack"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"LatencyConfig.{name} must be >= 0")

    @property
    def clean_miss(self) -> int:
        return self.request + self.memory + self.response

    @classmethod
    def from_miss_latency(cls, total: int) -> "LatencyConfig":
        """Split ``total`` into request/memory/response ≈ 40/20/40%."""
        if total < 3:
            raise ConfigurationError(f"miss latency must be >= 3 cycles, got {total}")
        request = total * 2 // 5
        memory = total - 2 * request
        hop = max(1, total // 3)
        return cls(
            request=request,
            memory=memory,
            response=request,
            recall=hop,
            recall_response=hop,
            inval=hop,
            inval_ack=hop,
        )

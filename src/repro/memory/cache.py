"""Lockup-free (non-blocking) coherent cache.

Models the per-processor cache the paper requires (Section 3.2 / 4.1):

* **lockup-free** (Kroft): misses allocate MSHRs and the cache keeps
  accepting requests while misses are outstanding;
* **request merging**: a demand reference to a line with an outstanding
  prefetch (or miss) is combined with it, "so that a duplicate request
  is not sent out and the reference completes as soon as the prefetch
  result returns";
* **snoop notification**: invalidations, updates, and replacements are
  forwarded to registered listeners — this is the detection mechanism
  of the speculative-load buffer;
* **non-binding prefetch**: ``prefetch()`` brings a line in read-shared
  or exclusive state without binding any register value.

The cache is one endpoint of the interconnect; the directory is the
other.  Coherence protocol details live in ``repro.coherence``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..coherence.messages import DIRECTORY_NODE, Message, MessageKind, NodeId
from ..sim.errors import ProtocolError
from ..sim.kernel import WAKE_NEVER, Component, Simulator
from ..sim.trace import NullTraceRecorder, TraceRecorder
from .interconnect import Interconnect
from .types import (
    AccessKind,
    AccessRequest,
    CacheConfig,
    LineState,
    SnoopKind,
    SnoopListener,
)


@dataclass
class CacheLine:
    line_addr: int
    state: LineState
    data: List[int]
    lru: int = 0


@dataclass
class MshrEntry:
    """One outstanding miss (or prefetch) for a line."""

    line_addr: int
    exclusive: bool
    prefetch_only: bool
    waiters: List[AccessRequest] = field(default_factory=list)
    #: demand stores that arrived while a *shared* miss was in flight;
    #: they trigger a second, exclusive transaction once the fill lands.
    pending_exclusive: List[AccessRequest] = field(default_factory=list)
    #: an exclusive *prefetch* arrived while this shared miss was in
    #: flight (e.g. a speculative load read the line first): upgrade to
    #: ownership as soon as the fill lands
    upgrade_after_fill: bool = False
    issued_cycle: int = 0


class LockupFreeCache(Component):
    """A single processor's coherent, non-blocking cache."""

    def __init__(
        self,
        node: NodeId,
        sim: Simulator,
        net: Interconnect,
        config: Optional[CacheConfig] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.node = node
        self.name = f"cache{node}"
        self.sim = sim
        self.net = net
        self.config = config or CacheConfig()
        self.trace = trace or NullTraceRecorder()
        self._sets: List[List[CacheLine]] = [[] for _ in range(self.config.num_sets)]
        self.mshrs: Dict[int, MshrEntry] = {}
        self._snoop_listeners: List[SnoopListener] = []
        self._lru_clock = 0
        self._port_cycle = -1
        self._port_used = 0
        # lines whose writeback is in flight (awaiting WB_ACK)
        self._writebacks: Dict[int, List[int]] = {}
        # update-protocol write transactions in flight, keyed by txn id
        self._update_txns: Dict[int, AccessRequest] = {}
        # uncached operations in flight, keyed by txn id (Appendix A)
        self._uncached_txns: Dict[int, AccessRequest] = {}
        # lines brought in by a prefetch and not yet touched by any
        # demand access — the basis of useful/late/useless accounting
        self._prefetched_unused: set = set()
        net.attach(node, self.receive)

        s = sim.stats
        prefix = f"cache{node}"
        self.stat_hits = s.counter(f"{prefix}/hits")
        self.stat_misses = s.counter(f"{prefix}/misses")
        self.stat_merges = s.counter(f"{prefix}/mshr_merges")
        self.stat_prefetches = s.counter(f"{prefix}/prefetches_issued")
        self.stat_prefetch_discarded = s.counter(f"{prefix}/prefetches_discarded")
        self.stat_prefetch_useful = s.counter(f"{prefix}/prefetches_useful")
        # effectiveness split: "late" = a demand access caught the
        # prefetch still in flight (merged; latency only partly hidden);
        # "useful_hit" = the demand access hit a completed prefetch;
        # "useless_invalidated" = the line left the cache untouched
        self.stat_prefetch_late = s.counter(f"{prefix}/prefetches_late")
        self.stat_prefetch_useful_hit = s.counter(f"{prefix}/prefetches_useful_hit")
        self.stat_prefetch_wasted = s.counter(f"{prefix}/prefetches_useless_invalidated")
        self.stat_invals = s.counter(f"{prefix}/invals_received")
        self.stat_updates = s.counter(f"{prefix}/updates_received")
        self.stat_replacements = s.counter(f"{prefix}/replacements")
        self.stat_writebacks = s.counter(f"{prefix}/writebacks")
        self.stat_port_accesses = s.counter(f"{prefix}/port_accesses")

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def _find_line(self, line_addr: int) -> Optional[CacheLine]:
        for line in self._sets[self.config.set_index(line_addr)]:
            if line.line_addr == line_addr and line.state is not LineState.INVALID:
                return line
        return None

    def line_state(self, addr: int) -> LineState:
        """Coherence state of the line containing ``addr`` (probe; no port use)."""
        line = self._find_line(self.config.line_addr(addr))
        return line.state if line else LineState.INVALID

    def has_mshr(self, addr: int) -> bool:
        return self.config.line_addr(addr) in self.mshrs

    def peek_word(self, addr: int) -> Optional[int]:
        """Debug/test helper: current cached value of ``addr``, if present."""
        line = self._find_line(self.config.line_addr(addr))
        if line is None:
            return None
        return line.data[self.config.word_index(addr)]

    def _touch(self, line: CacheLine) -> None:
        self._lru_clock += 1
        line.lru = self._lru_clock

    # ------------------------------------------------------------------
    # Port arbitration
    # ------------------------------------------------------------------
    def can_accept(self) -> bool:
        """True if a CPU-side access may start this cycle."""
        if self._port_cycle != self.sim.cycle:
            return self.config.ports > 0
        return self._port_used < self.config.ports

    def _use_port(self) -> None:
        if self._port_cycle != self.sim.cycle:
            self._port_cycle = self.sim.cycle
            self._port_used = 0
        self._port_used += 1
        self.stat_port_accesses.inc()

    # ------------------------------------------------------------------
    # Demand accesses
    # ------------------------------------------------------------------
    def access(self, req: AccessRequest) -> bool:
        """Present a demand access.  Returns False if not accepted
        (port busy or MSHRs exhausted); the caller retries next cycle."""
        if not self.can_accept():
            return False
        if self.config.is_uncached(req.addr):
            return self._uncached_access(req)
        if self.config.protocol == "update" and req.kind is not AccessKind.LOAD:
            return self._update_protocol_write(req)
        line_addr = self.config.line_addr(req.addr)
        line = self._find_line(line_addr)
        mshr = self.mshrs.get(line_addr)
        needs_excl = req.kind.needs_exclusive or req.exclusive_hint

        # Hit with sufficient permission (and no pending transaction that
        # will change the line under us in a way the access must wait for).
        if line is not None and (line.state is LineState.MODIFIED
                                 or (line.state is LineState.SHARED and not needs_excl)):
            self._use_port()
            self.stat_hits.inc()
            if line_addr in self._prefetched_unused:
                self._prefetched_unused.discard(line_addr)
                self.stat_prefetch_useful.inc()
                self.stat_prefetch_useful_hit.inc()
            self._touch(line)
            req.issued_cycle = self.sim.cycle
            self.sim.schedule(self.config.hit_latency,
                              lambda: self._complete_access(req, line_addr),
                              label=f"hit {req.tag or req.addr}")
            return True

        # Merge with an outstanding transaction for this line.
        if mshr is not None:
            self._use_port()
            self.stat_merges.inc()
            req.issued_cycle = self.sim.cycle
            if mshr.prefetch_only:
                mshr.prefetch_only = False
                self.stat_prefetch_useful.inc()
                self.stat_prefetch_late.inc()
            if needs_excl and not mshr.exclusive:
                mshr.pending_exclusive.append(req)
            else:
                mshr.waiters.append(req)
            return True

        if len(self.mshrs) >= self.config.mshr_entries:
            return False

        self._use_port()
        self.stat_misses.inc()
        req.issued_cycle = self.sim.cycle
        entry = MshrEntry(
            line_addr=line_addr,
            exclusive=needs_excl,
            prefetch_only=False,
            issued_cycle=self.sim.cycle,
        )
        entry.waiters.append(req)
        self.mshrs[line_addr] = entry
        if needs_excl and line is not None and line.state is LineState.SHARED:
            self._send(MessageKind.UPGRADE, line_addr)
        else:
            self._send(MessageKind.READX if needs_excl else MessageKind.READ, line_addr)
        return True

    def _uncached_access(self, req: AccessRequest) -> bool:
        """Appendix A's non-cached locations: performed atomically at
        the home node, never cached, never speculated or prefetched."""
        self._use_port()
        req.issued_cycle = self.sim.cycle
        self._uncached_txns[req.req_id] = req
        self._send(MessageKind.UNCACHED_OP,
                   self.config.line_addr(req.addr),
                   txn=req.req_id,
                   addr=req.addr,
                   value=req.value,
                   uncached_kind=req.kind.value,
                   rmw_op=req.rmw_op)
        return True

    def _on_uncached_done(self, msg: Message) -> None:
        req = self._uncached_txns.pop(msg.txn, None)
        if req is None:
            raise ProtocolError(
                f"cache{self.node}: UNCACHED_DONE for unknown txn {msg.txn}")
        if req.callback is not None:
            req.callback(req, msg.value if msg.value is not None else 0)

    def _update_protocol_write(self, req: AccessRequest) -> bool:
        """Store handling under the write-update protocol.

        The new value is propagated to all sharers; the store completes
        when the directory reports every copy updated (UPDATE_DONE).
        This is exactly why read-exclusive prefetch cannot help writes
        under update protocols: "it is difficult to partially service a
        write operation without making the new value available to other
        processors" (Section 3.2).
        """
        if req.kind is AccessKind.RMW:
            raise ProtocolError("the update protocol model supports LOAD/STORE only; "
                                "use flag-based synchronization or the invalidate protocol")
        line_addr = self.config.line_addr(req.addr)
        self._use_port()
        req.issued_cycle = self.sim.cycle
        txn = req.req_id
        self._update_txns[txn] = req
        self._send(MessageKind.UPDATE_WRITE, line_addr, txn=txn,
                   addr=req.addr, value=req.value)
        return True

    def prefetch(self, addr: int, exclusive: bool) -> bool:
        """Hardware non-binding prefetch (Section 3.2).

        Checks the cache first; a prefetch for a line already present
        with sufficient permission, or already outstanding, is
        discarded.  Returns True if the port was consumed (i.e. a real
        probe happened).
        """
        if not self.can_accept():
            return False
        if self.config.is_uncached(addr):
            self._use_port()
            self.stat_prefetch_discarded.inc()  # uncached: nothing to bring
            return True
        line_addr = self.config.line_addr(addr)
        line = self._find_line(line_addr)
        self._use_port()

        sufficient = line is not None and (
            line.state is LineState.MODIFIED
            or (line.state is LineState.SHARED and not exclusive)
        )
        if sufficient:
            self.stat_prefetch_discarded.inc()
            return True
        pending = self.mshrs.get(line_addr)
        if pending is not None:
            if exclusive and not pending.exclusive and not pending.pending_exclusive:
                # a shared miss (e.g. from a speculative load) is in
                # flight; upgrade to ownership once the fill lands so
                # the delayed store still finds the line exclusive
                pending.upgrade_after_fill = True
                self.stat_prefetches.inc()
            else:
                self.stat_prefetch_discarded.inc()
            return True
        if len(self.mshrs) >= self.config.mshr_entries:
            self.stat_prefetch_discarded.inc()
            return True

        self.stat_prefetches.inc()
        entry = MshrEntry(
            line_addr=line_addr,
            exclusive=exclusive,
            prefetch_only=True,
            issued_cycle=self.sim.cycle,
        )
        self.mshrs[line_addr] = entry
        if exclusive and line is not None and line.state is LineState.SHARED:
            self._send(MessageKind.UPGRADE, line_addr)
        else:
            self._send(MessageKind.READX if exclusive else MessageKind.READ, line_addr)
        self.trace.record(self.sim.cycle, f"cache{self.node}",
                          "prefetch", line=line_addr, exclusive=exclusive)
        return True

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _complete_access(self, req: AccessRequest, line_addr: int) -> None:
        """Perform ``req`` against the (now present) line and call back."""
        line = self._find_line(line_addr)
        if line is None:
            # The line was invalidated/replaced between hit detection and
            # completion (possible with multi-cycle hit latency).  Re-run
            # the access as a fresh miss.
            self.sim.schedule(0, lambda: self._retry(req), label="hit-race retry")
            return
        if req.kind is not AccessKind.LOAD and line.state is not LineState.MODIFIED:
            # Same race as above, but the line lost *permission* rather
            # than presence: a RECALL downgraded MODIFIED -> SHARED after
            # the store/RMW was accepted as a hit.  Re-run as a fresh
            # access so an UPGRADE re-acquires ownership.
            self.sim.schedule(0, lambda: self._retry(req),
                              label="ownership-race retry")
            return
        widx = self.config.word_index(req.addr)
        if req.kind is AccessKind.LOAD:
            value = line.data[widx]
        elif req.kind is AccessKind.STORE:
            line.data[widx] = req.value
            value = req.value
        else:  # RMW
            old = line.data[widx]
            line.data[widx] = _rmw_new_value(req.rmw_op, old, req.value)
            value = old
        self._touch(line)
        if req.callback is not None:
            req.callback(req, value)

    def _retry(self, req: AccessRequest) -> None:
        if not self.access(req):
            self.sim.schedule(1, lambda: self._retry(req), label="access retry")

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def _send(self, kind: MessageKind, line_addr: int, **kw) -> None:
        self.net.send(Message(kind=kind, src=self.node, dst=DIRECTORY_NODE,
                              line_addr=line_addr, **kw))

    def register_snoop_listener(self, listener: SnoopListener) -> None:
        self._snoop_listeners.append(listener)

    def _notify_snoop(self, kind: SnoopKind, line_addr: int) -> None:
        for listener in self._snoop_listeners:
            listener(kind, line_addr)

    def receive(self, msg: Message) -> None:
        handler = {
            MessageKind.DATA: self._on_data,
            MessageKind.DATA_EXCL: self._on_data_excl,
            MessageKind.INVAL: self._on_inval,
            MessageKind.RECALL: self._on_recall,
            MessageKind.RECALL_INVAL: self._on_recall_inval,
            MessageKind.UPDATE: self._on_update,
            MessageKind.WB_ACK: self._on_wb_ack,
            MessageKind.UPDATE_DONE: self._on_update_done,
            MessageKind.UNCACHED_DONE: self._on_uncached_done,
        }.get(msg.kind)
        if handler is None:
            raise ProtocolError(f"cache{self.node} cannot handle {msg.describe()}")
        handler(msg)

    # ------------------------------------------------------------------
    # Fills
    # ------------------------------------------------------------------
    def _install(self, line_addr: int, state: LineState, data: List[int]) -> Optional[CacheLine]:
        """Place a fill into the set, evicting if needed.

        Returns the installed line, or ``None`` if no victim was
        available this cycle (all ways have outstanding transactions);
        the caller schedules a retry.
        """
        idx = self.config.set_index(line_addr)
        cache_set = self._sets[idx]
        for line in cache_set:
            if line.line_addr == line_addr:
                line.state = state
                line.data = list(data)
                self._touch(line)
                self._record_fill(line_addr, state)
                return line
        if len(cache_set) < self.config.assoc:
            line = CacheLine(line_addr=line_addr, state=state, data=list(data))
            self._touch(line)
            cache_set.append(line)
            self._record_fill(line_addr, state)
            return line
        victims = [
            l for l in cache_set
            if l.line_addr not in self.mshrs and l.line_addr not in self._writebacks
        ]
        if not victims:
            return None
        victim = min(victims, key=lambda l: l.lru)
        self._evict(victim)
        victim.line_addr = line_addr
        victim.state = state
        victim.data = list(data)
        self._touch(victim)
        self._record_fill(line_addr, state)
        return victim

    def _record_fill(self, line_addr: int, state: LineState) -> None:
        self.trace.record(self.sim.cycle, f"cache{self.node}", "fill",
                          line=line_addr, state=state.value)

    def _mark_prefetch_fill(self, entry: MshrEntry) -> None:
        """A fill landed for ``entry``; if it was still prefetch-only
        (no demand access merged onto it), start tracking whether the
        line is ever used before it leaves the cache."""
        if (entry.prefetch_only and not entry.waiters
                and not entry.pending_exclusive):
            self._prefetched_unused.add(entry.line_addr)

    def _note_prefetched_line_lost(self, line_addr: int) -> None:
        """The line left the cache (invalidation or replacement)
        without any demand access touching it: the prefetch was wasted."""
        if line_addr in self._prefetched_unused:
            self._prefetched_unused.discard(line_addr)
            self.stat_prefetch_wasted.inc()

    def _evict(self, line: CacheLine) -> None:
        self.stat_replacements.inc()
        self._note_prefetched_line_lost(line.line_addr)
        # record before notifying: corrections the snoop listeners emit
        # must appear after their cause in the trace
        self.trace.record(self.sim.cycle, f"cache{self.node}", "evict",
                          line=line.line_addr, state=line.state.value)
        self._notify_snoop(SnoopKind.REPLACEMENT, line.line_addr)
        if line.state is LineState.MODIFIED:
            self.stat_writebacks.inc()
            self._writebacks[line.line_addr] = list(line.data)
            self._send(MessageKind.WRITEBACK, line.line_addr, data=list(line.data))
        line.state = LineState.INVALID

    def _on_data(self, msg: Message) -> None:
        entry = self.mshrs.get(msg.line_addr)
        if entry is None:
            raise ProtocolError(f"cache{self.node}: DATA with no MSHR for line {msg.line_addr:#x}")
        line = self._install(msg.line_addr, LineState.SHARED, msg.data or [])
        if line is None:
            self.sim.schedule(1, lambda: self._on_data(msg), label="fill retry")
            return
        del self.mshrs[msg.line_addr]
        self._mark_prefetch_fill(entry)
        waiters = entry.waiters
        pending_excl = entry.pending_exclusive
        for req in waiters:
            self._complete_access(req, msg.line_addr)
        if pending_excl or entry.upgrade_after_fill:
            # Stores (or an exclusive prefetch) were merged onto a
            # shared miss: start the exclusive transaction now
            # (upgrade, since we just got an S copy).
            new_entry = MshrEntry(
                line_addr=msg.line_addr,
                exclusive=True,
                prefetch_only=not pending_excl,
                issued_cycle=self.sim.cycle,
            )
            new_entry.waiters.extend(pending_excl)
            self.mshrs[msg.line_addr] = new_entry
            self._send(MessageKind.UPGRADE, msg.line_addr)

    def _on_data_excl(self, msg: Message) -> None:
        entry = self.mshrs.get(msg.line_addr)
        if entry is None:
            raise ProtocolError(f"cache{self.node}: DATA_EXCL with no MSHR for line {msg.line_addr:#x}")
        if msg.data is not None:
            data = msg.data
        else:
            # upgrade ack: keep the data we already have
            existing = self._find_line(msg.line_addr)
            if existing is None:
                raise ProtocolError(
                    f"cache{self.node}: upgrade ack for line {msg.line_addr:#x} not present"
                )
            data = existing.data
        line = self._install(msg.line_addr, LineState.MODIFIED, data)
        if line is None:
            self.sim.schedule(1, lambda: self._on_data_excl(msg), label="fill retry")
            return
        del self.mshrs[msg.line_addr]
        self._mark_prefetch_fill(entry)
        for req in entry.waiters + entry.pending_exclusive:
            self._complete_access(req, msg.line_addr)

    # ------------------------------------------------------------------
    # Snoops
    # ------------------------------------------------------------------
    def _on_inval(self, msg: Message) -> None:
        self.stat_invals.inc()
        line = self._find_line(msg.line_addr)
        if line is not None:
            line.state = LineState.INVALID
            self._note_prefetched_line_lost(msg.line_addr)
        self.trace.record(self.sim.cycle, f"cache{self.node}", "inval", line=msg.line_addr)
        self._notify_snoop(SnoopKind.INVALIDATION, msg.line_addr)
        self._send(MessageKind.INVAL_ACK, msg.line_addr, txn=msg.txn)

    def _on_recall(self, msg: Message) -> None:
        line = self._find_line(msg.line_addr)
        if line is None or line.state is not LineState.MODIFIED:
            # Raced with our own writeback; the directory will use the
            # writeback data when it arrives.
            self._send(MessageKind.RECALL_ACK, msg.line_addr, txn=msg.txn, data=None)
            return
        line.state = LineState.SHARED
        self.trace.record(self.sim.cycle, f"cache{self.node}", "downgrade",
                          line=msg.line_addr)
        self._send(MessageKind.RECALL_ACK, msg.line_addr, txn=msg.txn, data=list(line.data))

    def _on_recall_inval(self, msg: Message) -> None:
        line = self._find_line(msg.line_addr)
        data: Optional[List[int]] = None
        if line is not None:
            if line.state is LineState.MODIFIED:
                data = list(line.data)
            line.state = LineState.INVALID
            self._note_prefetched_line_lost(msg.line_addr)
        self.trace.record(self.sim.cycle, f"cache{self.node}", "inval", line=msg.line_addr)
        self._notify_snoop(SnoopKind.INVALIDATION, msg.line_addr)
        self._send(MessageKind.RECALL_ACK, msg.line_addr, txn=msg.txn, data=data)

    def _on_update(self, msg: Message) -> None:
        self.stat_updates.inc()
        line = self._find_line(msg.line_addr)
        if line is not None and msg.addr is not None:
            line.data[self.config.word_index(msg.addr)] = msg.value
        self._notify_snoop(SnoopKind.UPDATE, msg.line_addr)
        self._send(MessageKind.UPDATE_ACK, msg.line_addr, txn=msg.txn)

    def _on_wb_ack(self, msg: Message) -> None:
        self._writebacks.pop(msg.line_addr, None)

    def _on_update_done(self, msg: Message) -> None:
        # Update-protocol write transaction finished: the store that
        # initiated it completes now (globally performed).
        req = self._update_txns.pop(msg.txn, None)
        if req is None:
            raise ProtocolError(
                f"cache{self.node}: UPDATE_DONE for unknown txn {msg.txn}"
            )
        line = self._find_line(msg.line_addr)
        if line is not None:
            line.data[self.config.word_index(req.addr)] = req.value
        if req.callback is not None:
            req.callback(req, req.value if req.value is not None else 0)

    # ------------------------------------------------------------------
    def is_quiescent(self) -> bool:
        return (not self.mshrs and not self._writebacks
                and not self._update_txns and not self._uncached_txns)

    def next_wake(self, cycle: int) -> int:
        # purely event-driven: fills, acks, and retries arrive as
        # interconnect deliveries; nothing here needs a clock tick
        return WAKE_NEVER

    def warm_install(self, line_addr: int, state: LineState, data: Optional[List[int]] = None) -> None:
        """Pre-install a line for warm-start experiments (not a timed path).

        The caller is responsible for keeping directory state consistent
        (use :meth:`MemoryFabric.warm` which does both sides).
        """
        if data is None:
            data = [0] * self.config.line_size
        if len(data) != self.config.line_size:
            raise ProtocolError("warm_install data must cover the whole line")
        if self._install(line_addr, state, data) is None:
            raise ProtocolError("warm_install could not find a victim way")

    def contents(self) -> Dict[int, Tuple[str, List[int]]]:
        """Snapshot {line_addr: (state, data)} of all valid lines."""
        out: Dict[int, Tuple[str, List[int]]] = {}
        for cache_set in self._sets:
            for line in cache_set:
                if line.state is not LineState.INVALID:
                    out[line.line_addr] = (line.state.value, list(line.data))
        return out


def _rmw_new_value(op: Optional[str], old: int, operand: Optional[int]) -> int:
    if op == "ts":
        return 1
    if op == "swap":
        return operand if operand is not None else 0
    if op == "add":
        return old + (operand or 0)
    raise ProtocolError(f"unknown rmw op {op!r}")
